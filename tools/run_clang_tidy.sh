#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit with a
# content-hash cache: a file whose (source + .clang-tidy) digest already
# has a stamp in the cache directory is skipped, so an unchanged tree
# re-lints in seconds. CI persists the cache directory across runs and
# busts it via its own key when any source or the config changes.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir (default: build) must contain compile_commands.json
#   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
#   TIDY_CACHE_DIR overrides the cache location (default: .tidy-cache).
set -euo pipefail

build_dir=${1:-build}
cache_dir=${TIDY_CACHE_DIR:-.tidy-cache}

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found" >&2
  echo "       configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi
mkdir -p "${cache_dir}"

config_hash=$(sha256sum .clang-tidy | cut -d' ' -f1)
failures=0
checked=0
skipped=0
while IFS= read -r file; do
  digest=$( { echo "${config_hash}"; sha256sum "${file}"; } \
            | sha256sum | cut -d' ' -f1)
  stamp="${cache_dir}/${digest}"
  if [[ -f "${stamp}" ]]; then
    skipped=$((skipped + 1))
    continue
  fi
  checked=$((checked + 1))
  if clang-tidy -p "${build_dir}" --quiet "${file}"; then
    touch "${stamp}"
  else
    failures=$((failures + 1))
  fi
done < <(git ls-files 'src/**/*.cc' 'tools/**/*.cc' 'bench/**/*.cc')

echo "run_clang_tidy: ${checked} checked, ${skipped} cached, \
${failures} failed" >&2
exit $((failures > 0 ? 1 : 0))
