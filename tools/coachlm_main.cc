// The coachlm command-line tool: the Fig. 2 pipeline as composable
// filesystem steps, so the library can be driven without writing C++.
//
//   coachlm generate --size 52000 --seed 42 --out corpus.json
//   coachlm study    --in corpus.json --sample 6000 --out revisions.jsonl
//                    [--merged alpaca_human.json]
//   coachlm train    --revisions revisions.jsonl --alpha 0.3
//                    --backbone chatglm2 --checkpoint coach.json
//   coachlm revise   --in corpus.json --checkpoint coach.json
//                    --out revised.json [--verify]
//   coachlm rate     --in revised.json [--detailed]
//   coachlm inspect  --checkpoint coach.json
//   coachlm diff     --before corpus.json --after revised.json
//   coachlm evaluate --original corpus.json --revised revised.json
//                    [--human alpaca_human.json] [--testset coachlm150]
//   coachlm pipeline --size 5000 --seed 42 --out revised.json
//                    [--checkpoint-dir ckpt --resume]
//   coachlm convert  --in corpus.json --out corpus.manifest.json
//                    [--shards 4] [--format binary]
//
// Every step is deterministic given its seeds; datasets are plain
// Alpaca-format JSON and revisions are JSONL, so steps interoperate with
// external tooling.
//
// Fault tolerance (generate / revise / pipeline): --fault-plan injects
// deterministic transient/permanent faults, --retry-max bounds retries,
// --quarantine saves permanently-failed records, and --checkpoint-dir +
// --resume make a killed run continue to byte-identical output.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "coach/pipeline.h"
#include "coach/trainer.h"
#include "common/cancel.h"
#include "common/checkpoint.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/execution.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/report.h"
#include "common/retry.h"
#include "common/runtime.h"
#include "common/table_writer.h"
#include "common/trace.h"
#include "json/jsonl.h"
#include "json/parse_limits.h"
#include "data/corpus_io.h"
#include "data/revision_io.h"
#include "data/shard.h"
#include "expert/pipeline.h"
#include "quality/accuracy_rater.h"
#include "quality/quality_report.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"
#include "serve/server.h"
#include "serve/supervisor.h"
#include "synth/generator.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

namespace coachlm {
namespace {

constexpr char kUsage[] =
    "usage: coachlm <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate  --size N --seed S --out corpus.json [--threads T]\n"
    "            synthesize an ALPACA52K-like instruction dataset\n"
    "  study     --in corpus.json --sample N --seed S --out revisions.jsonl\n"
    "            [--merged merged.json] [--threads T]\n"
    "            run the expert revision study\n"
    "  train     --revisions revisions.jsonl --alpha A\n"
    "            --backbone llama|chatglm|chatglm2 --checkpoint coach.json\n"
    "            coach instruction tuning (writes a rule checkpoint)\n"
    "  revise    --in corpus.json --checkpoint coach.json --out revised.json\n"
    "            [--alpha A] [--backbone B] [--verify] [--threads T]\n"
    "            revise a dataset with a trained CoachLM\n"
    "  rate      --in dataset.json [--detailed] [--threads T]\n"
    "            ChatGPT-style 0-5 quality report (+ per-dimension table)\n"
    "  inspect   --checkpoint coach.json\n"
    "            print the learned rule store (what coach tuning learned)\n"
    "  diff      --before a.json --after b.json [--threads T]\n"
    "            revision magnitude + per-dimension flaw-rate movement\n"
    "  evaluate  --original corpus.json --revised revised.json\n"
    "            [--human merged.json] [--testset coachlm150|pandalm170|\n"
    "            vicuna80|selfinstruct252] [--threads T]\n"
    "            tune + judge the model zoo\n"
    "  pipeline  --size N --seed S --sample N --alpha A --backbone B\n"
    "            --out revised.json [--threads T]\n"
    "            generate -> study -> train -> revise in one run\n"
    "  convert   --in corpus.json --out corpus.manifest.json [--shards N]\n"
    "            [--format json|jsonl|binary]\n"
    "            re-encode a corpus between backends (JSON / JSONL /\n"
    "            binary columnar shards; see docs/FORMAT.md)\n"
    "  metrics   [--validate report.json]\n"
    "            print the metric catalog (name, type, unit, stage, help);\n"
    "            --validate schema-checks a run report or bench trajectory\n"
    "  serve     --checkpoint coach.json [--port P] [--serve-workers W]\n"
    "            [--serve-processes N] [--queue-depth Q]\n"
    "            [--request-deadline-ms D]\n"
    "            long-lived revision service on 127.0.0.1 (docs/SERVING.md):\n"
    "            POST /v1/revise revises a JSONL body with the loaded\n"
    "            coach; SIGHUP or POST /admin/reload hot-swaps the\n"
    "            checkpoint; SIGTERM drains gracefully; a full admission\n"
    "            queue sheds with 429 + Retry-After\n"
    "\n"
    "serving (serve only; batch-only flags like --resume are rejected):\n"
    "  --port P                listen port on 127.0.0.1 (1..65535; 8080)\n"
    "  --serve-workers W       fixed worker pool size (1..1024; 4)\n"
    "  --serve-processes N     crash-only mode: fork N supervised server\n"
    "                          processes sharing the port via SO_REUSEPORT;\n"
    "                          crashed workers respawn with deterministic\n"
    "                          backoff, a crash loop trips a circuit\n"
    "                          breaker (exit 3) (1..256; 1 = in-process)\n"
    "  --queue-depth Q         admission queue bound before shedding\n"
    "                          (1..1000000; 64)\n"
    "  --request-deadline-ms D per-request budget; a blown deadline is a\n"
    "                          typed 504 (>= 1; 2000)\n"
    "  --read-timeout-ms N     socket read timeout: a stalled or dripping\n"
    "                          peer gets a typed 408 instead of pinning a\n"
    "                          worker (>= 1; default: the request deadline)\n"
    "  --write-timeout-ms N    socket write timeout: a peer that stops\n"
    "                          reading its response is dropped (>= 1;\n"
    "                          default: the request deadline)\n"
    "\n"
    "corpus I/O (every dataset-reading/-writing command; docs/FORMAT.md):\n"
    "  inputs are sniffed: Alpaca JSON arrays, JSONL, binary columnar\n"
    "  files, and shard manifests all load through the same record-stream\n"
    "  interface, byte-identically.\n"
    "  --format F              output corpus format: auto|json|jsonl|binary\n"
    "                          (auto resolves from the output path's\n"
    "                          extension: .jsonl, .clmb/.bin, else JSON)\n"
    "  --shards N              split the output corpus into N shard files\n"
    "                          plus a self-describing .manifest.json index\n"
    "                          (N >= 1; 1 keeps a single file unless the\n"
    "                          path names a .manifest.json)\n"
    "  --corpus-manifest FILE  read the input corpus from a shard manifest\n"
    "                          (overrides --in; must name a .manifest.json;\n"
    "                          revise checkpoints/resumes shard by shard)\n"
    "\n"
    "--threads T sizes the command\'s execution context (0 = default:\n"
    "COACHLM_THREADS or hardware concurrency); results are byte-identical\n"
    "at any thread count.\n"
    "\n"
    "rule engine (train, revise, serve, pipeline; docs/RULE_ENGINE.md):\n"
    "  --rule-engine E         compiled|scan (default: compiled). compiled\n"
    "                          freezes the learned rules into a shared\n"
    "                          match automaton with a fingerprint\n"
    "                          prefilter; scan probes the raw rule tables\n"
    "                          per call. Output is byte-identical either\n"
    "                          way — scan is the escape hatch for\n"
    "                          bisecting the compiled engine itself\n"
    "\n"
    "fault tolerance (generate, revise, pipeline):\n"
    "  --fault-plan SPEC       inject deterministic faults, e.g. \"0.05\" or\n"
    "                          \"rate=0.05,permanent=0.001,seed=7,\n"
    "                          sites=revise+io\" (default: COACHLM_FAULT_PLAN)\n"
    "  --retry-max N           attempts per record before quarantine (4)\n"
    "  --quarantine FILE       save permanently-failed records as JSONL\n"
    "  --checkpoint-dir DIR    journal progress for crash-safe runs\n"
    "  --checkpoint-interval N items journaled per commit (2048)\n"
    "  --resume                continue from the journal in --checkpoint-dir\n"
    "                          (omitting it restarts the stage fresh)\n"
    "  --crash-after-commits N testing: kill the process after the Nth\n"
    "                          checkpoint commit\n"
    "\n"
    "resource governance (generate, revise, pipeline):\n"
    "  --deadline-ms N         wall-clock budget: the run cancels\n"
    "                          cooperatively at the deadline, quarantines\n"
    "                          unprocessed records, and (with\n"
    "                          --checkpoint-dir) leaves a valid journal for\n"
    "                          --resume\n"
    "  --stall-timeout-ms N    cancel the run when no record completes for\n"
    "                          N ms (frozen-stage watchdog)\n"
    "  --max-record-bytes N    reject any single record/line larger than N\n"
    "                          bytes (default 4194304)\n"
    "  --max-json-depth N      reject JSON nested deeper than N containers\n"
    "                          (default 32)\n"
    "full parse-limit spec: COACHLM_PARSE_LIMITS (see ParseLimits::FromSpec)\n"
    "\n"
    "observability (every command; see docs/OBSERVABILITY.md):\n"
    "  --metrics-out FILE      write a machine-readable run report (JSON):\n"
    "                          per-stage spans and wall time, metric\n"
    "                          counters/gauges/histograms, thread\n"
    "                          utilization, peak RSS\n"
    "                          (default: COACHLM_METRICS_OUT)\n"
    "  --metrics-deterministic pin the report's volatile fields — span\n"
    "                          timings from a stepping clock, threads/RSS/\n"
    "                          utilization zeroed — so a seeded run's\n"
    "                          report is byte-identical at any thread\n"
    "                          count (default: COACHLM_METRICS_DETERMINISTIC=1)\n";

/// `--rule-engine compiled|scan` → CoachConfig::compiled_rules. Validated
/// in ValidateFlags, so by the time a runner asks, the value is one of the
/// two engines (docs/RULE_ENGINE.md).
bool CompiledRulesFlag(const Flags& flags) {
  return flags.GetString("rule-engine", "compiled") != "scan";
}

/// The command's execution context, sized by --threads (0 = default:
/// COACHLM_THREADS, then hardware concurrency). Commands run once per
/// process, so a function-local static covers the one non-default width.
const ExecutionContext& FlagExec(const Flags& flags) {
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 0));
  if (threads == 0) return ExecutionContext::Default();
  static const ExecutionContext exec(threads);
  return exec;
}

/// \name Observed dataset IO
/// Dataset loads/saves wrapped in "load"/"save" spans, so run reports
/// account for IO wall time explicitly instead of leaving it as uncovered
/// root-span remainder. All paths go through the corpus_io factories, so
/// every command reads JSON, JSONL, binary, and sharded corpora alike.
/// @{
Result<InstructionDataset> LoadDataset(const std::string& path) {
  const StageSpan span("load");
  return LoadCorpus(path);
}

Status SaveDataset(const InstructionDataset& dataset, const std::string& path,
                   const CorpusWriteOptions& options = {}) {
  const StageSpan span("save");
  return SaveCorpus(path, dataset, options);
}
/// @}

/// Output-side corpus choices from --format / --shards (both validated in
/// ValidateFlags before any command runs).
CorpusWriteOptions FlagWriteOptions(const Flags& flags) {
  CorpusWriteOptions options;
  options.format = ParseCorpusFormat(flags.GetString("format", "auto"))
                       .ValueOr(CorpusFormat::kAuto);
  options.shards = static_cast<size_t>(flags.GetInt("shards", 1));
  return options;
}

/// The input corpus path: --corpus-manifest (a shard manifest) overrides
/// the command's own input flag.
std::string InputPath(const Flags& flags, const char* flag,
                      const char* fallback) {
  if (flags.Has("corpus-manifest")) return flags.GetString("corpus-manifest");
  return flags.GetString(flag, fallback);
}

lm::BackboneProfile BackboneByName(const std::string& name) {
  if (name == "llama") return lm::Llama7B();
  if (name == "chatglm") return lm::ChatGlm6B();
  return lm::ChatGlm26B();
}

/// Builds the command's fault-tolerance runtime from --fault-plan and
/// --retry-max. Returns nullptr when neither flag is present — callers then
/// use PipelineRuntime::Default(), which honors COACHLM_FAULT_PLAN /
/// COACHLM_RETRY_MAX.
Result<std::unique_ptr<PipelineRuntime>> MakeRuntime(const Flags& flags) {
  if (!flags.Has("fault-plan") && !flags.Has("retry-max")) {
    return std::unique_ptr<PipelineRuntime>();
  }
  COACHLM_ASSIGN_OR_RETURN(FaultPlan plan,
                           FaultPlan::Parse(flags.GetString("fault-plan")));
  RetryPolicy policy;
  COACHLM_ASSIGN_OR_RETURN(
      const int64_t retry_max,
      flags.GetIntStrict("retry-max", policy.max_attempts));
  policy.max_attempts = static_cast<int>(retry_max);
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("--retry-max must be >= 1");
  }
  return std::make_unique<PipelineRuntime>(FaultInjector(plan), policy);
}

/// The wall-clock budget and stall watchdog of a governed command. Owns
/// the CancelToken the runtime polls; keep it alive until the command
/// returns.
struct Governance {
  std::unique_ptr<CancelToken> token;
  std::unique_ptr<StallWatchdog> watchdog;

  bool cancelled() const { return token != nullptr && token->cancelled(); }
};

/// Builds governance from --deadline-ms / --stall-timeout-ms and attaches
/// it to \p runtime. With neither flag the runtime keeps its zero-overhead
/// ungoverned path.
Governance MakeGovernance(const Flags& flags, PipelineRuntime* runtime) {
  Governance governance;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  const int64_t stall_ms = flags.GetInt("stall-timeout-ms", 0);
  if (deadline_ms <= 0 && stall_ms <= 0) return governance;
  Clock* clock = Clock::System();
  governance.token =
      deadline_ms > 0
          ? std::make_unique<CancelToken>(
                clock, clock->NowMicros() + deadline_ms * 1000)
          : std::make_unique<CancelToken>();
  runtime->set_cancel_token(governance.token.get());
  if (stall_ms > 0) {
    governance.watchdog = std::make_unique<StallWatchdog>(
        clock, governance.token.get(), flags.command(), stall_ms * 1000);
    runtime->set_watchdog(governance.watchdog.get());
    // Poll a few times per stall budget so detection lag stays small
    // relative to the budget itself.
    governance.watchdog->Start(
        std::max<int64_t>(stall_ms * 1000 / 4, 10000));
  }
  return governance;
}

/// Prints why a governed run stopped early. The command still exits 0:
/// its outputs are written (unprocessed records pass through, quarantined)
/// and a checkpointed run can continue with --resume.
void ReportCancellation(const Governance& governance, bool checkpointed) {
  if (!governance.cancelled()) return;
  std::printf("run cancelled: %s%s\n",
              governance.token->status().ToString().c_str(),
              checkpointed ? " (checkpoint kept; re-run with --resume to "
                             "finish)"
                           : "");
}

/// The checkpointer for \p stage, enabled by --checkpoint-dir. Without
/// --resume any prior journal is discarded first, so a re-run starts
/// fresh; with it, the stage continues from the journaled cursor.
std::unique_ptr<StageCheckpointer> MakeCheckpointer(
    const Flags& flags, const std::string& stage,
    const std::string& fingerprint) {
  // Heap-allocated: the checkpointer owns its async-commit thread and is
  // therefore not movable.
  auto checkpoint = std::make_unique<StageCheckpointer>(
      flags.GetString("checkpoint-dir"), stage, ConfigFingerprint(fingerprint),
      static_cast<size_t>(flags.GetInt("checkpoint-interval", 2048)));
  if (checkpoint->enabled() && !flags.Has("resume")) {
    // Discarding a stale journal is best-effort: if it survives, the
    // fingerprint check rejects it at the next Resume anyway.
    (void)checkpoint->Finish();
  }
  if (checkpoint->enabled() && flags.Has("crash-after-commits")) {
    checkpoint->set_crash_after_commits(
        static_cast<int>(flags.GetInt("crash-after-commits", 0)));
  }
  return checkpoint;
}

/// Prints what the runtime absorbed and saves the quarantine log when
/// --quarantine was given.
Status ReportRuntime(const PipelineRuntime& runtime, const Flags& flags) {
  if (runtime.recovered_records() > 0 || runtime.quarantined_records() > 0) {
    std::printf("runtime: %llu records recovered via retry, "
                "%zu quarantined\n",
                static_cast<unsigned long long>(runtime.recovered_records()),
                runtime.quarantined_records());
  }
  if (flags.Has("quarantine")) {
    const std::string path =
        flags.GetString("quarantine", "quarantine.jsonl");
    COACHLM_RETURN_NOT_OK(runtime.quarantine().Save(path));
    std::printf("wrote %zu quarantine records to %s\n",
                runtime.quarantine().size(), path.c_str());
  }
  return Status::OK();
}

Status RunGenerate(const Flags& flags) {
  synth::CorpusConfig config;
  config.size = static_cast<size_t>(flags.GetInt("size", 52000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  synth::SynthCorpusGenerator generator(config);
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<PipelineRuntime> owned,
                           MakeRuntime(flags));
  PipelineRuntime* runtime =
      owned != nullptr ? owned.get() : PipelineRuntime::Default();
  const Governance governance = MakeGovernance(flags, runtime);
  std::unique_ptr<StageCheckpointer> checkpoint = MakeCheckpointer(
      flags, "generate",
      "generate size=" + std::to_string(config.size) +
          " seed=" + std::to_string(config.seed) +
          " plan=" + runtime->injector().plan().ToString());
  const synth::SynthCorpus corpus =
      generator.Generate(FlagExec(flags), runtime, checkpoint.get());
  // A cancelled run keeps its journal so --resume can finish the work.
  if (checkpoint->enabled() && !governance.cancelled()) {
    COACHLM_RETURN_NOT_OK(checkpoint->Finish());
  }
  const std::string out = flags.GetString("out", "corpus.json");
  COACHLM_RETURN_NOT_OK(SaveDataset(corpus.dataset, out, FlagWriteOptions(flags)));
  std::printf("wrote %zu pairs to %s\n", corpus.dataset.size(), out.c_str());
  ReportCancellation(governance, checkpoint->enabled());
  return ReportRuntime(*runtime, flags);
}

Status RunStudy(const Flags& flags) {
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset corpus,
      LoadDataset(InputPath(flags, "in", "corpus.json")));
  synth::ContentEngine engine;
  expert::RevisionStudyConfig config;
  config.sample_size = static_cast<size_t>(flags.GetInt("sample", 6000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  const auto study =
      expert::RunRevisionStudy(corpus, engine, config, {}, FlagExec(flags));
  const std::string out = flags.GetString("out", "revisions.jsonl");
  {
    const StageSpan save_span("save");
    COACHLM_RETURN_NOT_OK(SaveRevisions(out, study.revisions));
  }
  std::printf("examined %zu pairs: %zu excluded, %zu revised "
              "(instruction side %zu), %.0f person-days\n",
              config.sample_size, study.filter_stats.TotalExcluded(),
              study.revised_pairs, study.instruction_revised_pairs,
              study.person_days);
  std::printf("wrote %zu revision records to %s\n", study.revisions.size(),
              out.c_str());
  if (flags.Has("merged")) {
    const std::string merged = flags.GetString("merged");
    COACHLM_RETURN_NOT_OK(SaveDataset(study.merged_dataset, merged));
    std::printf("wrote Alpaca-human training set to %s\n", merged.c_str());
  }
  return Status::OK();
}

Status RunTrain(const Flags& flags) {
  Result<RevisionDataset> loaded = [&] {
    const StageSpan load_span("load");
    return LoadRevisions(flags.GetString("revisions", "revisions.jsonl"));
  }();
  COACHLM_ASSIGN_OR_RETURN(RevisionDataset revisions, std::move(loaded));
  coach::CoachConfig config;
  config.alpha = flags.GetDouble("alpha", 0.3);
  config.backbone = BackboneByName(flags.GetString("backbone", "chatglm2"));
  config.compiled_rules = CompiledRulesFlag(flags);
  const coach::CoachLm model = [&] {
    const StageSpan train_span("train");
    return coach::CoachTrainer(config).Train(revisions);
  }();
  const std::string checkpoint = flags.GetString("checkpoint", "coach.json");
  {
    const StageSpan save_span("save");
    COACHLM_RETURN_NOT_OK(model.SaveCheckpoint(checkpoint));
  }
  std::printf("coach tuned on %zu of %zu revision pairs (alpha=%.2f, "
              "backbone=%s); checkpoint: %s\n",
              model.rules().train_pairs, revisions.size(), config.alpha,
              config.backbone.name.c_str(), checkpoint.c_str());
  return Status::OK();
}

Status RunRevise(const Flags& flags) {
  const std::string in = InputPath(flags, "in", "corpus.json");
  coach::CoachConfig config;
  config.alpha = flags.GetDouble("alpha", 0.3);
  config.backbone = BackboneByName(flags.GetString("backbone", "chatglm2"));
  config.verify_expansions = flags.Has("verify");
  config.compiled_rules = CompiledRulesFlag(flags);
  COACHLM_ASSIGN_OR_RETURN(
      coach::CoachLm model,
      coach::CoachLm::LoadCheckpoint(
          flags.GetString("checkpoint", "coach.json"), config));
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<PipelineRuntime> owned,
                           MakeRuntime(flags));
  PipelineRuntime* runtime =
      owned != nullptr ? owned.get() : PipelineRuntime::Default();
  const Governance governance = MakeGovernance(flags, runtime);
  const std::string fingerprint =
      "revise in=" + in + " alpha=" + std::to_string(config.alpha) +
      " backbone=" + config.backbone.name +
      " plan=" + runtime->injector().plan().ToString();

  COACHLM_ASSIGN_OR_RETURN(const CorpusSniff sniff, SniffCorpus(in));
  coach::RevisionPassStats stats;
  InstructionDataset revised;
  bool checkpointed = false;
  if (sniff.sharded) {
    // Per-shard resumable execution: every shard is its own checkpoint /
    // resume unit (shard-qualified stage name and fingerprint), and the
    // outputs concatenate in shard order — byte-identical to the
    // whole-corpus pass because each pair's RNG derives from its id, not
    // its position. A killed run resumes finished shards instantly from
    // their journals and recomputes only the unfinished remainder.
    COACHLM_ASSIGN_OR_RETURN(const ShardManifest manifest,
                             ShardManifest::Load(in));
    const size_t num_shards = manifest.shards.size();
    revised.pairs().reserve(static_cast<size_t>(manifest.TotalRecords()));
    for (size_t k = 0; k < num_shards; ++k) {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<RecordReader> reader,
                               OpenShard(manifest, in, k));
      std::unique_ptr<StageCheckpointer> checkpoint = MakeCheckpointer(
          flags, ShardStageName("revise", k, num_shards),
          fingerprint + " shard=" + manifest.shards[k].file);
      checkpointed = checkpointed || checkpoint->enabled();
      DatasetRecordWriter writer(&revised);
      COACHLM_ASSIGN_OR_RETURN(
          const coach::RevisionPassStats shard_stats,
          model.ReviseRecords(reader.get(), &writer, {}, FlagExec(flags),
                              runtime, checkpoint.get()));
      stats.total += shard_stats.total;
      stats.invalid_replaced += shard_stats.invalid_replaced;
      stats.leakage_skipped += shard_stats.leakage_skipped;
      stats.changed += shard_stats.changed;
      stats.quarantined += shard_stats.quarantined;
      stats.recovered += shard_stats.recovered;
      stats.resumed += shard_stats.resumed;
      if (checkpoint->enabled() && !governance.cancelled()) {
        COACHLM_RETURN_NOT_OK(checkpoint->Finish());
      }
    }
  } else {
    COACHLM_ASSIGN_OR_RETURN(InstructionDataset corpus, LoadDataset(in));
    std::unique_ptr<StageCheckpointer> checkpoint =
        MakeCheckpointer(flags, "revise", fingerprint);
    checkpointed = checkpoint->enabled();
    revised = model.ReviseDataset(corpus, {}, &stats, FlagExec(flags),
                                  runtime, checkpoint.get());
    if (checkpoint->enabled() && !governance.cancelled()) {
      COACHLM_RETURN_NOT_OK(checkpoint->Finish());
    }
  }
  const std::string out = flags.GetString("out", "revised.json");
  COACHLM_RETURN_NOT_OK(SaveDataset(revised, out, FlagWriteOptions(flags)));
  std::printf("revised %zu pairs (%zu changed, %zu invalid outputs "
              "replaced, %zu quarantined, %zu resumed); wrote %s\n",
              stats.total, stats.changed, stats.invalid_replaced,
              stats.quarantined, stats.resumed, out.c_str());
  ReportCancellation(governance, checkpointed);
  return ReportRuntime(*runtime, flags);
}

Status RunRate(const Flags& flags) {
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset dataset,
      LoadDataset(InputPath(flags, "in", "corpus.json")));
  const auto rating =
      quality::AccuracyRater().RateDataset(dataset, FlagExec(flags));
  std::printf("%zu pairs: mean rating %.2f / 5, %.1f%% above 4.5\n",
              dataset.size(), rating.mean,
              rating.fraction_above_45 * 100.0);
  if (flags.Has("detailed")) {
    std::printf(
        "%s",
        quality::AnalyzeDataset(dataset, FlagExec(flags)).ToAscii().c_str());
  }
  return Status::OK();
}

Status RunInspect(const Flags& flags) {
  coach::CoachConfig config;
  COACHLM_ASSIGN_OR_RETURN(
      coach::CoachLm model,
      coach::CoachLm::LoadCheckpoint(
          flags.GetString("checkpoint", "coach.json"), config));
  const lm::RuleStore& rules = model.rules();
  std::printf("checkpoint: %s\n",
              flags.GetString("checkpoint", "coach.json").c_str());
  std::printf("trained on %zu coach-tuning samples\n\n", rules.train_pairs);

  std::printf("alignment statistics (what the coach will do):\n");
  std::printf("  expansion: ~%.1f sentences/pair toward %.0f words\n",
              rules.mean_appended_sentences,
              rules.mean_target_response_words);
  std::printf("  closing rate %.0f%%, context-add rate %.0f%%, rewrite "
              "rate %.0f%% (threshold %.3f)\n\n",
              rules.closing_rate * 100, rules.context_add_rate * 100,
              rules.rewrite_rate * 100, rules.rewrite_overlap_threshold);

  TableWriter subs({"Substitution", "->", "Support"});
  size_t shown = 0;
  for (const auto& [from, targets] : rules.token_subs) {
    for (const auto& [to, support] : targets) {
      if (shown++ >= 15) break;
      subs.AddRow({from, to, std::to_string(support)});
    }
  }
  std::printf("word substitutions (%zu learned, top shown):\n%s\n",
              rules.token_subs.size(), subs.ToAscii().c_str());

  auto print_table = [](const char* title,
                        const std::map<std::string, size_t>& table) {
    std::printf("%s (%zu):\n", title, table.size());
    size_t i = 0;
    for (const std::string& phrase :
         lm::RuleStore::PhrasesAbove(table, 1)) {
      if (i++ >= 6) break;
      std::printf("  [%s] x%zu\n", phrase.c_str(), table.at(phrase));
    }
    std::printf("\n");
  };
  print_table("learned closings", rules.closings);
  print_table("learned discourse markers", rules.markers);
  print_table("learned opener removals", rules.opener_removals);
  print_table("learned clause strips", rules.strip_phrases);
  std::printf("surface normalizations: capitalize x%zu, dedouble x%zu, "
              "reflow x%zu\n",
              rules.capitalize_support, rules.doubled_removal_support,
              rules.reflow_support);
  return Status::OK();
}

Status RunDiff(const Flags& flags) {
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset before,
      LoadDataset(flags.GetString("before")));
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset after,
      LoadDataset(flags.GetString("after")));
  if (before.size() != after.size()) {
    return Status::InvalidArgument(
        "datasets differ in size (" + std::to_string(before.size()) +
        " vs " + std::to_string(after.size()) + ")");
  }
  size_t instruction_changed = 0;
  size_t response_changed = 0;
  double edit_chars = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    RevisionRecord record;
    record.original = before[i];
    record.revised = after[i];
    record.RecomputeDerived();
    if (record.instruction_changed) ++instruction_changed;
    if (record.response_changed) ++response_changed;
    edit_chars += static_cast<double>(record.char_edit_distance);
  }
  std::printf("%zu pairs: %zu instructions changed, %zu responses changed, "
              "mean edit %.0f chars/pair\n",
              before.size(), instruction_changed, response_changed,
              edit_chars / static_cast<double>(before.size()));
  std::printf("%s", quality::QualityReport::Compare(
                        quality::AnalyzeDataset(before, FlagExec(flags)),
                        quality::AnalyzeDataset(after, FlagExec(flags)))
                        .c_str());
  return Status::OK();
}

Status RunEvaluate(const Flags& flags) {
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset original,
      LoadDataset(flags.GetString("original", "corpus.json")));
  COACHLM_ASSIGN_OR_RETURN(
      InstructionDataset revised,
      LoadDataset(flags.GetString("revised", "revised.json")));
  InstructionDataset human = original;
  if (flags.Has("human")) {
    COACHLM_ASSIGN_OR_RETURN(
        human, LoadDataset(flags.GetString("human")));
  }
  const std::string set_name = flags.GetString("testset", "coachlm150");
  testsets::TestSet set;
  if (set_name == "pandalm170") set = testsets::PandaLm170();
  else if (set_name == "vicuna80") set = testsets::Vicuna80();
  else if (set_name == "selfinstruct252") set = testsets::SelfInstruct252();
  else set = testsets::CoachLm150();

  tuning::ZooInputs inputs;
  inputs.original = &original;
  inputs.human_merged = &human;
  inputs.coach_revised = &revised;
  tuning::InstructionTuner tuner;
  const ExecutionContext& exec = FlagExec(flags);
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  TableWriter table({"Model", "WR1", "WR2", "QS"});
  for (const auto& entry : tuning::BuildBaselineGroup(inputs, tuner, exec)) {
    const auto eval =
        tuning::EvaluateModel(entry.model, set, panda, /*seed=*/5150, exec);
    table.AddRow({entry.model.spec().name, TableWriter::Pct(eval.rates.wr1),
                  TableWriter::Pct(eval.rates.wr2),
                  TableWriter::Pct(eval.rates.qs)});
  }
  std::printf("test set: %s (%zu items, refs: %s)\n%s", set.name.c_str(),
              set.items.size(), set.reference_source.c_str(),
              table.ToAscii().c_str());
  return Status::OK();
}

Status RunPipeline(const Flags& flags) {
  // The Fig. 2 flow in one process: synthesize a corpus, run the expert
  // study, train CoachLM, revise the corpus. The revision pass — the
  // dominant stage — is the one journaled under --checkpoint-dir.
  synth::CorpusConfig corpus_config;
  corpus_config.size = static_cast<size_t>(flags.GetInt("size", 52000));
  corpus_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<PipelineRuntime> owned,
                           MakeRuntime(flags));
  PipelineRuntime* runtime =
      owned != nullptr ? owned.get() : PipelineRuntime::Default();
  const Governance governance = MakeGovernance(flags, runtime);
  const ExecutionContext& exec = FlagExec(flags);

  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate(exec, runtime);
  std::printf("generated %zu pairs\n", corpus.dataset.size());

  synth::ContentEngine engine;
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = static_cast<size_t>(flags.GetInt("sample", 6000));
  study_config.seed = static_cast<uint64_t>(flags.GetInt("study-seed", 17));
  const auto study = expert::RunRevisionStudy(corpus.dataset, engine,
                                              study_config, {}, exec);
  std::printf("study: %zu revision records from %zu sampled pairs\n",
              study.revisions.size(), study_config.sample_size);

  coach::CoachConfig coach_config;
  coach_config.alpha = flags.GetDouble("alpha", 0.3);
  coach_config.backbone =
      BackboneByName(flags.GetString("backbone", "chatglm2"));
  coach_config.compiled_rules = CompiledRulesFlag(flags);

  std::unique_ptr<StageCheckpointer> checkpoint = MakeCheckpointer(
      flags, "pipeline-revise",
      "pipeline size=" + std::to_string(corpus_config.size) +
          " seed=" + std::to_string(corpus_config.seed) +
          " sample=" + std::to_string(study_config.sample_size) +
          " study-seed=" + std::to_string(study_config.seed) +
          " alpha=" + std::to_string(coach_config.alpha) +
          " backbone=" + coach_config.backbone.name +
          " plan=" + runtime->injector().plan().ToString());
  const coach::CoachPipelineResult result = coach::RunCoachPipeline(
      corpus.dataset, study.revisions, coach_config, exec, runtime,
      checkpoint.get());
  if (checkpoint->enabled() && !governance.cancelled()) {
    COACHLM_RETURN_NOT_OK(checkpoint->Finish());
  }

  const std::string out = flags.GetString("out", "revised.json");
  COACHLM_RETURN_NOT_OK(
      SaveDataset(result.revised_dataset, out, FlagWriteOptions(flags)));
  std::printf("revised %zu pairs (%zu changed, %zu invalid outputs "
              "replaced, %zu quarantined, %zu recovered, %zu resumed); "
              "wrote %s\n",
              result.stats.total, result.stats.changed,
              result.stats.invalid_replaced, result.stats.quarantined,
              result.stats.recovered, result.stats.resumed, out.c_str());
  ReportCancellation(governance, checkpoint->enabled());
  return ReportRuntime(*runtime, flags);
}

Status RunConvert(const Flags& flags) {
  // Re-encode a corpus between backends: JSONL -> sharded binary for
  // scale, binary -> JSON for interop, and every other combination. The
  // record values pass through untouched, so a round trip reproduces the
  // original bytes (the corpus-io CI job cmp-checks exactly that).
  const std::string in = InputPath(flags, "in", "corpus.json");
  const std::string out = flags.GetString("out", "corpus.clmb");
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset, LoadDataset(in));
  COACHLM_RETURN_NOT_OK(SaveDataset(dataset, out, FlagWriteOptions(flags)));
  std::printf("converted %zu pairs: %s -> %s\n", dataset.size(), in.c_str(),
              out.c_str());
  return Status::OK();
}

/// Run-report path of worker \p index under a supervised serve: the parent
/// merges and removes these after the fleet drains.
std::string WorkerReportPath(const std::string& metrics_out, int index) {
  return metrics_out + ".worker-" + std::to_string(index);
}

/// `coachlm serve --serve-processes N` (N > 1): crash-only mode. The
/// parent process never serves; it forks N workers that each bind the
/// shared port via SO_REUSEPORT and supervises them — reap on death,
/// respawn on a deterministic exponential backoff, circuit-break a crash
/// loop (exit kSupervisorCircuitExitCode), forward SIGTERM (drain) and
/// SIGHUP (reload) to the fleet. Each worker writes its own run report;
/// the parent folds them into its registry so Main() emits one merged,
/// schema-identical report for the whole fleet.
Status RunServeSupervised(const Flags& flags, serve::ServeConfig config,
                          int processes) {
  // Fail fast in the parent: a checkpoint that cannot load would send
  // every worker into the same crash loop, which the circuit breaker
  // would stop — but a typed startup error is cheaper and clearer.
  {
    serve::ModelHost probe(config.checkpoint, config.coach);
    COACHLM_RETURN_NOT_OK(probe.Load());
  }
  config.reuse_port = true;

  const std::string metrics_out =
      flags.Has("metrics-out") ? flags.GetString("metrics-out")
                               : GetEnvOr("COACHLM_METRICS_OUT", "");
  const bool observed = !metrics_out.empty();

  serve::SupervisorConfig supervisor_config;
  supervisor_config.processes = processes;

  auto worker_body = [&config, &metrics_out, observed](int index) -> int {
    // The child inherited the parent's signal flags, metric counts, and
    // open root span; start clean so its report covers only this worker.
    serve::ResetServeSignalsForTest();
    serve::InstallServeSignalHandlers();
    int worker_span = -1;
    if (observed) {
      MetricsRegistry::Default().Reset();
      Observability::Default().trace().Reset();
      worker_span = Observability::Default().trace().BeginSpan("serve");
    }
    serve::ModelHost models(config.checkpoint, config.coach);
    if (!models.Load().ok()) return 1;
    serve::RevisionServer server(config, &models);
    const Status started = server.StartServing();
    if (!started.ok()) {
      std::fprintf(stderr, "serve worker %d: %s\n", index,
                   started.ToString().c_str());
      return 1;
    }
    server.AwaitDrain();
    if (worker_span >= 0) {
      Observability::Default().trace().EndSpan(worker_span);
      RunReportOptions options;
      options.command = "serve";
      const Status report =
          WriteRunReport(WorkerReportPath(metrics_out, index), options);
      if (!report.ok()) {
        std::fprintf(stderr, "serve worker %d: report: %s\n", index,
                     report.ToString().c_str());
        return 1;
      }
    }
    return 0;
  };

  serve::InstallServeSignalHandlers();
  serve::WorkerSupervisor supervisor(supervisor_config, worker_body);
  COACHLM_RETURN_NOT_OK(supervisor.Start());
  std::printf("serving on 127.0.0.1:%d with %d supervised worker processes "
              "(checkpoint %s); SIGTERM drains, SIGHUP reloads\n",
              config.port, processes, config.checkpoint.c_str());
  std::fflush(stdout);
  const int code = supervisor.Run();
  const serve::SupervisorStats& stats = supervisor.stats();
  std::printf(
      "serve supervisor %s: %llu spawned, %llu crashed, %llu respawned\n",
      code == 0 ? "drained" : "circuit-broke",
      static_cast<unsigned long long>(stats.spawned),
      static_cast<unsigned long long>(stats.crashed),
      static_cast<unsigned long long>(stats.respawned));
  if (code != 0) {
    // Crash loop: exit with the distinguishable circuit-breaker code.
    // Crash-only exit — no fleet run report; the log is the diagnosis.
    std::fflush(stdout);
    std::_Exit(code);
  }
  if (observed) {
    // A worker that crashed and never drained leaves no report — skip it;
    // its partial counts died with it, which is the crash-only contract.
    for (int i = 0; i < processes; ++i) {
      const std::string path = WorkerReportPath(metrics_out, i);
      Result<std::string> text = json::ReadFile(path);
      if (!text.ok()) continue;
      COACHLM_ASSIGN_OR_RETURN(const json::Value report, json::Parse(*text));
      COACHLM_RETURN_NOT_OK(MergeRunReportMetrics(report));
      std::remove(path.c_str());
    }
  }
  return Status::OK();
}

Status RunServe(const Flags& flags) {
  serve::ServeConfig config;
  config.port = static_cast<int>(flags.GetInt("port", 8080));
  config.workers = static_cast<int>(flags.GetInt("serve-workers", 4));
  config.queue_depth = static_cast<int>(flags.GetInt("queue-depth", 64));
  config.request_deadline_ms = flags.GetInt("request-deadline-ms", 2000);
  config.read_timeout_ms = flags.GetInt("read-timeout-ms", 0);
  config.write_timeout_ms = flags.GetInt("write-timeout-ms", 0);
  config.checkpoint = flags.GetString("checkpoint", "coach.json");
  config.coach.alpha = flags.GetDouble("alpha", 0.3);
  config.coach.backbone =
      BackboneByName(flags.GetString("backbone", "chatglm2"));
  config.coach.verify_expansions = flags.Has("verify");
  config.coach.compiled_rules = CompiledRulesFlag(flags);
  config.parse_limits = json::ParseLimits::Default();
  if (flags.Has("fault-plan")) {
    COACHLM_ASSIGN_OR_RETURN(config.fault_plan,
                             FaultPlan::Parse(flags.GetString("fault-plan")));
  }
  if (flags.Has("retry-max")) {
    config.retry.max_attempts =
        static_cast<int>(flags.GetInt("retry-max", 4));
  }
  COACHLM_RETURN_NOT_OK(config.Validate());

  const int processes = static_cast<int>(flags.GetInt("serve-processes", 1));
  if (processes > 1) return RunServeSupervised(flags, config, processes);

  // The daemon deliberately opens no child spans: the root "serve" span
  // alone covers the whole resident lifetime in the run report, and
  // workers are not the driver thread anyway.
  serve::ModelHost models(config.checkpoint, config.coach);
  COACHLM_RETURN_NOT_OK(models.Load());
  serve::InstallServeSignalHandlers();
  serve::RevisionServer server(config, &models);
  COACHLM_RETURN_NOT_OK(server.StartServing());
  std::printf("serving on 127.0.0.1:%d (checkpoint %s, model version %llu); "
              "SIGTERM drains, SIGHUP reloads\n",
              server.port(), config.checkpoint.c_str(),
              static_cast<unsigned long long>(models.version()));
  std::fflush(stdout);
  // The accept loop polls the signal flags; this blocks until a drain
  // (SIGTERM/SIGINT) has been requested AND every admitted request got its
  // response. Main() then flushes the run report as for any command.
  server.AwaitDrain();
  const serve::ServerStats& stats = server.stats();
  std::printf(
      "serve drained: %llu connections, %llu ok, %llu shed, %llu client "
      "errors, %llu server errors, %llu deadline, %llu reloads (%llu "
      "rejected)\n",
      static_cast<unsigned long long>(
          stats.connections_accepted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.requests_ok.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.requests_shed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.requests_client_error.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.requests_server_error.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.requests_deadline.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.reloads_ok.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.reloads_rejected.load(std::memory_order_relaxed)));
  return Status::OK();
}

/// Validates every flag that must be numeric / well-formed before any
/// command runs, so a typo is a usage error (exit 2), never a silently
/// substituted default. Returns the first violation.
Status ValidateFlags(const Flags& flags) {
  // Strictly-integer flags, with their lower bounds. An explicit
  // `--threads 0` is rejected even though the *absent* flag defaults to 0
  // (auto): passing zero workers is always a mistake.
  struct IntFlag {
    const char* name;
    int64_t min;
    int64_t max;
  };
  constexpr int64_t kMax = INT64_MAX;
  const IntFlag int_flags[] = {
      {"size", 0, kMax},
      {"seed", 0, kMax},
      {"sample", 0, kMax},
      {"shards", 1, 100000},
      {"study-seed", 0, kMax},
      {"threads", 1, 1024},
      {"retry-max", 1, kMax},
      {"checkpoint-interval", 1, kMax},
      {"crash-after-commits", 1, kMax},
      {"deadline-ms", 1, kMax},
      {"stall-timeout-ms", 1, kMax},
      {"max-record-bytes", 1, kMax},
      {"max-json-depth", 1, kMax},
      {"port", 1, 65535},
      {"serve-workers", 1, 1024},
      {"serve-processes", 1, 256},
      {"queue-depth", 1, 1000000},
      {"request-deadline-ms", 1, kMax},
      {"read-timeout-ms", 1, kMax},
      {"write-timeout-ms", 1, kMax},
  };
  for (const IntFlag& spec : int_flags) {
    if (!flags.Has(spec.name)) continue;
    COACHLM_ASSIGN_OR_RETURN(const int64_t value,
                             flags.GetIntStrict(spec.name, 0));
    if (value < spec.min || value > spec.max) {
      return Status::InvalidArgument(
          "--" + std::string(spec.name) + " must be " +
          (spec.max == kMax
               ? ">= " + std::to_string(spec.min)
               : "between " + std::to_string(spec.min) + " and " +
                     std::to_string(spec.max)) +
          " (got " + std::to_string(value) + ")");
    }
  }
  if (flags.Has("fault-plan")) {
    // Surface unknown sites / malformed specs as usage errors up front,
    // not mid-command.
    COACHLM_RETURN_NOT_OK(
        FaultPlan::Parse(flags.GetString("fault-plan")).status());
  }
  if (flags.Has("format")) {
    // Unknown corpus formats are usage errors, never silently "auto".
    COACHLM_RETURN_NOT_OK(
        ParseCorpusFormat(flags.GetString("format")).status());
  }
  if (flags.Has("rule-engine")) {
    const std::string engine = flags.GetString("rule-engine");
    if (engine != "compiled" && engine != "scan") {
      return Status::InvalidArgument(
          "--rule-engine must be 'compiled' or 'scan' (got '" + engine +
          "'); see docs/RULE_ENGINE.md");
    }
  }
  if (flags.command() == "serve") {
    // The daemon is not a batch run: flags that steer batch I/O,
    // checkpoint/resume, or the whole-run deadline have no meaning for a
    // resident service and are rejected instead of silently ignored.
    static const char* const kBatchOnly[] = {
        "in", "out",
        "resume", "checkpoint-dir",
        "checkpoint-interval", "crash-after-commits",
        "corpus-manifest", "shards",
        "format", "deadline-ms",
        "stall-timeout-ms",
    };
    for (const char* banned : kBatchOnly) {
      if (flags.Has(banned)) {
        return Status::InvalidArgument(
            "serve: --" + std::string(banned) +
            " is a batch-only flag (use --request-deadline-ms for the "
            "per-request budget; see docs/SERVING.md)");
      }
    }
  }
  if (flags.Has("corpus-manifest")) {
    const std::string manifest = flags.GetString("corpus-manifest");
    const std::string suffix = ".manifest.json";
    if (manifest.size() <= suffix.size() ||
        manifest.compare(manifest.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      return Status::InvalidArgument(
          "--corpus-manifest must name a .manifest.json file (got '" +
          manifest + "')");
    }
  }
  return Status::OK();
}

/// `coachlm metrics`: prints the metric catalog (the registry's single
/// source of truth, which tools/check_docs.sh diffs against the docs), or
/// with --validate schema-checks a run report — or a JSONL bench
/// trajectory, validating each line — against ValidateRunReport.
Status RunMetrics(const Flags& flags) {
  if (!flags.Has("validate")) {
    std::printf("%s", MetricsRegistry::CatalogDump().c_str());
    return Status::OK();
  }
  const std::string path = flags.GetString("validate");
  COACHLM_ASSIGN_OR_RETURN(const std::string text, json::ReadFile(path));
  Result<json::Value> whole = json::Parse(text);
  if (whole.ok()) {
    COACHLM_RETURN_NOT_OK(ValidateRunReport(*whole));
    std::printf("%s: valid run report\n", path.c_str());
    return Status::OK();
  }
  // Not a single document: treat as a bench trajectory (one compact report
  // per line, as CI appends to BENCH_pipeline.json).
  size_t line_number = 0;
  size_t validated = 0;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? end : end - start);
    ++line_number;
    start = end == std::string::npos ? text.size() + 1 : end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<json::Value> parsed = json::Parse(line);
    if (!parsed.ok()) {
      return Status::ParseError(path + ":" + std::to_string(line_number) +
                                ": " + parsed.status().message());
    }
    const Status line_status = ValidateRunReport(*parsed);
    if (!line_status.ok()) {
      return Status::ParseError(path + ":" + std::to_string(line_number) +
                                ": " + line_status.message());
    }
    ++validated;
  }
  if (validated == 0) {
    return Status::ParseError(path + ": no JSON documents found");
  }
  std::printf("%s: valid trajectory (%zu reports)\n", path.c_str(), validated);
  return Status::OK();
}

/// Applies --max-record-bytes / --max-json-depth on top of the
/// environment-configured process-wide parse limits.
void ApplyParseLimitFlags(const Flags& flags) {
  if (!flags.Has("max-record-bytes") && !flags.Has("max-json-depth")) return;
  json::ParseLimits limits = json::ParseLimits::Default();
  if (flags.Has("max-record-bytes")) {
    limits.max_record_bytes =
        static_cast<size_t>(flags.GetInt("max-record-bytes", 0));
  }
  if (flags.Has("max-json-depth")) {
    limits.max_depth = static_cast<size_t>(flags.GetInt("max-json-depth", 0));
  }
  json::ParseLimits::SetProcessDefault(limits);
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(
      argc, argv,
      {"size", "seed", "out", "in", "sample", "merged", "revisions", "alpha",
       "backbone", "checkpoint", "verify", "threads", "original", "revised",
       "human", "testset", "detailed", "before", "after", "fault-plan",
       "retry-max", "quarantine", "checkpoint-dir", "resume",
       "crash-after-commits", "checkpoint-interval", "study-seed",
       "deadline-ms", "stall-timeout-ms", "max-record-bytes",
       "max-json-depth", "metrics-out", "metrics-deterministic", "validate",
       "format", "shards", "corpus-manifest", "rule-engine", "port",
       "serve-workers", "serve-processes", "queue-depth",
       "request-deadline-ms",
       "read-timeout-ms", "write-timeout-ms"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n%s", flags.status().ToString().c_str(), kUsage);
    return 2;
  }
  const Status valid = ValidateFlags(*flags);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n%s", valid.ToString().c_str(), kUsage);
    return 2;
  }
  ApplyParseLimitFlags(*flags);
  const std::string& command = flags->command();
  // Observability: when a report path is configured (flag or environment),
  // arm metrics + tracing before dispatch and write the report after —
  // even for a failed run, so operators can see where it got to.
  const std::string metrics_out =
      flags->Has("metrics-out") ? flags->GetString("metrics-out")
                                : GetEnvOr("COACHLM_METRICS_OUT", "");
  const bool metrics_deterministic =
      flags->Has("metrics-deterministic") ||
      GetEnvOr("COACHLM_METRICS_DETERMINISTIC", "") == "1";
  int root_span = -1;
  if (!metrics_out.empty() && command != "metrics") {
    Observability::Default().Enable(metrics_deterministic);
    FlagExec(*flags).set_collect_stats(true);
    root_span = Observability::Default().trace().BeginSpan(command);
  }
  Status status;
  if (command == "generate") status = RunGenerate(*flags);
  else if (command == "study") status = RunStudy(*flags);
  else if (command == "train") status = RunTrain(*flags);
  else if (command == "revise") status = RunRevise(*flags);
  else if (command == "rate") status = RunRate(*flags);
  else if (command == "diff") status = RunDiff(*flags);
  else if (command == "inspect") status = RunInspect(*flags);
  else if (command == "evaluate") status = RunEvaluate(*flags);
  else if (command == "pipeline") status = RunPipeline(*flags);
  else if (command == "convert") status = RunConvert(*flags);
  else if (command == "metrics") status = RunMetrics(*flags);
  else if (command == "serve") status = RunServe(*flags);
  else {
    std::fprintf(stderr, "%s", kUsage);
    return command.empty() ? 0 : 2;
  }
  if (root_span >= 0) {
    Observability::Default().trace().EndSpan(root_span);
    RunReportOptions options;
    options.command = command;
    options.exec = &FlagExec(*flags);
    const Status report_status = WriteRunReport(metrics_out, options);
    if (!report_status.ok()) {
      std::fprintf(stderr, "error: run report: %s\n",
                   report_status.ToString().c_str());
      if (status.ok()) return 1;
    } else {
      std::printf("wrote run report to %s\n", metrics_out.c_str());
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace coachlm

int main(int argc, char** argv) { return coachlm::Main(argc, argv); }
