#!/usr/bin/env sh
# Doc-drift gate: the operator-facing documentation must cover everything
# the binary actually exposes.
#
#   1. Every `--flag` in `coachlm`'s usage text must appear in README.md
#      or docs/*.md.
#   2. Every metric name in the registry's catalog dump
#      (`coachlm metrics`) must appear in docs/OBSERVABILITY.md.
#   3. Every lint rule in `coachlm_lint`'s usage text must appear in
#      docs/LINT.md — the rule catalog cannot lag the checker.
#   4. Every `rules.*` metric must ALSO appear in docs/RULE_ENGINE.md —
#      the rule-engine spec documents its own observability surface.
#
# Both sets are extracted from the *built binary*, not from the sources,
# so adding a flag or a catalog entry without documenting it fails CI —
# and removing a documented line fails the same way. Usage:
#
#   tools/check_docs.sh [BUILD_DIR]     # default: build
set -u

BUILD_DIR="${1:-build}"
COACHLM="$BUILD_DIR/tools/coachlm"
REPO_ROOT="$(dirname "$0")/.."

if [ ! -x "$COACHLM" ]; then
  echo "check_docs: $COACHLM not found or not executable" \
       "(build the coachlm target first)" >&2
  exit 2
fi

fail=0

# --- 1. CLI flags -----------------------------------------------------
# The usage text goes to stderr when invoked without a command.
flags=$("$COACHLM" 2>&1 | grep -o -- '--[a-z][a-z-]*' | sort -u)
if [ -z "$flags" ]; then
  echo "check_docs: could not extract any --flags from the usage text" >&2
  exit 2
fi
for flag in $flags; do
  if ! grep -qr -- "$flag" "$REPO_ROOT/README.md" "$REPO_ROOT/docs"; then
    echo "check_docs: FAIL: flag '$flag' (from coachlm usage) is not" \
         "documented in README.md or docs/" >&2
    fail=1
  fi
done

# --- 2. Metric catalog ------------------------------------------------
# Column 1 of the tab-separated catalog dump is the metric name.
metrics=$("$COACHLM" metrics | cut -f1)
if [ -z "$metrics" ]; then
  echo "check_docs: could not extract the metric catalog" >&2
  exit 2
fi
for metric in $metrics; do
  if ! grep -q -- "$metric" "$REPO_ROOT/docs/OBSERVABILITY.md"; then
    echo "check_docs: FAIL: metric '$metric' (from the registry catalog)" \
         "is not documented in docs/OBSERVABILITY.md" >&2
    fail=1
  fi
done

# --- 2b. Rule-engine spec ---------------------------------------------
# The rules.* metrics are the compiled engine's operator surface; the
# spec that defines the engine must cover them too, not only the
# catalog table in OBSERVABILITY.md.
for metric in $metrics; do
  case "$metric" in
    rules.*)
      if ! grep -q -- "$metric" "$REPO_ROOT/docs/RULE_ENGINE.md"; then
        echo "check_docs: FAIL: metric '$metric' is not documented in" \
             "docs/RULE_ENGINE.md (the rule-engine spec)" >&2
        fail=1
      fi
      ;;
  esac
done

# --- 3. Lint rules ----------------------------------------------------
# The usage text lists one rule per indented line under "Rules:".
LINT="$BUILD_DIR/tools/coachlm_lint"
if [ ! -x "$LINT" ]; then
  echo "check_docs: $LINT not found or not executable" \
       "(build the coachlm_lint target first)" >&2
  exit 2
fi
rules=$("$LINT" 2>&1 | sed -n 's/^    \([a-z][a-z-]*\).*/\1/p' | sort -u)
if [ -z "$rules" ]; then
  echo "check_docs: could not extract any rules from the lint usage" >&2
  exit 2
fi
for rule in $rules; do
  if ! grep -q -- "$rule" "$REPO_ROOT/docs/LINT.md"; then
    echo "check_docs: FAIL: lint rule '$rule' (from coachlm_lint usage)" \
         "is not documented in docs/LINT.md" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: documentation drift detected (see above)" >&2
  exit 1
fi
n_flags=$(printf '%s\n' "$flags" | wc -l)
n_metrics=$(printf '%s\n' "$metrics" | wc -l)
n_rules=$(printf '%s\n' "$rules" | wc -l)
echo "check_docs: OK ($n_flags flags, $n_metrics metrics, $n_rules lint" \
     "rules all documented)"
exit 0
