#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "json/jsonl.h"
#include "text/string_util.h"

namespace coachlm {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Replaces comments and string/char literals with spaces (newlines kept),
/// so the rule scanners never fire on prose or literal text. Handles //,
/// /* */, "..." with escapes, '...' and the simple R"(...)" raw form.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class Mode { kCode, kLine, kBlock, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(out[i - 1])) &&
                   i + 2 < out.size() && out[i + 2] == '(') {
          mode = Mode::kRaw;
          out[i] = ' ';
        } else if (c == '"') {
          mode = Mode::kString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !IsIdentChar(out[i - 1]))) {
          // The ident-char guard keeps digit separators (1'000) in kCode.
          mode = Mode::kChar;
          out[i] = ' ';
        }
        break;
      case Mode::kLine:
        if (c == '\n') {
          mode = Mode::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case Mode::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) out[++i] = ' ';
        } else if (c == '"') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) out[++i] = ' ';
        } else if (c == '\'') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kRaw:
        if (c == ')' && next == '"') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Additionally blanks preprocessor directives (and their continuation
/// lines) so the statement scanner never glues code across an #include or
/// #define. Include hygiene reads the raw lines instead.
std::string BlankPreprocessor(std::string text) {
  size_t i = 0;
  while (i < text.size()) {
    size_t j = i;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    const bool directive = j < text.size() && text[j] == '#';
    bool continued = true;
    while (continued) {
      continued = false;
      size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = text.size();
      if (directive) {
        if (eol > i && text[eol - 1] == '\\') continued = true;
        for (size_t k = i; k < eol; ++k) text[k] = ' ';
      }
      i = eol + 1;
      if (i > text.size()) i = text.size();
      if (!directive) break;
    }
  }
  return text;
}

std::vector<std::string> SplitRawLines(const std::string& text) {
  std::vector<std::string> lines = strings::Split(text, '\n',
                                                  /*keep_empty=*/true);
  return lines;
}

class LineIndex {
 public:
  explicit LineIndex(const std::string& text) {
    starts_.push_back(0);
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }

  /// 1-based line number containing byte \p offset.
  size_t LineAt(size_t offset) const {
    size_t lo = 0, hi = starts_.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (starts_[mid] <= offset) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo + 1;
  }

 private:
  std::vector<size_t> starts_;
};

/// True when text[pos..pos+word) equals \p word with identifier boundaries
/// on both sides.
bool IsWordAt(const std::string& text, size_t pos, const std::string& word) {
  if (pos + word.size() > text.size()) return false;
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + word.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() && IsSpaceChar(text[pos])) ++pos;
  return pos;
}

/// Reads an identifier at \p pos; returns empty when none starts there.
std::string ReadIdent(const std::string& text, size_t pos, size_t* end) {
  size_t i = pos;
  if (i >= text.size() || IsIdentChar(text[i]) == false ||
      (text[i] >= '0' && text[i] <= '9')) {
    *end = pos;
    return "";
  }
  while (i < text.size() && IsIdentChar(text[i])) ++i;
  *end = i;
  return text.substr(pos, i - pos);
}

/// Skips a balanced <...> starting at \p pos (which must be '<'). Returns
/// the index just past the matching '>', or npos on imbalance.
size_t SkipAngles(const std::string& text, size_t pos) {
  if (pos >= text.size() || text[pos] != '<') return std::string::npos;
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (text[i] == ';' || text[i] == '{') return std::string::npos;
  }
  return std::string::npos;
}

/// Skips a balanced bracket pair ('(' / '{' / '[') starting at \p pos.
/// Returns the index just past the matching closer, or npos.
size_t SkipBalanced(const std::string& text, size_t pos, char open,
                    char close) {
  if (pos >= text.size() || text[pos] != open) return std::string::npos;
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    if (text[i] == close) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kSet = {
      "alignas",  "auto",     "bool",     "break",     "case",     "catch",
      "char",     "class",    "const",    "constexpr", "continue", "default",
      "delete",   "do",       "double",   "else",      "enum",     "explicit",
      "extern",   "float",    "for",      "friend",    "goto",     "if",
      "inline",   "int",      "long",     "namespace", "new",      "operator",
      "private",  "protected", "public",  "return",    "short",    "signed",
      "size_t",   "sizeof",   "static",   "struct",    "switch",   "template",
      "throw",    "try",      "typedef",  "typename",  "union",    "unsigned",
      "using",    "virtual",  "void",     "volatile",  "while",
  };
  return kSet;
}

/// If \p stmt (already trimmed) is a pure call-expression statement —
/// `a::b->c.Name(...)` spanning the whole statement — returns `Name`;
/// otherwise returns "".
std::string CalledName(const std::string& stmt) {
  if (stmt.empty() || !strings::EndsWith(stmt, ")")) return "";
  size_t pos = 0;
  std::string last;
  while (true) {
    pos = SkipSpaces(stmt, pos);
    size_t end = 0;
    const std::string ident = ReadIdent(stmt, pos, &end);
    if (ident.empty()) return "";
    last = ident;
    pos = SkipSpaces(stmt, end);
    if (pos >= stmt.size()) return "";
    if (stmt[pos] == '<') {
      // Template arguments before the call, e.g. Get<int>(...).
      const size_t after = SkipAngles(stmt, pos);
      if (after == std::string::npos) return "";
      pos = SkipSpaces(stmt, after);
      if (pos >= stmt.size()) return "";
    }
    if (stmt[pos] == '(') {
      const size_t after = SkipBalanced(stmt, pos, '(', ')');
      if (after == std::string::npos) return "";
      // The call must cover the rest of the statement; anything trailing
      // (operators, member chains) means the value is consumed.
      return SkipSpaces(stmt, after) >= stmt.size() ? last : "";
    }
    if (stmt.compare(pos, 2, "::") == 0 || stmt.compare(pos, 2, "->") == 0) {
      pos += 2;
    } else if (stmt[pos] == '.') {
      pos += 1;
    } else {
      return "";
    }
  }
}

/// True when the raw source line carries a non-empty // comment (the
/// justification requirement for (void)-discarded Status values).
bool HasExplainingComment(const std::vector<std::string>& raw_lines,
                          size_t line /*1-based*/) {
  auto line_has = [&](size_t idx) {
    if (idx == 0 || idx > raw_lines.size()) return false;
    const std::string& text = raw_lines[idx - 1];
    const size_t pos = text.find("//");
    if (pos == std::string::npos) return false;
    return !strings::Trim(text.substr(pos + 2)).empty();
  };
  return line_has(line) || (line > 1 && line_has(line - 1));
}

struct Suppression {
  std::set<std::string> rules;
  bool has_justification = false;
};

/// Parses `COACHLM_LINT_ALLOW(rule[,rule...]): justification` out of a raw
/// source line, if present.
bool ParseSuppression(const std::string& raw_line, Suppression* out) {
  static const std::string kMarker = "COACHLM_LINT_ALLOW(";
  const size_t pos = raw_line.find(kMarker);
  if (pos == std::string::npos) return false;
  const size_t open = pos + kMarker.size() - 1;
  const size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  out->rules.clear();
  for (const std::string& rule :
       strings::Split(raw_line.substr(open + 1, close - open - 1), ',')) {
    const std::string trimmed = strings::Trim(rule);
    if (!trimmed.empty()) out->rules.insert(trimmed);
  }
  out->has_justification = false;
  const size_t after = SkipSpaces(raw_line, close + 1);
  if (after < raw_line.size() && raw_line[after] == ':') {
    out->has_justification =
        !strings::Trim(raw_line.substr(after + 1)).empty();
  }
  return !out->rules.empty();
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void CheckBannedSymbols(const std::string& path, const std::string& code,
                        const LineIndex& lines,
                        std::vector<Finding>* findings) {
  struct Banned {
    const char* word;
    bool call_only;  // require a following '('
    const char* message;
  };
  static const Banned kBanned[] = {
      {"random_device", false,
       "std::random_device is nondeterministic; derive streams from the run "
       "seed via DeriveRng (common/rng.h)"},
      {"rand", true,
       "rand() is nondeterministic across platforms; use the seeded Rng "
       "streams from common/rng.h"},
      {"srand", true,
       "srand() seeds hidden global state; use per-item DeriveRng streams "
       "instead"},
      {"time", true,
       "time() reads the wall clock; inject a Clock (common/clock.h) so the "
       "call is fake-clock-testable"},
  };
  for (const Banned& banned : kBanned) {
    const std::string word = banned.word;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      if (banned.call_only) {
        const size_t next = SkipSpaces(code, pos + word.size());
        if (next >= code.size() || code[next] != '(') continue;
      }
      findings->push_back({path, lines.LineAt(pos), kRuleBannedSymbol,
                           banned.message});
    }
  }
  // Unseeded std::mt19937: a declaration with no constructor argument
  // falls back to the default seed on every platform differently enough
  // to matter — and hides the stream from the replay machinery.
  for (const std::string& engine : {std::string("mt19937"),
                                    std::string("mt19937_64")}) {
    for (size_t pos = code.find(engine); pos != std::string::npos;
         pos = code.find(engine, pos + 1)) {
      if (!IsWordAt(code, pos, engine)) continue;
      size_t cursor = SkipSpaces(code, pos + engine.size());
      if (cursor < code.size() &&
          (code[cursor] == '>' || code[cursor] == '*' || code[cursor] == '&' ||
           code[cursor] == ',' || code[cursor] == ')' ||
           code[cursor] == ':')) {
        continue;  // template argument, pointer/ref type, or qualifier use
      }
      size_t end = 0;
      const std::string name = ReadIdent(code, cursor, &end);
      if (!name.empty()) cursor = SkipSpaces(code, end);
      bool unseeded = false;
      if (cursor < code.size() && code[cursor] == ';') {
        unseeded = !name.empty();
      } else if (cursor < code.size() &&
                 (code[cursor] == '(' || code[cursor] == '{')) {
        const char open = code[cursor];
        const char close = open == '(' ? ')' : '}';
        const size_t inner = SkipSpaces(code, cursor + 1);
        unseeded = inner < code.size() && code[inner] == close;
      }
      if (unseeded) {
        findings->push_back(
            {path, lines.LineAt(pos), kRuleBannedSymbol,
             "unseeded std::" + engine +
                 " uses the default seed; seed it from a DeriveRng stream"});
      }
    }
  }
}

void CheckRawClock(const std::string& path, const std::string& code,
                   const LineIndex& lines, std::vector<Finding>* findings) {
  static const char* kClocks[] = {"steady_clock", "system_clock",
                                  "high_resolution_clock"};
  for (const char* clock : kClocks) {
    const std::string word = clock;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      size_t cursor = SkipSpaces(code, pos + word.size());
      if (code.compare(cursor, 2, "::") != 0) continue;
      cursor = SkipSpaces(code, cursor + 2);
      if (!IsWordAt(code, cursor, "now")) continue;
      cursor = SkipSpaces(code, cursor + 3);
      if (cursor >= code.size() || code[cursor] != '(') continue;
      findings->push_back(
          {path, lines.LineAt(pos), kRuleRawClock,
           std::string(clock) +
               "::now() bypasses the injectable Clock; call "
               "Clock::System()->NowMicros() (common/clock.h) so tests can "
               "substitute a FakeClock"});
    }
  }
}

void CheckUnorderedSerialization(const std::string& path,
                                 const std::string& code,
                                 const LineIndex& lines,
                                 const SymbolRegistry& registry,
                                 std::vector<Finding>* findings) {
  static const char* kSinks[] = {"<<",           ".append(", "push_back(",
                                 "emplace_back(", "+=",       "WriteFile",
                                 "SaveJsonl",     "Serialize", "ToJson"};
  for (size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (!IsWordAt(code, pos, "for")) continue;
    const size_t open = SkipSpaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const size_t after = SkipBalanced(code, open, '(', ')');
    if (after == std::string::npos) continue;
    const std::string header = code.substr(open + 1, after - open - 2);
    // Locate the range-for ':' at top level (':' but not '::').
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        const bool double_colon =
            (i + 1 < header.size() && header[i + 1] == ':') ||
            (i > 0 && header[i - 1] == ':');
        if (!double_colon) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = header.substr(colon + 1);
    bool unordered = range.find("unordered_") != std::string::npos;
    for (const std::string& symbol : registry.unordered_symbols) {
      if (unordered) break;
      for (size_t s = range.find(symbol); s != std::string::npos;
           s = range.find(symbol, s + 1)) {
        if (IsWordAt(range, s, symbol)) {
          unordered = true;
          break;
        }
      }
    }
    if (!unordered) continue;
    // Body extent: a braced block or a single statement.
    size_t body_begin = SkipSpaces(code, after);
    size_t body_end;
    if (body_begin < code.size() && code[body_begin] == '{') {
      body_end = SkipBalanced(code, body_begin, '{', '}');
      if (body_end == std::string::npos) continue;
    } else {
      body_end = code.find(';', body_begin);
      if (body_end == std::string::npos) continue;
    }
    const std::string body = code.substr(body_begin, body_end - body_begin);
    for (const char* sink : kSinks) {
      if (body.find(sink) != std::string::npos) {
        findings->push_back(
            {path, lines.LineAt(pos), kRuleUnorderedSerialization,
             "iteration order of an unordered container reaches an "
             "order-sensitive sink ('" + std::string(sink) +
                 "'); copy to a sorted container first or justify with "
                 "COACHLM_LINT_ALLOW"});
        break;
      }
    }
  }
}

void CheckUnsafeFunctions(const std::string& path, const std::string& code,
                          const LineIndex& lines,
                          std::vector<Finding>* findings) {
  struct Unsafe {
    const char* name;
    const char* replacement;
  };
  static const Unsafe kUnsafe[] = {
      {"strcpy", "std::string assignment"},
      {"sprintf", "std::snprintf or std::string formatting"},
      {"atoi", "ParseInt with a typed Status (flags.cc idiom)"},
      {"gets", "std::getline"},
  };
  for (const Unsafe& fn : kUnsafe) {
    const std::string word = fn.name;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      const size_t next = SkipSpaces(code, pos + word.size());
      if (next >= code.size() || code[next] != '(') continue;
      findings->push_back({path, lines.LineAt(pos), kRuleUnsafeFn,
                           word + "() is unbounded/untyped; use " +
                               fn.replacement});
    }
  }
}

void CheckDiscardedStatus(const std::string& path, const std::string& code,
                          const std::vector<std::string>& raw_lines,
                          const LineIndex& lines,
                          const SymbolRegistry& registry,
                          std::vector<Finding>* findings) {
  int paren = 0;
  size_t stmt_start = std::string::npos;
  auto process = [&](size_t begin, size_t end) {
    const std::string stmt = strings::Trim(code.substr(begin, end - begin));
    if (stmt.empty()) return;
    size_t ident_end = 0;
    const std::string first = ReadIdent(stmt, 0, &ident_end);
    if (!first.empty() && StatementKeywords().count(first) > 0) return;
    std::string rest = stmt;
    bool voided = false;
    if (stmt[0] == '(') {
      // A leading (void) cast marks an intentional drop — but only with an
      // adjacent comment saying why.
      const size_t cast_end = SkipBalanced(stmt, 0, '(', ')');
      if (cast_end == std::string::npos) return;
      if (strings::Trim(stmt.substr(1, cast_end - 2)) != "void") return;
      voided = true;
      rest = strings::Trim(stmt.substr(cast_end));
    }
    const std::string called = CalledName(rest);
    if (called.empty() || registry.status_functions.count(called) == 0) {
      return;
    }
    const size_t line = lines.LineAt(begin);
    if (!voided) {
      findings->push_back(
          {path, line, kRuleDiscardedStatus,
           "return value of '" + called +
               "' (Status/Result) is silently discarded; handle it, "
               "COACHLM_RETURN_NOT_OK it, or cast to (void) with a comment "
               "explaining why the drop is safe"});
    } else if (!HasExplainingComment(raw_lines, line)) {
      findings->push_back(
          {path, line, kRuleDiscardedStatus,
           "(void)-discarded Status/Result of '" + called +
               "' needs an adjacent comment explaining why the drop is "
               "safe"});
    }
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (IsSpaceChar(c)) continue;
    if (stmt_start == std::string::npos && paren == 0 && c != ';' &&
        c != '{' && c != '}') {
      stmt_start = i;
    }
    if (c == '(' || c == '[') ++paren;
    if ((c == ')' || c == ']') && paren > 0) --paren;
    if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
      if (c == ';' && stmt_start != std::string::npos) {
        process(stmt_start, i);
      }
      stmt_start = std::string::npos;
    }
  }
}

void CheckIncludeHygiene(const std::string& path,
                         const std::vector<std::string>& raw_lines,
                         bool treat_as_header,
                         std::vector<Finding>* findings) {
  // C headers with C++ replacements; <cstdio> et al. keep symbols in std::.
  static const std::map<std::string, std::string> kCHeaders = {
      {"assert.h", "cassert"}, {"ctype.h", "cctype"},
      {"errno.h", "cerrno"},   {"float.h", "cfloat"},
      {"limits.h", "climits"}, {"math.h", "cmath"},
      {"signal.h", "csignal"}, {"stdarg.h", "cstdarg"},
      {"stddef.h", "cstddef"}, {"stdint.h", "cstdint"},
      {"stdio.h", "cstdio"},   {"stdlib.h", "cstdlib"},
      {"string.h", "cstring"}, {"time.h", "ctime"},
  };
  std::map<std::string, size_t> seen_includes;
  std::string guard;
  size_t guard_line = 0;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string line = strings::Trim(raw_lines[i]);
    if (guard.empty() && strings::StartsWith(line, "#ifndef ")) {
      guard = strings::Trim(line.substr(8));
      guard_line = i + 1;
    }
    if (!strings::StartsWith(line, "#include")) continue;
    const std::string target = strings::Trim(line.substr(8));
    if (target.empty()) continue;
    auto duplicate = seen_includes.find(target);
    if (duplicate != seen_includes.end()) {
      findings->push_back({path, i + 1, kRuleIncludeHygiene,
                           "duplicate #include of " + target +
                               " (first at line " +
                               std::to_string(duplicate->second) + ")"});
    } else {
      seen_includes.emplace(target, i + 1);
    }
    if (target.size() > 2 && target.front() == '<') {
      const std::string name = target.substr(1, target.find('>') - 1);
      auto c_header = kCHeaders.find(name);
      if (c_header != kCHeaders.end()) {
        findings->push_back({path, i + 1, kRuleIncludeHygiene,
                             "C header <" + name + "> pollutes the global "
                             "namespace; include <" + c_header->second +
                                 "> instead"});
      }
    }
  }
  if (treat_as_header) {
    if (guard.empty()) {
      findings->push_back({path, 1, kRuleIncludeHygiene,
                           "header is missing a COACHLM_*_H_ include "
                           "guard"});
    } else if (!strings::StartsWith(guard, "COACHLM_") ||
               !strings::EndsWith(guard, "_H_")) {
      findings->push_back({path, guard_line, kRuleIncludeHygiene,
                           "include guard '" + guard +
                               "' must match COACHLM_<PATH>_H_"});
    }
  }
}

std::vector<Finding> ApplySuppressions(
    std::vector<Finding> findings, const std::vector<std::string>& raw_lines) {
  std::vector<Finding> out;
  for (Finding& finding : findings) {
    bool handled = false;
    for (size_t line = finding.line;
         line + 1 >= finding.line && line >= 1 && !handled; --line) {
      if (line > raw_lines.size()) continue;
      Suppression suppression;
      if (!ParseSuppression(raw_lines[line - 1], &suppression)) continue;
      if (suppression.rules.count(finding.rule) == 0) continue;
      if (suppression.has_justification) {
        handled = true;  // suppressed
      } else {
        out.push_back({finding.file, line, kRuleSuppressionJustification,
                       "COACHLM_LINT_ALLOW(" + finding.rule +
                           ") requires ': <justification>' stating why the "
                           "violation is safe"});
        handled = true;
      }
    }
    if (!handled) out.push_back(std::move(finding));
  }
  return out;
}

bool IsSourceExtension(const std::string& path) {
  return strings::EndsWith(path, ".cc") || strings::EndsWith(path, ".cpp") ||
         strings::EndsWith(path, ".h") || strings::EndsWith(path, ".hpp");
}

// Fixture snippets keep their real extension in front of ".snippet"
// (e.g. bad_guard.h.snippet), so header-ness and the clock exemption
// survive the rename that hides them from the tree walk.
std::string LogicalPath(const std::string& path) {
  if (strings::EndsWith(path, ".snippet")) {
    return path.substr(0, path.size() - 8);
  }
  return path;
}

bool IsHeaderPath(const std::string& path) {
  return strings::EndsWith(path, ".h") || strings::EndsWith(path, ".hpp");
}

bool IsClockExempt(const std::string& path) {
  return strings::EndsWith(path, "common/clock.h") ||
         strings::EndsWith(path, "common/clock.cc");
}

bool SkippedDirectory(const std::string& name) {
  return strings::StartsWith(name, "build") || name == ".git" ||
         name == "lint_fixtures" || name == "third_party";
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

void HarvestDeclarations(const std::string& content, SymbolRegistry* registry,
                         bool include_locals) {
  const std::string code =
      BlankPreprocessor(StripCommentsAndStrings(content));
  // Status F(  /  Result<T> F(  /  Status C::F(  declarations.
  for (const std::string& ret : {std::string("Status"),
                                 std::string("Result")}) {
    for (size_t pos = code.find(ret); pos != std::string::npos;
         pos = code.find(ret, pos + 1)) {
      if (!IsWordAt(code, pos, ret)) continue;
      size_t cursor = SkipSpaces(code, pos + ret.size());
      if (ret == "Result") {
        const size_t after = SkipAngles(code, cursor);
        if (after == std::string::npos) continue;
        cursor = SkipSpaces(code, after);
      }
      // Walk a possibly qualified name: Ident (:: Ident)* '('.
      std::string last;
      while (true) {
        size_t end = 0;
        const std::string ident = ReadIdent(code, cursor, &end);
        if (ident.empty()) break;
        last = ident;
        cursor = SkipSpaces(code, end);
        if (code.compare(cursor, 2, "::") == 0) {
          cursor = SkipSpaces(code, cursor + 2);
          continue;
        }
        break;
      }
      if (last.empty() || last == "operator") continue;
      if (cursor < code.size() && code[cursor] == '(') {
        registry->status_functions.insert(last);
      }
    }
  }
  // unordered_map< / unordered_set< declarations (members, locals, and
  // functions returning references to them).
  for (const std::string& container : {std::string("unordered_map"),
                                       std::string("unordered_set")}) {
    for (size_t pos = code.find(container); pos != std::string::npos;
         pos = code.find(container, pos + 1)) {
      if (!IsWordAt(code, pos, container)) continue;
      size_t cursor = SkipSpaces(code, pos + container.size());
      const size_t after = SkipAngles(code, cursor);
      if (after == std::string::npos) continue;
      cursor = SkipSpaces(code, after);
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = SkipSpaces(code, cursor + 1);
      }
      size_t end = 0;
      const std::string name = ReadIdent(code, cursor, &end);
      if (name.empty() || name == "const") continue;
      // Only cross-file-visible names go into a shared registry: functions
      // returning unordered containers and `name_` members. Plain locals
      // are harvested per file, so `words` being an unordered_set in one
      // translation unit cannot flag a vector of the same name elsewhere.
      const bool is_function =
          SkipSpaces(code, end) < code.size() &&
          code[SkipSpaces(code, end)] == '(';
      const bool is_member = strings::EndsWith(name, "_");
      if (include_locals || is_function || is_member) {
        registry->unordered_symbols.insert(name);
      }
    }
  }
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const LintOptions& options) {
  const std::vector<std::string> raw_lines = SplitRawLines(content);
  const std::string code =
      BlankPreprocessor(StripCommentsAndStrings(content));
  const LineIndex lines(code);
  std::vector<Finding> findings;
  CheckBannedSymbols(path, code, lines, &findings);
  if (!options.clock_exempt) {
    CheckRawClock(path, code, lines, &findings);
  }
  CheckUnorderedSerialization(path, code, lines, options.registry, &findings);
  CheckUnsafeFunctions(path, code, lines, &findings);
  CheckDiscardedStatus(path, code, raw_lines, lines, options.registry,
                       &findings);
  CheckIncludeHygiene(path, raw_lines, options.treat_as_header, &findings);
  findings = ApplySuppressions(std::move(findings), raw_lines);
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

Result<std::vector<Finding>> LintFile(const std::string& path,
                                      const SymbolRegistry& registry) {
  auto content = json::ReadFile(path);
  if (!content.ok()) return content.status();
  LintOptions options;
  options.registry = registry;
  const std::string logical = LogicalPath(path);
  options.treat_as_header = IsHeaderPath(logical);
  options.clock_exempt = IsClockExempt(logical);
  HarvestDeclarations(*content, &options.registry);
  return LintContent(path, *content, options);
}

Result<TreeReport> LintTree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const std::string& root : roots) {
    const fs::file_status status = fs::status(root, ec);
    if (ec || !fs::exists(status)) {
      return Status::NotFound("lint root not found: " + root);
    }
    if (fs::is_regular_file(status)) {
      files.push_back(root);
      continue;
    }
    fs::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      return Status::IoError("cannot walk " + root + ": " + ec.message());
    }
    for (; it != end; it.increment(ec)) {
      if (ec) {
        return Status::IoError("cannot walk " + root + ": " + ec.message());
      }
      const fs::directory_entry& entry = *it;
      if (entry.is_directory() &&
          SkippedDirectory(entry.path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().generic_string();
      if (IsSourceExtension(path)) files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: harvest every file so cross-file calls resolve (a .cc calling
  // a Status API declared in another header).
  SymbolRegistry registry;
  std::map<std::string, std::string> contents;
  for (const std::string& file : files) {
    auto content = json::ReadFile(file);
    if (!content.ok()) return content.status();
    HarvestDeclarations(*content, &registry, /*include_locals=*/false);
    contents.emplace(file, std::move(*content));
  }
  // Pass 2: lint, with each file's own locals layered on the shared
  // registry.
  TreeReport report;
  report.files_scanned = files.size();
  for (const std::string& file : files) {
    LintOptions options;
    options.registry = registry;
    const std::string logical = LogicalPath(file);
    options.treat_as_header = IsHeaderPath(logical);
    options.clock_exempt = IsClockExempt(logical);
    HarvestDeclarations(contents[file], &options.registry);
    const std::vector<Finding> findings =
        LintContent(file, contents[file], options);
    report.findings.insert(report.findings.end(), findings.begin(),
                           findings.end());
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

}  // namespace lint
}  // namespace coachlm
