#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "json/jsonl.h"
#include "lint/lexer.h"
#include "text/string_util.h"

namespace coachlm {
namespace lint {
namespace {

bool IsSourceExtension(const std::string& path) {
  return strings::EndsWith(path, ".cc") || strings::EndsWith(path, ".cpp") ||
         strings::EndsWith(path, ".h") || strings::EndsWith(path, ".hpp");
}

// Fixture snippets keep their real extension in front of ".snippet"
// (e.g. bad_guard.h.snippet), so header-ness and the clock exemption
// survive the rename that hides them from the tree walk.
std::string LogicalPath(const std::string& path) {
  if (strings::EndsWith(path, ".snippet")) {
    return path.substr(0, path.size() - 8);
  }
  return path;
}

bool IsHeaderPath(const std::string& path) {
  return strings::EndsWith(path, ".h") || strings::EndsWith(path, ".hpp");
}

bool IsClockExempt(const std::string& path) {
  return strings::EndsWith(path, "common/clock.h") ||
         strings::EndsWith(path, "common/clock.cc");
}

/// The canonical registry sources define every name once, so their own
/// literals are declarations, not call sites to cross-check.
bool IsRegistrySource(const std::string& path) {
  return strings::EndsWith(path, "common/metrics.cc") ||
         strings::EndsWith(path, "common/fault.cc");
}

bool SkippedDirectory(const std::string& name) {
  return strings::StartsWith(name, "build") || name == ".git" ||
         name == "lint_fixtures" || name == "third_party";
}

LintOptions MakeOptions(const std::string& path,
                        const SymbolRegistry& registry) {
  LintOptions options;
  options.registry = registry;
  options.logical_path = LogicalPath(path);
  options.treat_as_header = IsHeaderPath(options.logical_path);
  options.clock_exempt = IsClockExempt(options.logical_path);
  return options;
}

/// "serve.accept" -> "kServeAccept": the FaultSite enum-constant spelling
/// of a canonical site name, so a site referenced only through the enum
/// (the common case — string names are for CLI specs and metric labels)
/// still counts as used.
std::string FaultSiteEnumIdent(const std::string& name) {
  std::string ident = "k";
  bool upper = true;
  for (const char c : name) {
    if (c == '.' || c == '_' || c == '-') {
      upper = true;
      continue;
    }
    ident += upper ? static_cast<char>(std::toupper(
                         static_cast<unsigned char>(c)))
                   : c;
    upper = false;
  }
  return ident;
}

bool ContainsWord(const std::string& code, const std::string& word) {
  for (size_t pos = code.find(word); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    if (IsWordAt(code, pos, word)) return true;
  }
  return false;
}

/// Reverse registry drift: names registered in the canonical source that no
/// scanned file references. A name counts as used when a literal matches
/// it exactly, or when a dot-terminated literal is a prefix of it — the
/// `"runtime.quarantined." + FaultSiteToString(site)` construction pattern.
void AppendUnusedNameWarnings(
    const std::map<std::string, RegisteredName>& names,
    const std::string& registry_path, const char* kind,
    const char* fix_hint, const std::set<std::string>& used_literals,
    const std::vector<std::string>& used_prefixes,
    std::vector<Finding>* warnings) {
  for (const auto& [name, registered] : names) {
    if (used_literals.count(name) > 0) continue;
    bool prefixed = false;
    for (const std::string& prefix : used_prefixes) {
      if (name.size() > prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0) {
        prefixed = true;
        break;
      }
    }
    if (prefixed) continue;
    warnings->push_back({registry_path, registered.line,
                         kRuleRegistryUnusedName,
                         std::string(kind) + " \"" + name +
                             "\" is registered but never referenced from "
                             "the scanned tree; " + fix_hint});
  }
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

FileReport LintContentReport(const std::string& path,
                             const std::string& content,
                             const LintOptions& options) {
  const std::vector<std::string> raw_lines = SplitRawLines(content);
  const std::string code =
      BlankPreprocessor(StripCommentsAndStrings(content));
  const LineIndex lines(code);
  std::vector<Finding> findings;
  CheckBannedSymbols(path, code, lines, &findings);
  if (!options.clock_exempt) {
    CheckRawClock(path, code, lines, &findings);
  }
  CheckUnorderedSerialization(path, code, lines, options.registry, &findings);
  CheckUnsafeFunctions(path, code, lines, &findings);
  CheckDiscardedStatus(path, code, raw_lines, lines, options.registry,
                       &findings);
  CheckIncludeHygiene(path, raw_lines, options.treat_as_header, &findings);
  CheckGuardedFields(path, options.logical_path, code, lines,
                     options.registry, &findings);
  CheckCancellationPropagation(path, code, lines, options.registry,
                               &findings);
  if (!IsRegistrySource(options.logical_path)) {
    // The registry pass reads literals, which the other passes never see.
    const std::string code_with_strings = StripComments(content);
    const LineIndex string_lines(code_with_strings);
    CheckRegistryNames(path, code_with_strings, string_lines,
                       options.registry, &findings);
  }
  SuppressionOutcome outcome =
      ApplySuppressions(std::move(findings), raw_lines);
  FileReport report;
  report.findings = std::move(outcome.findings);
  report.suppressions_used = outcome.suppressions_used;
  std::sort(report.findings.begin(), report.findings.end());
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end()),
      report.findings.end());
  return report;
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const LintOptions& options) {
  return LintContentReport(path, content, options).findings;
}

Result<std::vector<Finding>> LintFile(const std::string& path,
                                      const SymbolRegistry& registry) {
  auto content = json::ReadFile(path);
  if (!content.ok()) return content.status();
  LintOptions options = MakeOptions(path, registry);
  HarvestDeclarations(*content, &options.registry, /*include_locals=*/true,
                      options.logical_path);
  return LintContent(path, *content, options);
}

Result<TreeReport> LintTree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const std::string& root : roots) {
    const fs::file_status status = fs::status(root, ec);
    if (ec || !fs::exists(status)) {
      return Status::NotFound("lint root not found: " + root);
    }
    if (fs::is_regular_file(status)) {
      files.push_back(root);
      continue;
    }
    fs::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      return Status::IoError("cannot walk " + root + ": " + ec.message());
    }
    for (; it != end; it.increment(ec)) {
      if (ec) {
        return Status::IoError("cannot walk " + root + ": " + ec.message());
      }
      const fs::directory_entry& entry = *it;
      if (entry.is_directory() &&
          SkippedDirectory(entry.path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().generic_string();
      if (IsSourceExtension(path)) files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: harvest every file so cross-file calls resolve (a .cc calling
  // a Status API declared in another header), guarded-field annotations
  // bind to their declaring file, and the canonical name registries load.
  SymbolRegistry registry;
  std::map<std::string, std::string> contents;
  std::string metric_registry_path, fault_registry_path;
  for (const std::string& file : files) {
    auto content = json::ReadFile(file);
    if (!content.ok()) return content.status();
    const std::string logical = LogicalPath(file);
    HarvestDeclarations(*content, &registry, /*include_locals=*/false,
                        logical);
    HarvestNameRegistries(logical, *content, &registry);
    if (strings::EndsWith(logical, "common/metrics.cc")) {
      metric_registry_path = file;
    } else if (strings::EndsWith(logical, "common/fault.cc")) {
      fault_registry_path = file;
    }
    contents.emplace(file, std::move(*content));
  }
  // Pass 2: lint, with each file's own locals layered on the shared
  // registry; collect the literal pool for the reverse-drift warnings.
  TreeReport report;
  report.files_scanned = files.size();
  std::set<std::string> used_literals;
  std::vector<std::string> used_prefixes;
  std::set<std::string> enum_used_fault_sites;
  for (const std::string& file : files) {
    LintOptions options = MakeOptions(file, registry);
    HarvestDeclarations(contents[file], &options.registry,
                        /*include_locals=*/true, options.logical_path);
    const FileReport file_report =
        LintContentReport(file, contents[file], options);
    report.findings.insert(report.findings.end(),
                           file_report.findings.begin(),
                           file_report.findings.end());
    report.suppressions_used += file_report.suppressions_used;
    if (!IsRegistrySource(options.logical_path)) {
      const std::string with_strings = StripComments(contents[file]);
      for (const StringLiteral& literal :
           ExtractStringLiterals(with_strings)) {
        used_literals.insert(literal.value);
        if (!literal.value.empty() && literal.value.back() == '.') {
          used_prefixes.push_back(literal.value);
        }
      }
      // Fault sites are mostly referenced via FaultSite::kFoo enum
      // constants, not strings. Count those as uses — except inside the
      // enum's own declaring header, which names every constant by
      // definition.
      if (!strings::EndsWith(options.logical_path, "common/fault.h")) {
        for (const auto& [name, registered] : registry.fault_sites) {
          if (enum_used_fault_sites.count(name) > 0) continue;
          if (ContainsWord(with_strings, FaultSiteEnumIdent(name))) {
            enum_used_fault_sites.insert(name);
          }
        }
      }
    }
  }
  if (registry.metric_registry_loaded && !metric_registry_path.empty()) {
    AppendUnusedNameWarnings(
        registry.metric_names, metric_registry_path, "metric",
        "remove the MetricCatalog row or wire up the instrument",
        used_literals, used_prefixes, &report.warnings);
  }
  if (registry.fault_registry_loaded && !fault_registry_path.empty()) {
    std::set<std::string> fault_used = used_literals;
    fault_used.insert(enum_used_fault_sites.begin(),
                      enum_used_fault_sites.end());
    AppendUnusedNameWarnings(
        registry.fault_sites, fault_registry_path, "fault-site name",
        "remove the kSiteNames entry or reference the site (string or "
        "FaultSite:: enum use both count)",
        fault_used, used_prefixes, &report.warnings);
  }
  std::sort(report.findings.begin(), report.findings.end());
  std::sort(report.warnings.begin(), report.warnings.end());
  return report;
}

}  // namespace lint
}  // namespace coachlm
