#include "lint/lexer.h"

#include "text/string_util.h"

namespace coachlm {
namespace lint {
namespace {

/// Shared comment/string state machine. With \p keep_strings true, string
/// and raw-string literal bytes pass through unchanged (the registry-drift
/// pass reads them); char literals are always blanked.
std::string StripImpl(const std::string& text, bool keep_strings) {
  std::string out = text;
  enum class Mode { kCode, kLine, kBlock, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(out[i - 1])) &&
                   i + 2 < out.size() && out[i + 2] == '(') {
          mode = Mode::kRaw;
          if (!keep_strings) out[i] = ' ';
        } else if (c == '"') {
          mode = Mode::kString;
          if (!keep_strings) out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !IsIdentChar(out[i - 1]))) {
          // The ident-char guard keeps digit separators (1'000) in kCode.
          mode = Mode::kChar;
          out[i] = ' ';
        }
        break;
      case Mode::kLine:
        if (c == '\n') {
          mode = Mode::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case Mode::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          if (!keep_strings) out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) {
            ++i;
            if (!keep_strings) out[i] = ' ';
          }
        } else if (c == '"') {
          if (!keep_strings) out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n' && !keep_strings) {
          out[i] = ' ';
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) out[++i] = ' ';
        } else if (c == '\'') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kRaw:
        if (c == ')' && next == '"') {
          if (!keep_strings) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n' && !keep_strings) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

std::string StripCommentsAndStrings(const std::string& text) {
  return StripImpl(text, /*keep_strings=*/false);
}

std::string StripComments(const std::string& text) {
  return StripImpl(text, /*keep_strings=*/true);
}

std::string BlankPreprocessor(std::string text) {
  size_t i = 0;
  while (i < text.size()) {
    size_t j = i;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    const bool directive = j < text.size() && text[j] == '#';
    bool continued = true;
    while (continued) {
      continued = false;
      size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = text.size();
      if (directive) {
        if (eol > i && text[eol - 1] == '\\') continued = true;
        for (size_t k = i; k < eol; ++k) text[k] = ' ';
      }
      i = eol + 1;
      if (i > text.size()) i = text.size();
      if (!directive) break;
    }
  }
  return text;
}

std::vector<std::string> SplitRawLines(const std::string& text) {
  return strings::Split(text, '\n', /*keep_empty=*/true);
}

std::vector<StringLiteral> ExtractStringLiterals(const std::string& text) {
  std::vector<StringLiteral> out;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\'' && (i == 0 || !IsIdentChar(text[i - 1]))) {
      // Char literal: skip to its closing quote.
      ++i;
      while (i < text.size() && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      continue;
    }
    if (text[i] == '"' && i > 0 && text[i - 1] == 'R') {
      // R"(...)": verbatim until the closing )".
      StringLiteral literal;
      literal.offset = i;
      size_t j = i + 2;  // past "(
      while (j + 1 < text.size() &&
             !(text[j] == ')' && text[j + 1] == '"')) {
        literal.value.push_back(text[j]);
        ++j;
      }
      i = j + 1;
      out.push_back(std::move(literal));
      continue;
    }
    if (text[i] != '"') continue;
    StringLiteral literal;
    literal.offset = i;
    size_t j = i + 1;
    for (; j < text.size() && text[j] != '"'; ++j) {
      if (text[j] == '\\' && j + 1 < text.size()) {
        ++j;
        switch (text[j]) {
          case 'n':
            literal.value.push_back('\n');
            break;
          case 't':
            literal.value.push_back('\t');
            break;
          default:
            literal.value.push_back(text[j]);
        }
      } else {
        literal.value.push_back(text[j]);
      }
    }
    i = j;
    out.push_back(std::move(literal));
  }
  return out;
}

LineIndex::LineIndex(const std::string& text) {
  starts_.push_back(0);
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts_.push_back(i + 1);
  }
}

size_t LineIndex::LineAt(size_t offset) const {
  size_t lo = 0, hi = starts_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (starts_[mid] <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

bool IsWordAt(const std::string& text, size_t pos, const std::string& word) {
  if (pos + word.size() > text.size()) return false;
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + word.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() && IsSpaceChar(text[pos])) ++pos;
  return pos;
}

std::string ReadIdent(const std::string& text, size_t pos, size_t* end) {
  size_t i = pos;
  if (i >= text.size() || IsIdentChar(text[i]) == false ||
      (text[i] >= '0' && text[i] <= '9')) {
    *end = pos;
    return "";
  }
  while (i < text.size() && IsIdentChar(text[i])) ++i;
  *end = i;
  return text.substr(pos, i - pos);
}

size_t SkipAngles(const std::string& text, size_t pos) {
  if (pos >= text.size() || text[pos] != '<') return std::string::npos;
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (text[i] == ';' || text[i] == '{') return std::string::npos;
  }
  return std::string::npos;
}

size_t SkipBalanced(const std::string& text, size_t pos, char open,
                    char close) {
  if (pos >= text.size() || text[pos] != open) return std::string::npos;
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    if (text[i] == close) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

size_t EnclosingScopeEnd(const std::string& text, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}') {
      if (depth == 0) return i;
      --depth;
    }
  }
  return text.size();
}

std::set<std::string> IdentifierWords(const std::string& text) {
  std::set<std::string> words;
  size_t i = 0;
  while (i < text.size()) {
    if (IsIdentChar(text[i]) && !(text[i] >= '0' && text[i] <= '9')) {
      size_t end = 0;
      words.insert(ReadIdent(text, i, &end));
      i = end;
    } else {
      ++i;
    }
  }
  return words;
}

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kSet = {
      "alignas",  "auto",     "bool",     "break",     "case",     "catch",
      "char",     "class",    "const",    "constexpr", "continue", "default",
      "delete",   "do",       "double",   "else",      "enum",     "explicit",
      "extern",   "float",    "for",      "friend",    "goto",     "if",
      "inline",   "int",      "long",     "namespace", "new",      "operator",
      "private",  "protected", "public",  "return",    "short",    "signed",
      "size_t",   "sizeof",   "static",   "struct",    "switch",   "template",
      "throw",    "try",      "typedef",  "typename",  "union",    "unsigned",
      "using",    "virtual",  "void",     "volatile",  "while",
  };
  return kSet;
}

}  // namespace lint
}  // namespace coachlm
