#include "lint/registry.h"

#include "lint/lexer.h"
#include "text/string_util.h"

namespace coachlm {
namespace lint {
namespace {

/// Last identifier word in an annotation argument: "mu_" for "mu_",
/// "mu" for "state->mu" or "foo.mu".
std::string TerminalIdent(const std::string& text) {
  size_t end = text.size();
  while (end > 0 && !IsIdentChar(text[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

/// Harvests `ident COACHLM_GUARDED_BY(expr)` field annotations.
void HarvestGuardedFields(const std::string& code, const LineIndex& lines,
                          const std::string& logical_path,
                          SymbolRegistry* registry) {
  static const std::string kMacro = "COACHLM_GUARDED_BY";
  for (size_t pos = code.find(kMacro); pos != std::string::npos;
       pos = code.find(kMacro, pos + 1)) {
    if (!IsWordAt(code, pos, kMacro)) continue;
    const size_t open = SkipSpaces(code, pos + kMacro.size());
    if (open >= code.size() || code[open] != '(') continue;
    const size_t after = SkipBalanced(code, open, '(', ')');
    if (after == std::string::npos) continue;
    const std::string mutex_key =
        TerminalIdent(code.substr(open + 1, after - open - 2));
    if (mutex_key.empty()) continue;
    // The annotated field is the identifier immediately before the macro.
    size_t end = pos;
    while (end > 0 && IsSpaceChar(code[end - 1])) --end;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(code[begin - 1])) --begin;
    if (begin == end) continue;
    const std::string field = code.substr(begin, end - begin);
    GuardedField guarded;
    guarded.mutex_key = mutex_key;
    guarded.declared_in = logical_path;
    guarded.line = lines.LineAt(begin);
    registry->guarded_fields.emplace(field, std::move(guarded));
  }
}

}  // namespace

void HarvestDeclarations(const std::string& content, SymbolRegistry* registry,
                         bool include_locals,
                         const std::string& logical_path) {
  const std::string code =
      BlankPreprocessor(StripCommentsAndStrings(content));
  // Status F(  /  Result<T> F(  /  Status C::F(  declarations.
  for (const std::string& ret : {std::string("Status"),
                                 std::string("Result")}) {
    for (size_t pos = code.find(ret); pos != std::string::npos;
         pos = code.find(ret, pos + 1)) {
      if (!IsWordAt(code, pos, ret)) continue;
      size_t cursor = SkipSpaces(code, pos + ret.size());
      if (ret == "Result") {
        const size_t after = SkipAngles(code, cursor);
        if (after == std::string::npos) continue;
        cursor = SkipSpaces(code, after);
      }
      // Walk a possibly qualified name: Ident (:: Ident)* '('.
      std::string last;
      while (true) {
        size_t end = 0;
        const std::string ident = ReadIdent(code, cursor, &end);
        if (ident.empty()) break;
        last = ident;
        cursor = SkipSpaces(code, end);
        if (code.compare(cursor, 2, "::") == 0) {
          cursor = SkipSpaces(code, cursor + 2);
          continue;
        }
        break;
      }
      if (last.empty() || last == "operator") continue;
      if (cursor < code.size() && code[cursor] == '(') {
        registry->status_functions.insert(last);
      }
    }
  }
  // `void F(` declarations: names that collide with a Status-returning
  // function elsewhere are ambiguous (see SymbolRegistry::void_functions).
  {
    static const std::string kVoid = "void";
    for (size_t pos = code.find(kVoid); pos != std::string::npos;
         pos = code.find(kVoid, pos + 1)) {
      if (!IsWordAt(code, pos, kVoid)) continue;
      size_t cursor = SkipSpaces(code, pos + kVoid.size());
      std::string last;
      while (true) {
        size_t end = 0;
        const std::string ident = ReadIdent(code, cursor, &end);
        if (ident.empty()) break;
        last = ident;
        cursor = SkipSpaces(code, end);
        if (code.compare(cursor, 2, "::") == 0) {
          cursor = SkipSpaces(code, cursor + 2);
          continue;
        }
        break;
      }
      if (last.empty() || last == "operator") continue;
      if (cursor < code.size() && code[cursor] == '(') {
        registry->void_functions.insert(last);
      }
    }
  }
  // unordered_map< / unordered_set< declarations (members, locals, and
  // functions returning references to them).
  for (const std::string& container : {std::string("unordered_map"),
                                       std::string("unordered_set")}) {
    for (size_t pos = code.find(container); pos != std::string::npos;
         pos = code.find(container, pos + 1)) {
      if (!IsWordAt(code, pos, container)) continue;
      size_t cursor = SkipSpaces(code, pos + container.size());
      const size_t after = SkipAngles(code, cursor);
      if (after == std::string::npos) continue;
      cursor = SkipSpaces(code, after);
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = SkipSpaces(code, cursor + 1);
      }
      size_t end = 0;
      const std::string name = ReadIdent(code, cursor, &end);
      if (name.empty() || name == "const") continue;
      // Only cross-file-visible names go into a shared registry: functions
      // returning unordered containers and `name_` members. Plain locals
      // are harvested per file, so `words` being an unordered_set in one
      // translation unit cannot flag a vector of the same name elsewhere.
      const bool is_function =
          SkipSpaces(code, end) < code.size() &&
          code[SkipSpaces(code, end)] == '(';
      const bool is_member = strings::EndsWith(name, "_");
      if (include_locals || is_function || is_member) {
        registry->unordered_symbols.insert(name);
      }
    }
  }
  const LineIndex lines(code);
  HarvestGuardedFields(code, lines, logical_path, registry);
}

std::vector<RegisteredName> ExtractMetricCatalogNames(
    const std::string& content) {
  std::vector<RegisteredName> names;
  const std::string code = StripComments(content);
  const LineIndex lines(code);
  // Find the catalog initializer: the brace block after "MetricCatalog".
  size_t anchor = code.find("MetricCatalog");
  if (anchor == std::string::npos) return names;
  const size_t open = code.find('{', anchor);
  if (open == std::string::npos) return names;
  // Catalog rows are themselves brace-initializers whose first element is
  // the metric name literal: {"revise.items_in", MetricType::..., ...}.
  const size_t close = SkipBalanced(code, open, '{', '}');
  const size_t end = close == std::string::npos ? code.size() : close;
  const std::string block = code.substr(open, end - open);
  for (const StringLiteral& literal : ExtractStringLiterals(block)) {
    // A row's name literal directly follows its opening brace.
    size_t before = literal.offset;
    while (before > 0 && IsSpaceChar(block[before - 1])) --before;
    if (before == 0 || block[before - 1] != '{') continue;
    names.push_back({literal.value, lines.LineAt(open + literal.offset)});
  }
  return names;
}

std::vector<RegisteredName> ExtractFaultSiteNames(const std::string& content) {
  std::vector<RegisteredName> names;
  const std::string code = StripComments(content);
  const LineIndex lines(code);
  const size_t anchor = code.find("kSiteNames");
  if (anchor == std::string::npos) return names;
  const size_t open = code.find('{', anchor);
  if (open == std::string::npos) return names;
  const size_t close = SkipBalanced(code, open, '{', '}');
  const size_t end = close == std::string::npos ? code.size() : close;
  const std::string block = code.substr(open, end - open);
  for (const StringLiteral& literal : ExtractStringLiterals(block)) {
    names.push_back({literal.value, lines.LineAt(open + literal.offset)});
  }
  return names;
}

void HarvestNameRegistries(const std::string& logical_path,
                           const std::string& content,
                           SymbolRegistry* registry) {
  if (strings::EndsWith(logical_path, "common/metrics.cc")) {
    for (RegisteredName& name : ExtractMetricCatalogNames(content)) {
      registry->metric_names.emplace(name.name, name);
    }
    registry->metric_registry_loaded = !registry->metric_names.empty();
  } else if (strings::EndsWith(logical_path, "common/fault.cc")) {
    for (RegisteredName& name : ExtractFaultSiteNames(content)) {
      registry->fault_sites.emplace(name.name, name);
    }
    registry->fault_registry_loaded = !registry->fault_sites.empty();
  }
}

}  // namespace lint
}  // namespace coachlm
