#ifndef COACHLM_TOOLS_LINT_REGISTRY_H_
#define COACHLM_TOOLS_LINT_REGISTRY_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace coachlm {
namespace lint {

/// \brief One COACHLM_GUARDED_BY-annotated field, harvested from the
/// declaring file.
///
/// `mutex_key` is the terminal identifier of the annotation argument
/// ("mu_" for COACHLM_GUARDED_BY(mu_), "mu" for
/// COACHLM_GUARDED_BY(state->mu)), which is how lock scopes are matched:
/// a lock_guard/unique_lock whose constructor arguments mention the word
/// covers the field.
struct GuardedField {
  std::string mutex_key;
  /// Logical path of the declaring file. The rule only checks the
  /// declaring file and its header/source partner (foo.h <-> foo.cc):
  /// guarded fields are private members, so any other file touching the
  /// name is a different class's field, not an unlocked access.
  std::string declared_in;
  size_t line = 0;
};

/// \brief One canonical name (metric or fault site) with its declaration
/// line in the registry source, for the unused-name warning.
struct RegisteredName {
  std::string name;
  size_t line = 0;
};

/// \brief Cross-file knowledge the rules need.
///
/// The classic half: which functions return a Status/Result (so a bare
/// call statement discards an error) and which identifiers name unordered
/// containers (so iterating them into a serialized sink is
/// order-nondeterministic). The v2 half: COACHLM_GUARDED_BY annotations
/// and the canonical metric/fault-site name registries extracted from
/// src/common/metrics.cc / src/common/fault.cc at analysis time, so a
/// typo'd name literal is a finding instead of a silent runtime no-op.
///
/// The driver harvests every scanned file into one shared registry before
/// linting, mirroring how the pipeline itself builds its rule store before
/// revising (coach/pipeline.cc).
struct SymbolRegistry {
  std::set<std::string> status_functions;
  /// Names also declared somewhere with a void return. The registry is
  /// name-keyed, not type-aware, so a name in both sets is ambiguous —
  /// e.g. WorkerSupervisor::Start returns Status while StallWatchdog::Start
  /// returns void — and the discarded-status rule skips it rather than
  /// flag every void call site. Genuine drops of the Status overload are
  /// still caught at compile time ([[nodiscard]] Status + -Werror).
  std::set<std::string> void_functions;
  std::set<std::string> unordered_symbols;

  /// field name -> guarded-by annotation. Field names are class-unique in
  /// practice; declared_in scoping (see GuardedField) keeps a collision
  /// from poisoning an unrelated file.
  std::map<std::string, GuardedField> guarded_fields;

  /// Canonical registries. `*_loaded` records whether the canonical
  /// source file was scanned at all — a partial-tree run that never saw
  /// metrics.cc must not flag every metric literal as unknown.
  std::map<std::string, RegisteredName> metric_names;
  std::map<std::string, RegisteredName> fault_sites;
  bool metric_registry_loaded = false;
  bool fault_registry_loaded = false;
};

/// Scans \p content (a header or source file) and adds declarations to
/// \p registry: `Status F(...)` / `Result<T> F(...)` functions (including
/// qualified definitions `Status C::F(...)`), identifiers declared with
/// `std::unordered_map` / `std::unordered_set` types, and
/// COACHLM_GUARDED_BY-annotated fields (recorded as declared in
/// \p logical_path).
///
/// With \p include_locals false, only cross-file-visible unordered symbols
/// are kept — functions returning unordered containers and `name_` members
/// — so a local named `words` in one file cannot poison the lint of an
/// unrelated file that reuses the name for a vector. The tree driver
/// harvests every file with include_locals=false into the shared registry,
/// then re-harvests each file with its own locals just before linting it.
void HarvestDeclarations(const std::string& content, SymbolRegistry* registry,
                         bool include_locals = true,
                         const std::string& logical_path = "");

/// Extracts the metric names from the MetricCatalog() initializer in
/// src/common/metrics.cc: the first string literal of each catalog row.
std::vector<RegisteredName> ExtractMetricCatalogNames(
    const std::string& content);

/// Extracts the canonical site names from the kSiteNames array in
/// src/common/fault.cc.
std::vector<RegisteredName> ExtractFaultSiteNames(const std::string& content);

/// Detects the canonical registry sources by logical path suffix
/// (common/metrics.cc, common/fault.cc) and loads their names into
/// \p registry. Call once per file during the harvest pass.
void HarvestNameRegistries(const std::string& logical_path,
                           const std::string& content,
                           SymbolRegistry* registry);

}  // namespace lint
}  // namespace coachlm

#endif  // COACHLM_TOOLS_LINT_REGISTRY_H_
