#ifndef COACHLM_TOOLS_LINT_RULES_H_
#define COACHLM_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/registry.h"

namespace coachlm {
namespace lint {

/// \name Rule identifiers.
///
/// The repo's machine-checked contracts — byte-identical determinism under
/// any thread count / fault plan / resume, typed-Status error propagation,
/// lock discipline over annotated shared state, canonical metric/fault-site
/// names, and cancellation propagation — are enforced by these rules; the
/// remaining ones keep the tree free of the C footguns and include drift
/// that erode them over time.
/// @{
inline constexpr char kRuleBannedSymbol[] = "determinism-banned-symbol";
inline constexpr char kRuleRawClock[] = "determinism-raw-clock";
inline constexpr char kRuleUnorderedSerialization[] =
    "determinism-unordered-serialization";
inline constexpr char kRuleDiscardedStatus[] = "error-discarded-status";
inline constexpr char kRuleUnsafeFn[] = "banned-unsafe-fn";
inline constexpr char kRuleIncludeHygiene[] = "include-hygiene";
inline constexpr char kRuleSuppressionJustification[] =
    "suppression-missing-justification";
inline constexpr char kRuleGuardedField[] = "concurrency-guarded-field";
inline constexpr char kRuleRegistryUnknownName[] = "registry-unknown-name";
inline constexpr char kRuleRegistryUnusedName[] = "registry-unused-name";
inline constexpr char kRuleCancelUncheckedLoop[] = "cancel-unchecked-loop";
/// @}

/// \brief One lint hit: a rule violated at a specific source location.
struct Finding {
  std::string file;
  size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;

  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

/// \name Rule passes.
///
/// Each pass appends findings for one rule family. \p code is the
/// comment/string-stripped, preprocessor-blanked source; \p raw_lines the
/// original lines (for suppressions, comments, and includes); \p lines
/// maps offsets in \p code back to 1-based line numbers.
/// @{
void CheckBannedSymbols(const std::string& path, const std::string& code,
                        const LineIndex& lines,
                        std::vector<Finding>* findings);

void CheckRawClock(const std::string& path, const std::string& code,
                   const LineIndex& lines, std::vector<Finding>* findings);

void CheckUnorderedSerialization(const std::string& path,
                                 const std::string& code,
                                 const LineIndex& lines,
                                 const SymbolRegistry& registry,
                                 std::vector<Finding>* findings);

void CheckUnsafeFunctions(const std::string& path, const std::string& code,
                          const LineIndex& lines,
                          std::vector<Finding>* findings);

void CheckDiscardedStatus(const std::string& path, const std::string& code,
                          const std::vector<std::string>& raw_lines,
                          const LineIndex& lines,
                          const SymbolRegistry& registry,
                          std::vector<Finding>* findings);

void CheckIncludeHygiene(const std::string& path,
                         const std::vector<std::string>& raw_lines,
                         bool treat_as_header,
                         std::vector<Finding>* findings);

/// Lock discipline over COACHLM_GUARDED_BY fields: every read/write of an
/// annotated field must sit inside a lexical lock scope of its mutex — a
/// lock_guard / unique_lock / scoped_lock constructed on the mutex earlier
/// in the same brace scope — or inside a function annotated
/// COACHLM_REQUIRES(mutex). Only fields declared in \p logical_path or its
/// header/source partner are checked (guarded fields are private members).
void CheckGuardedFields(const std::string& path,
                        const std::string& logical_path,
                        const std::string& code, const LineIndex& lines,
                        const SymbolRegistry& registry,
                        std::vector<Finding>* findings);

/// Registry drift, forward direction: a string literal passed to a
/// metric/fault-site call (CountMetric, ObserveMetric, FindCounter,
/// FaultSiteFromString, ...) that is absent from the canonical registry is
/// a finding — at runtime it would degrade to a silent no-op.
/// \p code_with_strings is comment-stripped but keeps literals.
void CheckRegistryNames(const std::string& path,
                        const std::string& code_with_strings,
                        const LineIndex& lines,
                        const SymbolRegistry& registry,
                        std::vector<Finding>* findings);

/// Cancellation propagation: a function that accepts a CancelToken /
/// Deadline parameter and contains a loop doing runtime work (a
/// Status-returning call or a ParallelFor/RetryWithBackoff-style
/// primitive) must consult or forward the token inside the loop.
void CheckCancellationPropagation(const std::string& path,
                                  const std::string& code,
                                  const LineIndex& lines,
                                  const SymbolRegistry& registry,
                                  std::vector<Finding>* findings);
/// @}

/// \brief Outcome of applying `// COACHLM_LINT_ALLOW(rule): why`
/// suppressions to a file's raw findings.
struct SuppressionOutcome {
  std::vector<Finding> findings;  ///< Survivors (plus bare-ALLOW findings).
  size_t suppressions_used = 0;   ///< Findings waived by a justified ALLOW.
};

/// Drops findings whose line (or the line above) carries a justified
/// ALLOW for their rule; an ALLOW with an empty justification becomes a
/// suppression-missing-justification finding instead.
SuppressionOutcome ApplySuppressions(std::vector<Finding> findings,
                                     const std::vector<std::string>& raw_lines);

}  // namespace lint
}  // namespace coachlm

#endif  // COACHLM_TOOLS_LINT_RULES_H_
