// coachlm_lint: the repo-native invariant checker.
//
// Usage: coachlm_lint <path>...
//
// Walks the given files/directories, harvests Status/Result and unordered-
// container declarations, and enforces the determinism and error-discipline
// rules documented in DESIGN.md ("Static guarantees"). Prints findings as
// `file:line: [rule] message` and exits 1 when any unsuppressed finding
// remains, 2 on usage or I/O errors, 0 on a clean tree — so CI can gate
// merges on it exactly like a compiler warning.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <path>...\n"
               "  Lints .cc/.h/.cpp/.hpp files under the given paths.\n"
               "  Rules: %s %s\n         %s %s\n         %s %s\n"
               "  Suppress one finding with\n"
               "    // COACHLM_LINT_ALLOW(rule): <justification>\n"
               "  on the offending line or the line above.\n",
               argv0, coachlm::lint::kRuleBannedSymbol,
               coachlm::lint::kRuleRawClock,
               coachlm::lint::kRuleUnorderedSerialization,
               coachlm::lint::kRuleDiscardedStatus,
               coachlm::lint::kRuleUnsafeFn,
               coachlm::lint::kRuleIncludeHygiene);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0]);
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "coachlm_lint: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
    roots.push_back(arg);
  }
  if (roots.empty()) return Usage(argv[0]);

  const auto report = coachlm::lint::LintTree(roots);
  if (!report.ok()) {
    std::fprintf(stderr, "coachlm_lint: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  for (const coachlm::lint::Finding& finding : report->findings) {
    std::printf("%s\n", coachlm::lint::FormatFinding(finding).c_str());
  }
  std::fprintf(stderr, "coachlm_lint: %zu finding(s) in %zu file(s)\n",
               report->findings.size(), report->files_scanned);
  return report->findings.empty() ? 0 : 1;
}
