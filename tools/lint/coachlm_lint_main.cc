// coachlm_lint: the repo-native invariant checker.
//
// Usage: coachlm_lint [--max-allows N] <path>...
//
// Walks the given files/directories, harvests Status/Result declarations,
// COACHLM_GUARDED_BY annotations, and the canonical metric/fault-site name
// registries, then enforces the determinism, error-discipline, concurrency,
// registry-drift, and cancellation rules documented in docs/LINT.md.
// Prints findings as `file:line: [rule] message` and exits 1 when any
// unsuppressed finding remains (or the suppression budget is exceeded),
// 2 on usage or I/O errors, 0 on a clean tree — so CI can gate merges on
// it exactly like a compiler warning. Advisory warnings (registry names
// never referenced) are printed to stderr and never affect the exit code.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--max-allows N] <path>...\n"
               "  Lints .cc/.h/.cpp/.hpp files under the given paths.\n"
               "  Rules:\n"
               "    %s\n    %s\n    %s\n    %s\n    %s\n    %s\n"
               "    %s\n    %s\n    %s (warning)\n    %s\n"
               "  Suppress one finding with\n"
               "    // COACHLM_LINT_ALLOW(rule): <justification>\n"
               "  on the offending line or the line above.\n"
               "  --max-allows N  fail when more than N suppressions are in\n"
               "                  effect across the tree (ratchets the\n"
               "                  escape-hatch budget).\n",
               argv0, coachlm::lint::kRuleBannedSymbol,
               coachlm::lint::kRuleRawClock,
               coachlm::lint::kRuleUnorderedSerialization,
               coachlm::lint::kRuleDiscardedStatus,
               coachlm::lint::kRuleUnsafeFn,
               coachlm::lint::kRuleIncludeHygiene,
               coachlm::lint::kRuleGuardedField,
               coachlm::lint::kRuleRegistryUnknownName,
               coachlm::lint::kRuleRegistryUnusedName,
               coachlm::lint::kRuleCancelUncheckedLoop);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  long max_allows = -1;  // -1 = unlimited
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0]);
    if (arg == "--max-allows") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "coachlm_lint: --max-allows needs a value\n");
        return Usage(argv[0]);
      }
      char* parse_end = nullptr;
      max_allows = std::strtol(argv[++i], &parse_end, 10);
      if (parse_end == nullptr || *parse_end != '\0' || max_allows < 0) {
        std::fprintf(stderr,
                     "coachlm_lint: --max-allows needs a non-negative "
                     "integer, got '%s'\n",
                     argv[i]);
        return Usage(argv[0]);
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "coachlm_lint: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
    roots.push_back(arg);
  }
  if (roots.empty()) return Usage(argv[0]);

  const auto report = coachlm::lint::LintTree(roots);
  if (!report.ok()) {
    std::fprintf(stderr, "coachlm_lint: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  for (const coachlm::lint::Finding& finding : report->findings) {
    std::printf("%s\n", coachlm::lint::FormatFinding(finding).c_str());
  }
  for (const coachlm::lint::Finding& warning : report->warnings) {
    std::fprintf(stderr, "warning: %s\n",
                 coachlm::lint::FormatFinding(warning).c_str());
  }
  std::fprintf(stderr,
               "coachlm_lint: %zu finding(s), %zu warning(s), %zu "
               "suppression(s) in %zu file(s)\n",
               report->findings.size(), report->warnings.size(),
               report->suppressions_used, report->files_scanned);
  bool failed = !report->findings.empty();
  if (max_allows >= 0 &&
      report->suppressions_used > static_cast<size_t>(max_allows)) {
    std::fprintf(stderr,
                 "coachlm_lint: suppression budget exceeded: %zu "
                 "COACHLM_LINT_ALLOW in effect, --max-allows %ld\n",
                 report->suppressions_used, max_allows);
    failed = true;
  }
  return failed ? 1 : 0;
}
