#ifndef COACHLM_TOOLS_LINT_LEXER_H_
#define COACHLM_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace coachlm {
namespace lint {

/// \name Character classes shared by every pass.
/// @{
bool IsIdentChar(char c);
bool IsSpaceChar(char c);
/// @}

/// Replaces comments and string/char literals with spaces (newlines kept),
/// so the rule scanners never fire on prose or literal text. Handles //,
/// /* */, "..." with escapes, '...' and the simple R"(...)" raw form.
std::string StripCommentsAndStrings(const std::string& text);

/// Like StripCommentsAndStrings but *keeps* string literals intact: the
/// registry-drift pass needs the literal metric/fault-site names that the
/// determinism passes must never see.
std::string StripComments(const std::string& text);

/// Additionally blanks preprocessor directives (and their continuation
/// lines) so the statement scanner never glues code across an #include or
/// #define. Include hygiene reads the raw lines instead.
std::string BlankPreprocessor(std::string text);

/// Splits on '\n', keeping empty lines (1-based indexing via index + 1).
std::vector<std::string> SplitRawLines(const std::string& text);

/// \brief One string literal found in comment-stripped source.
struct StringLiteral {
  std::string value;  ///< Unescaped content (simple escapes resolved).
  size_t offset = 0;  ///< Byte offset of the opening quote.
};

/// Extracts every "..." literal from \p text (which should already be
/// comment-stripped via StripComments, so prose never leaks in). Raw
/// literals R"(...)" are included; char literals are not.
std::vector<StringLiteral> ExtractStringLiterals(const std::string& text);

/// \brief Maps byte offsets to 1-based line numbers.
class LineIndex {
 public:
  explicit LineIndex(const std::string& text);

  /// 1-based line number containing byte \p offset.
  size_t LineAt(size_t offset) const;

 private:
  std::vector<size_t> starts_;
};

/// True when text[pos..pos+word) equals \p word with identifier boundaries
/// on both sides.
bool IsWordAt(const std::string& text, size_t pos, const std::string& word);

size_t SkipSpaces(const std::string& text, size_t pos);

/// Reads an identifier at \p pos; returns empty when none starts there.
std::string ReadIdent(const std::string& text, size_t pos, size_t* end);

/// Skips a balanced <...> starting at \p pos (which must be '<'). Returns
/// the index just past the matching '>', or npos on imbalance.
size_t SkipAngles(const std::string& text, size_t pos);

/// Skips a balanced bracket pair ('(' / '{' / '[') starting at \p pos.
/// Returns the index just past the matching closer, or npos.
size_t SkipBalanced(const std::string& text, size_t pos, char open,
                    char close);

/// End (exclusive) of the innermost brace scope containing \p pos: the
/// index of the first '}' whose matching '{' opened at or before \p pos.
/// Returns text.size() when \p pos is at namespace/file scope — the
/// conservative choice for lock scopes, which then extend to EOF.
size_t EnclosingScopeEnd(const std::string& text, size_t pos);

/// Every identifier word occurring in \p text.
std::set<std::string> IdentifierWords(const std::string& text);

/// Keywords that can open a statement (so a statement starting with one is
/// never a bare discarded call).
const std::set<std::string>& StatementKeywords();

}  // namespace lint
}  // namespace coachlm

#endif  // COACHLM_TOOLS_LINT_LEXER_H_
