#ifndef COACHLM_TOOLS_LINT_LINT_H_
#define COACHLM_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lint/registry.h"
#include "lint/rules.h"

namespace coachlm {
namespace lint {

/// Renders a finding as `file:line: [rule] message` — the stable format
/// asserted by lint_test and parsed by editors.
std::string FormatFinding(const Finding& finding);

/// \brief Per-file lint configuration.
struct LintOptions {
  SymbolRegistry registry;
  /// Enables header-only checks (include guards). The driver sets it from
  /// the file extension.
  bool treat_as_header = false;
  /// src/common/clock.{h,cc} are the one sanctioned home of raw
  /// `*_clock::now()`; the driver exempts them from determinism-raw-clock.
  bool clock_exempt = false;
  /// Path with any fixture `.snippet` suffix stripped — what rule scoping
  /// (guarded-field partner files, registry-source exemptions) matches on.
  std::string logical_path;
};

/// \brief Findings for one file plus how many ALLOW suppressions fired,
/// which the --max-allows budget counts across the tree.
struct FileReport {
  std::vector<Finding> findings;  ///< Sorted by (file, line, rule).
  size_t suppressions_used = 0;
};

/// Lints \p content, returning findings sorted by (file, line, rule).
/// Suppressions are already applied: a finding whose line (or the line
/// above) carries `// COACHLM_LINT_ALLOW(rule): justification` is dropped;
/// an ALLOW with an empty justification becomes a
/// suppression-missing-justification finding instead.
FileReport LintContentReport(const std::string& path,
                             const std::string& content,
                             const LintOptions& options);

/// Findings-only convenience wrapper around LintContentReport.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const LintOptions& options);

/// Reads and lints one file. Header-ness, the clock exemption, and the
/// logical path are derived from \p path; the file's own declarations are
/// harvested on top of \p registry before linting.
Result<std::vector<Finding>> LintFile(const std::string& path,
                                      const SymbolRegistry& registry);

/// \brief Outcome of linting a set of roots.
struct TreeReport {
  std::vector<Finding> findings;  ///< Sorted by (file, line, rule).
  /// Advisory diagnostics that never affect the exit code — today the
  /// registry-unused-name reverse-drift check (a registered metric or
  /// fault-site name no scanned file references).
  std::vector<Finding> warnings;
  size_t files_scanned = 0;
  size_t suppressions_used = 0;  ///< ALLOWs applied, for --max-allows.
};

/// Walks \p roots (files or directories, recursively; only
/// .cc/.h/.cpp/.hpp are linted; build*/.git/lint_fixtures directories are
/// skipped), harvests declarations and the canonical metric/fault-site
/// registries from every file, then lints each one. File order — and
/// therefore output order — is sorted, so the tool itself is
/// deterministic.
Result<TreeReport> LintTree(const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace coachlm

#endif  // COACHLM_TOOLS_LINT_LINT_H_
