#ifndef COACHLM_TOOLS_LINT_LINT_H_
#define COACHLM_TOOLS_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace coachlm {
namespace lint {

/// \name Rule identifiers.
///
/// The repo's two machine-checked contracts — byte-identical determinism
/// under any thread count / fault plan / resume, and typed-Status error
/// propagation — are enforced by the determinism-* and error-* rules; the
/// remaining rules keep the tree free of the C footguns and include drift
/// that erode them over time.
/// @{
inline constexpr char kRuleBannedSymbol[] = "determinism-banned-symbol";
inline constexpr char kRuleRawClock[] = "determinism-raw-clock";
inline constexpr char kRuleUnorderedSerialization[] =
    "determinism-unordered-serialization";
inline constexpr char kRuleDiscardedStatus[] = "error-discarded-status";
inline constexpr char kRuleUnsafeFn[] = "banned-unsafe-fn";
inline constexpr char kRuleIncludeHygiene[] = "include-hygiene";
inline constexpr char kRuleSuppressionJustification[] =
    "suppression-missing-justification";
/// @}

/// \brief One lint hit: a rule violated at a specific source location.
struct Finding {
  std::string file;
  size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;

  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

/// Renders a finding as `file:line: [rule] message` — the stable format
/// asserted by lint_test and parsed by editors.
std::string FormatFinding(const Finding& finding);

/// \brief Cross-file knowledge the rules need: which functions return a
/// Status/Result (so a bare call statement discards an error) and which
/// identifiers name unordered containers (so iterating them into a
/// serialized sink is order-nondeterministic).
///
/// The driver harvests every scanned file into one shared registry before
/// linting, mirroring how the pipeline itself builds its rule store before
/// revising (coach/pipeline.cc).
struct SymbolRegistry {
  std::set<std::string> status_functions;
  std::set<std::string> unordered_symbols;
};

/// Scans \p content (a header or source file) and adds declarations to
/// \p registry: `Status F(...)` / `Result<T> F(...)` functions (including
/// qualified definitions `Status C::F(...)`) and identifiers declared with
/// `std::unordered_map` / `std::unordered_set` types.
///
/// With \p include_locals false, only cross-file-visible unordered symbols
/// are kept — functions returning unordered containers and `name_` members
/// — so a local named `words` in one file cannot poison the lint of an
/// unrelated file that reuses the name for a vector. The tree driver
/// harvests every file with include_locals=false into the shared registry,
/// then re-harvests each file with its own locals just before linting it.
void HarvestDeclarations(const std::string& content, SymbolRegistry* registry,
                         bool include_locals = true);

/// \brief Per-file lint configuration.
struct LintOptions {
  SymbolRegistry registry;
  /// Enables header-only checks (include guards). The driver sets it from
  /// the file extension.
  bool treat_as_header = false;
  /// src/common/clock.{h,cc} are the one sanctioned home of raw
  /// `*_clock::now()`; the driver exempts them from determinism-raw-clock.
  bool clock_exempt = false;
};

/// Lints \p content, returning findings sorted by (file, line, rule).
/// Suppressions are already applied: a finding whose line (or the line
/// above) carries `// COACHLM_LINT_ALLOW(rule): justification` is dropped;
/// an ALLOW with an empty justification becomes a
/// suppression-missing-justification finding instead.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const LintOptions& options);

/// Reads and lints one file. Header-ness and the clock exemption are
/// derived from \p path; the file's own declarations are harvested on top
/// of \p registry before linting.
Result<std::vector<Finding>> LintFile(const std::string& path,
                                      const SymbolRegistry& registry);

/// \brief Outcome of linting a set of roots.
struct TreeReport {
  std::vector<Finding> findings;  ///< Sorted by (file, line, rule).
  size_t files_scanned = 0;
};

/// Walks \p roots (files or directories, recursively; only
/// .cc/.h/.cpp/.hpp are linted; build*/.git/lint_fixtures directories are
/// skipped), harvests declarations from every file, then lints each one.
/// File order — and therefore output order — is sorted, so the tool itself
/// is deterministic.
Result<TreeReport> LintTree(const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace coachlm

#endif  // COACHLM_TOOLS_LINT_LINT_H_
