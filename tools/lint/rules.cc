#include "lint/rules.h"

#include <algorithm>
#include <map>

#include "text/string_util.h"

namespace coachlm {
namespace lint {
namespace {

/// If \p stmt (already trimmed) is a pure call-expression statement —
/// `a::b->c.Name(...)` spanning the whole statement — returns `Name`;
/// otherwise returns "".
std::string CalledName(const std::string& stmt) {
  if (stmt.empty() || !strings::EndsWith(stmt, ")")) return "";
  size_t pos = 0;
  std::string last;
  while (true) {
    pos = SkipSpaces(stmt, pos);
    size_t end = 0;
    const std::string ident = ReadIdent(stmt, pos, &end);
    if (ident.empty()) return "";
    last = ident;
    pos = SkipSpaces(stmt, end);
    if (pos >= stmt.size()) return "";
    if (stmt[pos] == '<') {
      // Template arguments before the call, e.g. Get<int>(...).
      const size_t after = SkipAngles(stmt, pos);
      if (after == std::string::npos) return "";
      pos = SkipSpaces(stmt, after);
      if (pos >= stmt.size()) return "";
    }
    if (stmt[pos] == '(') {
      const size_t after = SkipBalanced(stmt, pos, '(', ')');
      if (after == std::string::npos) return "";
      // The call must cover the rest of the statement; anything trailing
      // (operators, member chains) means the value is consumed.
      return SkipSpaces(stmt, after) >= stmt.size() ? last : "";
    }
    if (stmt.compare(pos, 2, "::") == 0 || stmt.compare(pos, 2, "->") == 0) {
      pos += 2;
    } else if (stmt[pos] == '.') {
      pos += 1;
    } else {
      return "";
    }
  }
}

/// True when the raw source line carries a non-empty // comment (the
/// justification requirement for (void)-discarded Status values).
bool HasExplainingComment(const std::vector<std::string>& raw_lines,
                          size_t line /*1-based*/) {
  auto line_has = [&](size_t idx) {
    if (idx == 0 || idx > raw_lines.size()) return false;
    const std::string& text = raw_lines[idx - 1];
    const size_t pos = text.find("//");
    if (pos == std::string::npos) return false;
    return !strings::Trim(text.substr(pos + 2)).empty();
  };
  return line_has(line) || (line > 1 && line_has(line - 1));
}

struct Suppression {
  std::set<std::string> rules;
  bool has_justification = false;
};

/// Parses `COACHLM_LINT_ALLOW(rule[,rule...]): justification` out of a raw
/// source line, if present.
bool ParseSuppression(const std::string& raw_line, Suppression* out) {
  static const std::string kMarker = "COACHLM_LINT_ALLOW(";
  const size_t pos = raw_line.find(kMarker);
  if (pos == std::string::npos) return false;
  const size_t open = pos + kMarker.size() - 1;
  const size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  out->rules.clear();
  for (const std::string& rule :
       strings::Split(raw_line.substr(open + 1, close - open - 1), ',')) {
    const std::string trimmed = strings::Trim(rule);
    if (!trimmed.empty()) out->rules.insert(trimmed);
  }
  out->has_justification = false;
  const size_t after = SkipSpaces(raw_line, close + 1);
  if (after < raw_line.size() && raw_line[after] == ':') {
    out->has_justification =
        !strings::Trim(raw_line.substr(after + 1)).empty();
  }
  return !out->rules.empty();
}

/// Path without its final extension: "src/common/checkpoint.cc" ->
/// "src/common/checkpoint", so a header and its source pair to one stem.
std::string PathStem(const std::string& path) {
  const size_t dot = path.rfind('.');
  const size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

/// True when \p word occurs in \p text with identifier boundaries.
bool ContainsWord(const std::string& text, const std::string& word) {
  for (size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    if (IsWordAt(text, pos, word)) return true;
  }
  return false;
}

/// \brief A byte range of \p code within which \p keys are held.
///
/// Lock scopes are lexical: a lock_guard/unique_lock/scoped_lock
/// declaration covers from its statement to the end of the enclosing brace
/// scope, and a COACHLM_REQUIRES(mu) annotation covers the whole function
/// body. unique_lock::unlock() is invisible to this approximation — the
/// clang -Wthread-safety build is the precise backstop.
struct LockRegion {
  size_t begin = 0;
  size_t end = 0;
  std::set<std::string> keys;
};

/// Finds lock_guard/unique_lock/scoped_lock/shared_lock declarations and
/// COACHLM_REQUIRES annotations in \p code.
std::vector<LockRegion> BuildLockRegions(const std::string& code) {
  std::vector<LockRegion> regions;
  static const char* kLockTypes[] = {"lock_guard", "unique_lock",
                                     "scoped_lock", "shared_lock"};
  for (const char* type : kLockTypes) {
    const std::string word = type;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      size_t cursor = SkipSpaces(code, pos + word.size());
      if (cursor < code.size() && code[cursor] == '<') {
        const size_t after = SkipAngles(code, cursor);
        if (after == std::string::npos) continue;
        cursor = SkipSpaces(code, after);
      }
      size_t end = 0;
      const std::string name = ReadIdent(code, cursor, &end);
      if (name.empty()) continue;  // a type mention, not a declaration
      cursor = SkipSpaces(code, end);
      if (cursor >= code.size() ||
          (code[cursor] != '(' && code[cursor] != '{')) {
        continue;
      }
      const char open = code[cursor];
      const char close = open == '(' ? ')' : '}';
      const size_t args_end = SkipBalanced(code, cursor, open, close);
      if (args_end == std::string::npos) continue;
      LockRegion region;
      region.begin = args_end;
      region.end = EnclosingScopeEnd(code, pos);
      region.keys =
          IdentifierWords(code.substr(cursor + 1, args_end - cursor - 2));
      if (!region.keys.empty()) regions.push_back(std::move(region));
    }
  }
  static const std::string kRequires = "COACHLM_REQUIRES";
  for (size_t pos = code.find(kRequires); pos != std::string::npos;
       pos = code.find(kRequires, pos + 1)) {
    if (!IsWordAt(code, pos, kRequires)) continue;
    const size_t open = SkipSpaces(code, pos + kRequires.size());
    if (open >= code.size() || code[open] != '(') continue;
    const size_t args_end = SkipBalanced(code, open, '(', ')');
    if (args_end == std::string::npos) continue;
    // Walk forward past trailing qualifiers to the function body; a ';'
    // means this is a declaration with no body here.
    size_t cursor = args_end;
    size_t body_open = std::string::npos;
    for (int steps = 0; steps < 16 && cursor < code.size(); ++steps) {
      cursor = SkipSpaces(code, cursor);
      if (cursor >= code.size()) break;
      const char c = code[cursor];
      if (c == '{') {
        body_open = cursor;
        break;
      }
      if (c == ';') break;
      if (IsIdentChar(c)) {
        size_t end = 0;
        ReadIdent(code, cursor, &end);
        cursor = end > cursor ? end : cursor + 1;
      } else if (c == '(') {
        const size_t after = SkipBalanced(code, cursor, '(', ')');
        if (after == std::string::npos) break;
        cursor = after;
      } else {
        ++cursor;
      }
    }
    if (body_open == std::string::npos) continue;
    const size_t body_close = SkipBalanced(code, body_open, '{', '}');
    LockRegion region;
    region.begin = body_open;
    region.end = body_close == std::string::npos ? code.size() : body_close;
    region.keys =
        IdentifierWords(code.substr(open + 1, args_end - open - 2));
    if (!region.keys.empty()) regions.push_back(std::move(region));
  }
  return regions;
}

/// Runtime primitives whose presence makes a loop "work" for the
/// cancel-unchecked-loop rule, beyond any Status/Result-returning call.
const std::set<std::string>& CancelWorkPrimitives() {
  static const std::set<std::string> kSet = {
      "ParallelFor",          "ParallelForStatus",
      "ParallelMap",          "ParallelMapStatus",
      "ParallelReduce",       "RetryWithBackoff",
      "RunCheckpointedLoop",  "RunGovernedCheckpointedLoop",
      "Inject",
  };
  return kSet;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void CheckBannedSymbols(const std::string& path, const std::string& code,
                        const LineIndex& lines,
                        std::vector<Finding>* findings) {
  struct Banned {
    const char* word;
    bool call_only;  // require a following '('
    const char* message;
  };
  static const Banned kBanned[] = {
      {"random_device", false,
       "std::random_device is nondeterministic; derive streams from the run "
       "seed via DeriveRng (common/rng.h)"},
      {"rand", true,
       "rand() is nondeterministic across platforms; use the seeded Rng "
       "streams from common/rng.h"},
      {"srand", true,
       "srand() seeds hidden global state; use per-item DeriveRng streams "
       "instead"},
      {"time", true,
       "time() reads the wall clock; inject a Clock (common/clock.h) so the "
       "call is fake-clock-testable"},
  };
  for (const Banned& banned : kBanned) {
    const std::string word = banned.word;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      if (banned.call_only) {
        const size_t next = SkipSpaces(code, pos + word.size());
        if (next >= code.size() || code[next] != '(') continue;
      }
      findings->push_back({path, lines.LineAt(pos), kRuleBannedSymbol,
                           banned.message});
    }
  }
  // Unseeded std::mt19937: a declaration with no constructor argument
  // falls back to the default seed on every platform differently enough
  // to matter — and hides the stream from the replay machinery.
  for (const std::string& engine : {std::string("mt19937"),
                                    std::string("mt19937_64")}) {
    for (size_t pos = code.find(engine); pos != std::string::npos;
         pos = code.find(engine, pos + 1)) {
      if (!IsWordAt(code, pos, engine)) continue;
      size_t cursor = SkipSpaces(code, pos + engine.size());
      if (cursor < code.size() &&
          (code[cursor] == '>' || code[cursor] == '*' || code[cursor] == '&' ||
           code[cursor] == ',' || code[cursor] == ')' ||
           code[cursor] == ':')) {
        continue;  // template argument, pointer/ref type, or qualifier use
      }
      size_t end = 0;
      const std::string name = ReadIdent(code, cursor, &end);
      if (!name.empty()) cursor = SkipSpaces(code, end);
      bool unseeded = false;
      if (cursor < code.size() && code[cursor] == ';') {
        unseeded = !name.empty();
      } else if (cursor < code.size() &&
                 (code[cursor] == '(' || code[cursor] == '{')) {
        const char open = code[cursor];
        const char close = open == '(' ? ')' : '}';
        const size_t inner = SkipSpaces(code, cursor + 1);
        unseeded = inner < code.size() && code[inner] == close;
      }
      if (unseeded) {
        findings->push_back(
            {path, lines.LineAt(pos), kRuleBannedSymbol,
             "unseeded std::" + engine +
                 " uses the default seed; seed it from a DeriveRng stream"});
      }
    }
  }
}

void CheckRawClock(const std::string& path, const std::string& code,
                   const LineIndex& lines, std::vector<Finding>* findings) {
  static const char* kClocks[] = {"steady_clock", "system_clock",
                                  "high_resolution_clock"};
  for (const char* clock : kClocks) {
    const std::string word = clock;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      size_t cursor = SkipSpaces(code, pos + word.size());
      if (code.compare(cursor, 2, "::") != 0) continue;
      cursor = SkipSpaces(code, cursor + 2);
      if (!IsWordAt(code, cursor, "now")) continue;
      cursor = SkipSpaces(code, cursor + 3);
      if (cursor >= code.size() || code[cursor] != '(') continue;
      findings->push_back(
          {path, lines.LineAt(pos), kRuleRawClock,
           std::string(clock) +
               "::now() bypasses the injectable Clock; call "
               "Clock::System()->NowMicros() (common/clock.h) so tests can "
               "substitute a FakeClock"});
    }
  }
}

void CheckUnorderedSerialization(const std::string& path,
                                 const std::string& code,
                                 const LineIndex& lines,
                                 const SymbolRegistry& registry,
                                 std::vector<Finding>* findings) {
  static const char* kSinks[] = {"<<",           ".append(", "push_back(",
                                 "emplace_back(", "+=",       "WriteFile",
                                 "SaveJsonl",     "Serialize", "ToJson"};
  for (size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (!IsWordAt(code, pos, "for")) continue;
    const size_t open = SkipSpaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const size_t after = SkipBalanced(code, open, '(', ')');
    if (after == std::string::npos) continue;
    const std::string header = code.substr(open + 1, after - open - 2);
    // Locate the range-for ':' at top level (':' but not '::').
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        const bool double_colon =
            (i + 1 < header.size() && header[i + 1] == ':') ||
            (i > 0 && header[i - 1] == ':');
        if (!double_colon) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = header.substr(colon + 1);
    bool unordered = range.find("unordered_") != std::string::npos;
    for (const std::string& symbol : registry.unordered_symbols) {
      if (unordered) break;
      if (ContainsWord(range, symbol)) unordered = true;
    }
    if (!unordered) continue;
    // Body extent: a braced block or a single statement.
    size_t body_begin = SkipSpaces(code, after);
    size_t body_end;
    if (body_begin < code.size() && code[body_begin] == '{') {
      body_end = SkipBalanced(code, body_begin, '{', '}');
      if (body_end == std::string::npos) continue;
    } else {
      body_end = code.find(';', body_begin);
      if (body_end == std::string::npos) continue;
    }
    const std::string body = code.substr(body_begin, body_end - body_begin);
    for (const char* sink : kSinks) {
      if (body.find(sink) != std::string::npos) {
        findings->push_back(
            {path, lines.LineAt(pos), kRuleUnorderedSerialization,
             "iteration order of an unordered container reaches an "
             "order-sensitive sink ('" + std::string(sink) +
                 "'); copy to a sorted container first or justify with "
                 "COACHLM_LINT_ALLOW"});
        break;
      }
    }
  }
}

void CheckUnsafeFunctions(const std::string& path, const std::string& code,
                          const LineIndex& lines,
                          std::vector<Finding>* findings) {
  struct Unsafe {
    const char* name;
    const char* replacement;
  };
  static const Unsafe kUnsafe[] = {
      {"strcpy", "std::string assignment"},
      {"sprintf", "std::snprintf or std::string formatting"},
      {"atoi", "ParseInt with a typed Status (flags.cc idiom)"},
      {"gets", "std::getline"},
  };
  for (const Unsafe& fn : kUnsafe) {
    const std::string word = fn.name;
    for (size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!IsWordAt(code, pos, word)) continue;
      const size_t next = SkipSpaces(code, pos + word.size());
      if (next >= code.size() || code[next] != '(') continue;
      findings->push_back({path, lines.LineAt(pos), kRuleUnsafeFn,
                           word + "() is unbounded/untyped; use " +
                               fn.replacement});
    }
  }
}

void CheckDiscardedStatus(const std::string& path, const std::string& code,
                          const std::vector<std::string>& raw_lines,
                          const LineIndex& lines,
                          const SymbolRegistry& registry,
                          std::vector<Finding>* findings) {
  int paren = 0;
  size_t stmt_start = std::string::npos;
  auto process = [&](size_t begin, size_t end) {
    const std::string stmt = strings::Trim(code.substr(begin, end - begin));
    if (stmt.empty()) return;
    size_t ident_end = 0;
    const std::string first = ReadIdent(stmt, 0, &ident_end);
    if (!first.empty() && StatementKeywords().count(first) > 0) return;
    std::string rest = stmt;
    bool voided = false;
    if (stmt[0] == '(') {
      // A leading (void) cast marks an intentional drop — but only with an
      // adjacent comment saying why.
      const size_t cast_end = SkipBalanced(stmt, 0, '(', ')');
      if (cast_end == std::string::npos) return;
      if (strings::Trim(stmt.substr(1, cast_end - 2)) != "void") return;
      voided = true;
      rest = strings::Trim(stmt.substr(cast_end));
    }
    const std::string called = CalledName(rest);
    if (called.empty() || registry.status_functions.count(called) == 0) {
      return;
    }
    // A name also declared with a void return somewhere is ambiguous under
    // name-keyed matching (e.g. StallWatchdog::Start vs
    // WorkerSupervisor::Start); skip it — [[nodiscard]] Status + -Werror
    // still catches genuine drops of the Status overload at compile time.
    if (registry.void_functions.count(called) > 0) return;
    const size_t line = lines.LineAt(begin);
    if (!voided) {
      findings->push_back(
          {path, line, kRuleDiscardedStatus,
           "return value of '" + called +
               "' (Status/Result) is silently discarded; handle it, "
               "COACHLM_RETURN_NOT_OK it, or cast to (void) with a comment "
               "explaining why the drop is safe"});
    } else if (!HasExplainingComment(raw_lines, line)) {
      findings->push_back(
          {path, line, kRuleDiscardedStatus,
           "(void)-discarded Status/Result of '" + called +
               "' needs an adjacent comment explaining why the drop is "
               "safe"});
    }
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (IsSpaceChar(c)) continue;
    if (stmt_start == std::string::npos && paren == 0 && c != ';' &&
        c != '{' && c != '}') {
      stmt_start = i;
    }
    if (c == '(' || c == '[') ++paren;
    if ((c == ')' || c == ']') && paren > 0) --paren;
    if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
      if (c == ';' && stmt_start != std::string::npos) {
        process(stmt_start, i);
      }
      stmt_start = std::string::npos;
    }
  }
}

void CheckIncludeHygiene(const std::string& path,
                         const std::vector<std::string>& raw_lines,
                         bool treat_as_header,
                         std::vector<Finding>* findings) {
  // C headers with C++ replacements; <cstdio> et al. keep symbols in std::.
  static const std::map<std::string, std::string> kCHeaders = {
      {"assert.h", "cassert"}, {"ctype.h", "cctype"},
      {"errno.h", "cerrno"},   {"float.h", "cfloat"},
      {"limits.h", "climits"}, {"math.h", "cmath"},
      {"signal.h", "csignal"}, {"stdarg.h", "cstdarg"},
      {"stddef.h", "cstddef"}, {"stdint.h", "cstdint"},
      {"stdio.h", "cstdio"},   {"stdlib.h", "cstdlib"},
      {"string.h", "cstring"}, {"time.h", "ctime"},
  };
  std::map<std::string, size_t> seen_includes;
  std::string guard;
  size_t guard_line = 0;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string line = strings::Trim(raw_lines[i]);
    if (guard.empty() && strings::StartsWith(line, "#ifndef ")) {
      guard = strings::Trim(line.substr(8));
      guard_line = i + 1;
    }
    if (!strings::StartsWith(line, "#include")) continue;
    const std::string target = strings::Trim(line.substr(8));
    if (target.empty()) continue;
    auto duplicate = seen_includes.find(target);
    if (duplicate != seen_includes.end()) {
      findings->push_back({path, i + 1, kRuleIncludeHygiene,
                           "duplicate #include of " + target +
                               " (first at line " +
                               std::to_string(duplicate->second) + ")"});
    } else {
      seen_includes.emplace(target, i + 1);
    }
    if (target.size() > 2 && target.front() == '<') {
      const std::string name = target.substr(1, target.find('>') - 1);
      auto c_header = kCHeaders.find(name);
      if (c_header != kCHeaders.end()) {
        findings->push_back({path, i + 1, kRuleIncludeHygiene,
                             "C header <" + name + "> pollutes the global "
                             "namespace; include <" + c_header->second +
                                 "> instead"});
      }
    }
  }
  if (treat_as_header) {
    if (guard.empty()) {
      findings->push_back({path, 1, kRuleIncludeHygiene,
                           "header is missing a COACHLM_*_H_ include "
                           "guard"});
    } else if (!strings::StartsWith(guard, "COACHLM_") ||
               !strings::EndsWith(guard, "_H_")) {
      findings->push_back({path, guard_line, kRuleIncludeHygiene,
                           "include guard '" + guard +
                               "' must match COACHLM_<PATH>_H_"});
    }
  }
}

void CheckGuardedFields(const std::string& path,
                        const std::string& logical_path,
                        const std::string& code, const LineIndex& lines,
                        const SymbolRegistry& registry,
                        std::vector<Finding>* findings) {
  if (registry.guarded_fields.empty()) return;
  const std::string stem = PathStem(logical_path);
  std::vector<LockRegion> regions;
  bool regions_built = false;
  for (const auto& [field, guarded] : registry.guarded_fields) {
    // Guarded fields are private members: only the declaring file and its
    // header/source partner can legally name them, so other files are
    // skipped rather than risking a name-collision false positive.
    if (PathStem(guarded.declared_in) != stem) continue;
    if (!regions_built) {
      regions = BuildLockRegions(code);
      regions_built = true;
    }
    for (size_t pos = code.find(field); pos != std::string::npos;
         pos = code.find(field, pos + 1)) {
      if (!IsWordAt(code, pos, field)) continue;
      const size_t after = SkipSpaces(code, pos + field.size());
      // The declaration site itself: `type field COACHLM_GUARDED_BY(mu);`.
      if (IsWordAt(code, after, "COACHLM_GUARDED_BY")) continue;
      // Constructor member-init list: `: field_(...)` / `, field_{...}` —
      // construction precedes sharing, so no lock is required yet.
      size_t before = pos;
      while (before > 0 && IsSpaceChar(code[before - 1])) --before;
      const char prev = before > 0 ? code[before - 1] : '\0';
      const char next = after < code.size() ? code[after] : '\0';
      if ((prev == ':' || prev == ',') && (next == '(' || next == '{') &&
          !(before > 1 && code[before - 2] == ':')) {
        continue;
      }
      bool covered = false;
      for (const LockRegion& region : regions) {
        if (region.begin <= pos && pos < region.end &&
            region.keys.count(guarded.mutex_key) > 0) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        findings->push_back(
            {path, lines.LineAt(pos), kRuleGuardedField,
             "field '" + field + "' is COACHLM_GUARDED_BY(" +
                 guarded.mutex_key +
                 ") but is accessed outside a lexical lock scope; hold a "
                 "lock_guard/unique_lock on '" + guarded.mutex_key +
                 "' in this scope or annotate the function COACHLM_REQUIRES(" +
                 guarded.mutex_key + ")"});
      }
    }
  }
}

void CheckRegistryNames(const std::string& path,
                        const std::string& code_with_strings,
                        const LineIndex& lines,
                        const SymbolRegistry& registry,
                        std::vector<Finding>* findings) {
  struct CallFamily {
    const char* fn;
    bool metric;  // false = fault site
  };
  static const CallFamily kFamilies[] = {
      {"CountMetric", true},        {"SetGaugeMetric", true},
      {"ObserveMetric", true},      {"FindCounter", true},
      {"FindGauge", true},          {"FindHistogram", true},
      {"FaultSiteFromString", false},
  };
  for (const CallFamily& family : kFamilies) {
    const bool loaded = family.metric ? registry.metric_registry_loaded
                                      : registry.fault_registry_loaded;
    if (!loaded) continue;
    const std::string word = family.fn;
    for (size_t pos = code_with_strings.find(word); pos != std::string::npos;
         pos = code_with_strings.find(word, pos + 1)) {
      if (!IsWordAt(code_with_strings, pos, word)) continue;
      const size_t open = SkipSpaces(code_with_strings, pos + word.size());
      if (open >= code_with_strings.size() ||
          code_with_strings[open] != '(') {
        continue;
      }
      const size_t after = SkipBalanced(code_with_strings, open, '(', ')');
      if (after == std::string::npos) continue;
      const std::string args =
          code_with_strings.substr(open + 1, after - open - 2);
      const std::vector<StringLiteral> literals = ExtractStringLiterals(args);
      if (literals.empty()) continue;  // dynamically-built name
      const std::string& name = literals.front().value;
      const size_t offset = open + 1 + literals.front().offset;
      if (family.metric) {
        if (!name.empty() && name.back() == '.') {
          // A dot-terminated literal is a prefix build:
          // CountMetric("runtime.quarantined." + FaultSiteToString(site)).
          // It is fine as long as some catalog name starts with the prefix;
          // the per-suffix coverage is the runtime debug warning's job.
          bool any_match = false;
          for (const auto& entry : registry.metric_names) {
            if (entry.first.compare(0, name.size(), name) == 0) {
              any_match = true;
              break;
            }
          }
          if (!any_match) {
            findings->push_back(
                {path, lines.LineAt(offset), kRuleRegistryUnknownName,
                 "no metric in the MetricCatalog (src/common/metrics.cc) "
                 "starts with prefix \"" +
                     name + "\"; every lookup it builds will be a no-op"});
          }
        } else if (registry.metric_names.count(name) == 0) {
          findings->push_back(
              {path, lines.LineAt(offset), kRuleRegistryUnknownName,
               "metric name \"" + name +
                   "\" is not registered in the MetricCatalog "
                   "(src/common/metrics.cc); the lookup degrades to a "
                   "silent no-op at runtime"});
        }
      } else if (registry.fault_sites.count(name) == 0) {
        findings->push_back(
            {path, lines.LineAt(offset), kRuleRegistryUnknownName,
             "fault-site name \"" + name +
                 "\" is not in kSiteNames (src/common/fault.cc); "
                 "FaultSiteFromString will reject it at runtime"});
      }
    }
  }
}

void CheckCancellationPropagation(const std::string& path,
                                  const std::string& code,
                                  const LineIndex& lines,
                                  const SymbolRegistry& registry,
                                  std::vector<Finding>* findings) {
  auto loop_does_work = [&](const std::set<std::string>& words) {
    for (const std::string& word : words) {
      if (CancelWorkPrimitives().count(word) > 0) return true;
      if (registry.status_functions.count(word) > 0) return true;
    }
    return false;
  };
  for (const std::string& type : {std::string("CancelToken"),
                                  std::string("Deadline")}) {
    for (size_t pos = code.find(type); pos != std::string::npos;
         pos = code.find(type, pos + 1)) {
      if (!IsWordAt(code, pos, type)) continue;
      // Parameter name: the identifier after the type (and any * / &).
      size_t cursor = pos + type.size();
      while (cursor < code.size() &&
             (IsSpaceChar(code[cursor]) || code[cursor] == '*' ||
              code[cursor] == '&')) {
        ++cursor;
      }
      size_t name_end = 0;
      const std::string param = ReadIdent(code, cursor, &name_end);
      if (param.empty() || StatementKeywords().count(param) > 0) continue;
      // The type must sit inside a parameter list: walk back to an
      // unmatched '(' without crossing a statement boundary.
      size_t open = std::string::npos;
      int depth = 0;
      for (size_t i = pos; i > 0;) {
        --i;
        const char c = code[i];
        if (c == ')') {
          ++depth;
        } else if (c == '(') {
          if (depth == 0) {
            open = i;
            break;
          }
          --depth;
        } else if (depth == 0 &&
                   (c == ';' || c == '{' || c == '}')) {
          break;
        }
      }
      if (open == std::string::npos) continue;
      const size_t params_end = SkipBalanced(code, open, '(', ')');
      if (params_end == std::string::npos) continue;
      // A definition follows its parameter list with a body (possibly past
      // qualifiers, annotations, or a constructor init list); a plain
      // declaration ends in ';'.
      size_t scan = params_end;
      size_t body_open = std::string::npos;
      for (int steps = 0; steps < 64 && scan < code.size(); ++steps) {
        scan = SkipSpaces(code, scan);
        if (scan >= code.size()) break;
        const char c = code[scan];
        if (c == '{') {
          body_open = scan;
          break;
        }
        if (c == ';') break;
        if (IsIdentChar(c)) {
          size_t end = 0;
          ReadIdent(code, scan, &end);
          scan = end > scan ? end : scan + 1;
        } else if (c == '(') {
          const size_t after = SkipBalanced(code, scan, '(', ')');
          if (after == std::string::npos) break;
          scan = after;
        } else if (c == ':' || c == ',' || c == '-' || c == '>' ||
                   c == '&') {
          ++scan;
        } else {
          break;
        }
      }
      if (body_open == std::string::npos) continue;
      const size_t body_close = SkipBalanced(code, body_open, '{', '}');
      if (body_close == std::string::npos) continue;
      // Loops inside the body that do runtime work must see the token.
      for (const std::string& kw : {std::string("for"),
                                    std::string("while")}) {
        for (size_t loop = code.find(kw, body_open);
             loop != std::string::npos && loop < body_close;
             loop = code.find(kw, loop + 1)) {
          if (!IsWordAt(code, loop, kw)) continue;
          const size_t lopen = SkipSpaces(code, loop + kw.size());
          if (lopen >= code.size() || code[lopen] != '(') continue;
          const size_t lafter = SkipBalanced(code, lopen, '(', ')');
          if (lafter == std::string::npos) continue;
          size_t lbody = SkipSpaces(code, lafter);
          size_t lend;
          if (lbody < code.size() && code[lbody] == '{') {
            lend = SkipBalanced(code, lbody, '{', '}');
            if (lend == std::string::npos) continue;
          } else {
            lend = code.find(';', lbody);
            if (lend == std::string::npos) continue;
          }
          const std::set<std::string> words =
              IdentifierWords(code.substr(lopen, lend - lopen));
          if (words.count(param) > 0) continue;  // consulted or forwarded
          if (!loop_does_work(words)) continue;
          findings->push_back(
              {path, lines.LineAt(loop), kRuleCancelUncheckedLoop,
               "loop performs runtime work but never consults the " + type +
                   " parameter '" + param +
                   "'; check it each iteration or forward it into the "
                   "call"});
        }
      }
    }
  }
}

SuppressionOutcome ApplySuppressions(
    std::vector<Finding> findings, const std::vector<std::string>& raw_lines) {
  SuppressionOutcome outcome;
  for (Finding& finding : findings) {
    bool handled = false;
    for (size_t line = finding.line;
         line + 1 >= finding.line && line >= 1 && !handled; --line) {
      if (line > raw_lines.size()) continue;
      Suppression suppression;
      if (!ParseSuppression(raw_lines[line - 1], &suppression)) continue;
      if (suppression.rules.count(finding.rule) == 0) continue;
      if (suppression.has_justification) {
        handled = true;  // suppressed
        ++outcome.suppressions_used;
      } else {
        outcome.findings.push_back(
            {finding.file, line, kRuleSuppressionJustification,
             "COACHLM_LINT_ALLOW(" + finding.rule +
                 ") requires ': <justification>' stating why the "
                 "violation is safe"});
        handled = true;
      }
    }
    if (!handled) outcome.findings.push_back(std::move(finding));
  }
  return outcome;
}

}  // namespace lint
}  // namespace coachlm
