#ifndef COACHLM_DATA_CATEGORY_H_
#define COACHLM_DATA_CATEGORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace coachlm {

/// \brief The three revision-difficulty classes of Section II-E.
///
/// Expert units are staffed by difficulty: language tasks (certain,
/// objective answers), Q&A (open, subjective), and creative composition
/// (substantial creative rewriting).
enum class TaskClass : uint8_t {
  kLanguageTask = 0,
  kQa = 1,
  kCreative = 2,
};

/// \brief The 42 fine-grained instruction categories of Section II-G.
///
/// The CoachLM150 test set covers all 42; the synthetic corpus draws
/// instructions from the same taxonomy so tuned-model evaluation exercises
/// category-level generalization (including the sparse code categories that
/// reveal the AlpaGasus filtering regression).
enum class Category : uint8_t {
  // -- Language tasks (objective answers) --
  kInformationExtraction = 0,
  kGrammarCorrection,
  kSummarization,
  kParaphrasing,
  kTranslation,
  kTextClassification,
  kSentimentAnalysis,
  kKeywordExtraction,
  kSentenceCompletion,
  kSpellingCorrection,
  kTextSimplification,
  kDataFormatting,
  kTableToText,
  kEntityRecognition,
  kOrdering,
  kComparison,
  // -- Question answering --
  kGeneralQa,
  kInDomainQa,
  kScienceQa,
  kHistoryQa,
  kMathProblem,
  kLogicalReasoning,
  kCoding,
  kCodeExplanation,
  kDebuggingHelp,
  kHowToGuide,
  kRecommendation,
  kDialogueCompletion,
  kOpinion,
  kHealthAdvice,
  // -- Creative composition --
  kStoryWriting,
  kPoemWriting,
  kCopywriting,
  kEmailDrafting,
  kBrainstorming,
  kNaming,
  kSloganWriting,
  kJokeWriting,
  kLyricsWriting,
  kRoleplay,
  kEssayWriting,
  kSpeechWriting,
};

/// Number of fine categories (42, matching the paper's taxonomy).
constexpr size_t kNumCategories = 42;

/// Returns every category in declaration order.
const std::vector<Category>& AllCategories();

/// Returns the difficulty class a category belongs to.
TaskClass ClassOf(Category category);

/// Stable snake_case name ("information_extraction").
const std::string& CategoryName(Category category);

/// Parses a snake_case category name.
Result<Category> CategoryFromName(const std::string& name);

/// Stable display name for a task class.
const std::string& TaskClassName(TaskClass task_class);

}  // namespace coachlm

#endif  // COACHLM_DATA_CATEGORY_H_
