#ifndef COACHLM_DATA_INSTRUCTION_PAIR_H_
#define COACHLM_DATA_INSTRUCTION_PAIR_H_

#include <cstdint>
#include <string>

#include "data/category.h"
#include "json/json.h"

namespace coachlm {

/// \brief One (INSTRUCTION, RESPONSE) training sample in Alpaca format.
///
/// Alpaca splits the instruction into an `instruction` (the task) and an
/// optional `input` (the payload the task operates on); the `output` is the
/// RESPONSE of Fig. 1. `id` and `category` are bookkeeping carried through
/// the pipeline (serialized alongside the Alpaca fields).
struct InstructionPair {
  uint64_t id = 0;
  std::string instruction;
  std::string input;
  std::string output;
  Category category = Category::kGeneralQa;

  /// The INSTRUCTION side as judged by the quality criteria: instruction
  /// plus input payload, separated by a newline when the input is present.
  std::string FullInstruction() const;

  /// Total character length of instruction + input + output.
  size_t TotalChars() const;

  /// True when both the instruction and output fields carry content.
  bool IsWellFormed() const;

  /// Serializes to an Alpaca-format JSON object (plus id/category fields).
  json::Value ToJson() const;

  /// Parses an Alpaca-format JSON object. `id`/`category` default when
  /// absent so third-party Alpaca files load unchanged.
  static Result<InstructionPair> FromJson(const json::Value& value);

  bool operator==(const InstructionPair& other) const {
    return id == other.id && instruction == other.instruction &&
           input == other.input && output == other.output &&
           category == other.category;
  }
};

}  // namespace coachlm

#endif  // COACHLM_DATA_INSTRUCTION_PAIR_H_
