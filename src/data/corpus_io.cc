#include "data/corpus_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "data/binary_corpus.h"

namespace coachlm {
namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads up to 64 leading bytes — enough for the magic, the manifest key,
/// or the first JSON token — without loading the file.
Result<std::string> ReadPrefix(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char buffer[64];
  const ssize_t n = ::read(fd, buffer, sizeof(buffer));
  ::close(fd);
  if (n < 0) {
    return Status::IoError("cannot read '" + path + "'");
  }
  return std::string(buffer, static_cast<size_t>(n));
}

char FirstNonWhitespace(const std::string& text) {
  for (const char c : text) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
  }
  return '\0';
}

}  // namespace

Result<CorpusSniff> SniffCorpus(const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(const std::string prefix, ReadPrefix(path));
  CorpusSniff sniff;
  if (HasBinaryCorpusMagic(prefix)) {
    sniff.format = CorpusFormat::kBinary;
    return sniff;
  }
  if (EndsWith(path, ".manifest.json") || LooksLikeShardManifest(prefix)) {
    sniff.sharded = true;
    sniff.format = CorpusFormat::kAuto;  // The manifest pins it.
    return sniff;
  }
  const char first = FirstNonWhitespace(prefix);
  if (first == '[') {
    sniff.format = CorpusFormat::kJson;
  } else {
    // '{' (or an empty file, an empty corpus) parses as JSONL.
    sniff.format = CorpusFormat::kJsonl;
  }
  return sniff;
}

Result<std::unique_ptr<RecordReader>> OpenCorpusReader(
    const std::string& path, const RecordReadOptions& options) {
  CorpusSniff sniff;
  if (options.format == CorpusFormat::kAuto) {
    COACHLM_ASSIGN_OR_RETURN(sniff, SniffCorpus(path));
  } else {
    sniff.format = options.format;
    // An explicit --format applies to the shards; the manifest is still a
    // manifest.
    COACHLM_ASSIGN_OR_RETURN(const std::string prefix, ReadPrefix(path));
    sniff.sharded =
        EndsWith(path, ".manifest.json") || LooksLikeShardManifest(prefix);
  }
  if (sniff.sharded) {
    COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<ShardedRecordReader> reader,
                             ShardedRecordReader::Open(path, options));
    return std::unique_ptr<RecordReader>(std::move(reader));
  }
  RecordReadOptions resolved = options;
  resolved.format = sniff.format;
  switch (sniff.format) {
    case CorpusFormat::kBinary: {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<BinaryCorpusReader> reader,
                               BinaryCorpusReader::Open(path, resolved));
      return std::unique_ptr<RecordReader>(std::move(reader));
    }
    case CorpusFormat::kJsonl: {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<JsonlRecordReader> reader,
                               JsonlRecordReader::Open(path, resolved));
      return std::unique_ptr<RecordReader>(std::move(reader));
    }
    case CorpusFormat::kJson:
    case CorpusFormat::kAuto:
      break;
  }
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<JsonArrayRecordReader> reader,
                           JsonArrayRecordReader::Open(path));
  return std::unique_ptr<RecordReader>(std::move(reader));
}

CorpusFormat ResolveWriterFormat(const std::string& path, CorpusFormat format,
                                 bool sharded) {
  if (format != CorpusFormat::kAuto) return format;
  if (sharded) return CorpusFormat::kBinary;
  if (EndsWith(path, ".jsonl")) return CorpusFormat::kJsonl;
  if (EndsWith(path, ".clmb") || EndsWith(path, ".bin")) {
    return CorpusFormat::kBinary;
  }
  return CorpusFormat::kJson;
}

Result<std::unique_ptr<RecordWriter>> OpenCorpusWriter(
    const std::string& path, const CorpusWriteOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  const bool sharded = options.shards > 1 || EndsWith(path, ".manifest.json");
  const CorpusFormat format =
      ResolveWriterFormat(path, options.format, sharded);
  if (sharded) {
    return std::unique_ptr<RecordWriter>(
        std::make_unique<ShardedRecordWriter>(path, format, options.shards));
  }
  switch (format) {
    case CorpusFormat::kBinary:
      return std::unique_ptr<RecordWriter>(
          std::make_unique<BinaryCorpusWriter>(path));
    case CorpusFormat::kJsonl:
      return std::unique_ptr<RecordWriter>(
          std::make_unique<JsonlRecordWriter>(path));
    case CorpusFormat::kJson:
    case CorpusFormat::kAuto:
      break;
  }
  return std::unique_ptr<RecordWriter>(
      std::make_unique<JsonArrayRecordWriter>(path));
}

Result<InstructionDataset> LoadCorpus(const std::string& path,
                                      const RecordReadOptions& options) {
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<RecordReader> reader,
                           OpenCorpusReader(path, options));
  return ReadAllRecords(reader.get());
}

Status SaveCorpus(const std::string& path, const InstructionDataset& dataset,
                  const CorpusWriteOptions& options) {
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<RecordWriter> writer,
                           OpenCorpusWriter(path, options));
  COACHLM_RETURN_NOT_OK(WriteAllRecords(writer.get(), dataset));
  return writer->Close();
}

}  // namespace coachlm
