#include "data/shard.h"

#include <sys/stat.h>

#include <utility>

#include "common/metrics.h"
#include "data/binary_corpus.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

const char* FormatExtension(CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kBinary:
      return ".clmb";
    case CorpusFormat::kJsonl:
      return ".jsonl";
    case CorpusFormat::kJson:
      return ".json";
    case CorpusFormat::kAuto:
      break;
  }
  return ".json";
}

std::string ZeroPad5(size_t value) {
  std::string digits = std::to_string(value);
  if (digits.size() < 5) digits.insert(0, 5 - digits.size(), '0');
  return digits;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot stat '" + path + "'");
  }
  return static_cast<uint64_t>(st.st_size);
}

/// Opens a single-file reader of a *known* concrete format — shards never
/// sniff; the manifest is the source of truth.
Result<std::unique_ptr<RecordReader>> OpenSingleFileReader(
    const std::string& path, CorpusFormat format,
    const RecordReadOptions& options) {
  switch (format) {
    case CorpusFormat::kBinary: {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<BinaryCorpusReader> reader,
                               BinaryCorpusReader::Open(path, options));
      return std::unique_ptr<RecordReader>(std::move(reader));
    }
    case CorpusFormat::kJsonl: {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<JsonlRecordReader> reader,
                               JsonlRecordReader::Open(path, options));
      return std::unique_ptr<RecordReader>(std::move(reader));
    }
    case CorpusFormat::kJson: {
      COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<JsonArrayRecordReader> reader,
                               JsonArrayRecordReader::Open(path));
      return std::unique_ptr<RecordReader>(std::move(reader));
    }
    case CorpusFormat::kAuto:
      break;
  }
  return Status::InvalidArgument("shard format must be concrete, not auto");
}

std::unique_ptr<RecordWriter> MakeSingleFileWriter(const std::string& path,
                                                   CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kBinary:
      return std::make_unique<BinaryCorpusWriter>(path);
    case CorpusFormat::kJsonl:
      return std::make_unique<JsonlRecordWriter>(path);
    case CorpusFormat::kJson:
    case CorpusFormat::kAuto:
      break;
  }
  return std::make_unique<JsonArrayRecordWriter>(path);
}

}  // namespace

uint64_t ShardManifest::TotalRecords() const {
  uint64_t total = 0;
  for (const ShardEntry& shard : shards) total += shard.records;
  return total;
}

json::Value ShardManifest::ToJson() const {
  json::Object doc;
  doc[kShardManifestKey] =
      json::Value(static_cast<int64_t>(kShardManifestVersion));
  doc["format"] = json::Value(std::string(CorpusFormatName(format)));
  json::Array entries;
  entries.reserve(shards.size());
  for (const ShardEntry& shard : shards) {
    json::Object entry;
    entry["bytes"] = json::Value(static_cast<int64_t>(shard.bytes));
    entry["file"] = json::Value(shard.file);
    entry["records"] = json::Value(static_cast<int64_t>(shard.records));
    entries.push_back(json::Value(std::move(entry)));
  }
  doc["shards"] = json::Value(std::move(entries));
  return json::Value(std::move(doc));
}

Result<ShardManifest> ShardManifest::FromJson(const json::Value& doc) {
  if (!doc.is_object()) {
    return Status::ParseError("shard manifest must be a JSON object");
  }
  COACHLM_ASSIGN_OR_RETURN(const double version,
                           doc.GetNumber(kShardManifestKey));
  if (static_cast<uint32_t>(version) != kShardManifestVersion) {
    return Status::ParseError(
        "unsupported shard manifest version " +
        std::to_string(static_cast<int64_t>(version)) +
        " (reader supports version " + std::to_string(kShardManifestVersion) +
        ")");
  }
  COACHLM_ASSIGN_OR_RETURN(const std::string format_name,
                           doc.GetString("format"));
  ShardManifest manifest;
  COACHLM_ASSIGN_OR_RETURN(manifest.format, ParseCorpusFormat(format_name));
  if (manifest.format == CorpusFormat::kAuto) {
    return Status::ParseError("shard manifest format must be concrete");
  }
  const json::Object& object = doc.AsObject();
  const auto it = object.find("shards");
  if (it == object.end() || !it->second.is_array()) {
    return Status::ParseError("shard manifest is missing the shards array");
  }
  for (const json::Value& value : it->second.AsArray()) {
    ShardEntry entry;
    COACHLM_ASSIGN_OR_RETURN(entry.file, value.GetString("file"));
    COACHLM_ASSIGN_OR_RETURN(const double records, value.GetNumber("records"));
    COACHLM_ASSIGN_OR_RETURN(const double bytes, value.GetNumber("bytes"));
    entry.records = static_cast<uint64_t>(records);
    entry.bytes = static_cast<uint64_t>(bytes);
    if (entry.file.empty()) {
      return Status::ParseError("shard manifest entry has an empty file name");
    }
    manifest.shards.push_back(std::move(entry));
  }
  return manifest;
}

Status ShardManifest::Save(const std::string& path) const {
  return json::WriteFile(path, ToJson().DumpPretty());
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, json::ReadFile(path));
  COACHLM_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  return FromJson(doc);
}

bool LooksLikeShardManifest(std::string_view prefix) {
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < prefix.size() &&
           (prefix[i] == ' ' || prefix[i] == '\t' || prefix[i] == '\n' ||
            prefix[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= prefix.size() || prefix[i] != '{') return false;
  ++i;
  skip_ws();
  if (i >= prefix.size() || prefix[i] != '"') return false;
  ++i;
  const std::string_view key(kShardManifestKey);
  return prefix.substr(i, key.size()) == key;
}

std::string ShardFileName(const std::string& manifest_path,
                          CorpusFormat format, size_t index, size_t count) {
  const std::string suffix = ".manifest.json";
  std::string stem = manifest_path;
  if (stem.size() > suffix.size() &&
      stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) == 0) {
    stem.resize(stem.size() - suffix.size());
  } else {
    const size_t slash = stem.find_last_of('/');
    const size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      stem.resize(dot);
    }
  }
  return stem + ".shard-" + ZeroPad5(index) + "-of-" + ZeroPad5(count) +
         FormatExtension(format);
}

std::string DirnameWithSlash(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return std::string();
  return path.substr(0, slash + 1);
}

std::vector<size_t> SplitShardCounts(size_t total, size_t shards) {
  std::vector<size_t> counts;
  if (shards == 0) return counts;
  counts.reserve(shards);
  const size_t base = total / shards;
  const size_t extra = total % shards;
  for (size_t i = 0; i < shards; ++i) {
    counts.push_back(base + (i < extra ? 1 : 0));
  }
  return counts;
}

Result<std::unique_ptr<RecordReader>> OpenShard(
    const ShardManifest& manifest, const std::string& manifest_path,
    size_t shard_index, const RecordReadOptions& options) {
  if (shard_index >= manifest.shards.size()) {
    return Status::OutOfRange("shard index " + std::to_string(shard_index) +
                              " out of range for manifest with " +
                              std::to_string(manifest.shards.size()) +
                              " shards");
  }
  const std::string path =
      DirnameWithSlash(manifest_path) + manifest.shards[shard_index].file;
  RecordReadOptions shard_options = options;
  shard_options.format = manifest.format;
  CountMetric("io.shards_opened", 1);
  return OpenSingleFileReader(path, manifest.format, shard_options);
}

Result<std::unique_ptr<ShardedRecordReader>> ShardedRecordReader::Open(
    const std::string& manifest_path, const RecordReadOptions& options) {
  std::unique_ptr<ShardedRecordReader> reader(new ShardedRecordReader());
  COACHLM_ASSIGN_OR_RETURN(reader->manifest_,
                           ShardManifest::Load(manifest_path));
  reader->dir_ = DirnameWithSlash(manifest_path);
  reader->options_ = options;
  reader->options_.format = reader->manifest_.format;
  return reader;
}

size_t ShardedRecordReader::SizeHint() const {
  return static_cast<size_t>(manifest_.TotalRecords());
}

Result<bool> ShardedRecordReader::Next(InstructionPair* pair) {
  while (true) {
    if (current_ == nullptr) {
      if (next_shard_ >= manifest_.shards.size()) return false;
      const std::string path = dir_ + manifest_.shards[next_shard_].file;
      CountMetric("io.shards_opened", 1);
      COACHLM_ASSIGN_OR_RETURN(
          current_,
          OpenSingleFileReader(path, manifest_.format, options_));
      ++next_shard_;
    }
    COACHLM_ASSIGN_OR_RETURN(const bool more, current_->Next(pair));
    if (more) return true;
    current_.reset();
  }
}

ShardedRecordWriter::ShardedRecordWriter(std::string manifest_path,
                                         CorpusFormat format,
                                         size_t num_shards)
    : manifest_path_(std::move(manifest_path)),
      format_(format == CorpusFormat::kAuto ? CorpusFormat::kBinary : format),
      num_shards_(num_shards == 0 ? 1 : num_shards) {}

Status ShardedRecordWriter::Write(const InstructionPair& pair) {
  if (closed_) {
    return Status::FailedPrecondition("write to closed record writer");
  }
  pending_.push_back(pair);
  return Status::OK();
}

Status ShardedRecordWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  ShardManifest manifest;
  manifest.format = format_;
  const std::vector<size_t> counts =
      SplitShardCounts(pending_.size(), num_shards_);
  const std::string dir = DirnameWithSlash(manifest_path_);
  size_t next = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const std::string path =
        ShardFileName(manifest_path_, format_, i, counts.size());
    std::unique_ptr<RecordWriter> writer = MakeSingleFileWriter(path, format_);
    for (size_t k = 0; k < counts[i]; ++k) {
      COACHLM_RETURN_NOT_OK(writer->Write(pending_[next++]));
    }
    COACHLM_RETURN_NOT_OK(writer->Close());
    ShardEntry entry;
    // Manifest entries are manifest-relative so the corpus directory can
    // move wholesale.
    entry.file = dir.empty() ? path : path.substr(dir.size());
    entry.records = counts[i];
    COACHLM_ASSIGN_OR_RETURN(entry.bytes, FileSizeBytes(path));
    manifest.shards.push_back(std::move(entry));
  }
  // Manifest last: a crash before this line leaves no manifest, so readers
  // never observe a half-written sharded corpus.
  return manifest.Save(manifest_path_);
}

}  // namespace coachlm
