#include "data/revision_record.h"

#include "text/edit_distance.h"

namespace coachlm {

void RevisionRecord::RecomputeDerived() {
  instruction_changed =
      original.FullInstruction() != revised.FullInstruction();
  response_changed = original.output != revised.output;
  char_edit_distance =
      editdist::CharDistance(original.FullInstruction(),
                             revised.FullInstruction()) +
      editdist::CharDistance(original.output, revised.output);
}

}  // namespace coachlm
