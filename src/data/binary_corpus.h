#ifndef COACHLM_DATA_BINARY_CORPUS_H_
#define COACHLM_DATA_BINARY_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/record_stream.h"

namespace coachlm {

/// \name Binary columnar corpus format (see docs/FORMAT.md)
///
/// Layout (all integers little-endian):
///   file   := header block*
///   header := magic[8]="CLMCORP1"  u32 version=1
///   block  := u32 record_count  u32 payload_bytes  u32 crc32  u32 reserved
///             payload
///   payload:= ids cats col(instruction) col(input) col(output) pool
///             — each section length-prefixed with its u32 byte size:
///     ids  := u32 size  record_count x u64 pair-id
///     cats := u32 size  record_count x u8 category
///     col  := u32 size  record_count x { u32 pool_offset, u32 byte_len }
///     pool := u32 size  deduplicated string bytes
///
/// The string pool is per-block and deduplicated: identical strings (empty
/// inputs, repeated instructions) are stored once and referenced by
/// offset. The CRC covers the whole payload, so a flipped bit anywhere in
/// a block is detected before any record is surfaced. A *final* block
/// whose declared payload extends past EOF is the binary analogue of
/// JSONL's torn final line (a writer killed mid-append): strict reads
/// fail with a typed Status carrying the byte offset, and
/// RecordReadOptions::recover_torn_tail discards the tail and returns the
/// intact prefix — mirroring ParseLinesRecoverable.
/// @{

inline constexpr char kBinaryCorpusMagic[8] = {'C', 'L', 'M', 'C',
                                               'O', 'R', 'P', '1'};
inline constexpr uint32_t kBinaryCorpusVersion = 1;
inline constexpr size_t kBinaryCorpusHeaderBytes = 12;
inline constexpr size_t kBinaryBlockHeaderBytes = 16;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over \p data.
uint32_t Crc32(const void* data, size_t size);

/// True when \p prefix (>= 8 bytes considered) starts with the corpus
/// magic — the sniffing hook of corpus_io.
bool HasBinaryCorpusMagic(std::string_view prefix);

/// @}

/// \brief Detail channel of a binary corpus read.
struct BinaryReadInfo {
  /// Byte offset where a torn final block begins; npos when the file ends
  /// cleanly on a block boundary.
  size_t truncated_offset = static_cast<size_t>(-1);
  size_t blocks = 0;
  size_t records = 0;

  bool truncated() const {
    return truncated_offset != static_cast<size_t>(-1);
  }
};

/// \brief One record decoded without copying: the string fields view into
/// the reader's mapped block memory and are valid only until the scan
/// advances. This is the zero-copy path bench_micro_io measures and
/// streaming consumers (stats, filters) iterate.
struct RecordView {
  uint64_t id = 0;
  uint8_t category = 0;
  std::string_view instruction;
  std::string_view input;
  std::string_view output;
};

/// \brief Streaming writer for the binary columnar format.
///
/// Records accumulate into blocks of \p block_records; each full block is
/// encoded (columnar, pooled, CRC-stamped) and appended, so a killed
/// writer leaves at worst one torn final block — exactly what the torn-tail
/// recovery path discards.
class BinaryCorpusWriter : public RecordWriter {
 public:
  explicit BinaryCorpusWriter(std::string path, size_t block_records = 4096);

  [[nodiscard]] Status Write(const InstructionPair& pair) override;
  [[nodiscard]] Status Close() override;

  /// Strings deduplicated away by the block pools so far.
  uint64_t pool_dedup_hits() const { return pool_dedup_hits_; }

 private:
  [[nodiscard]] Status FlushBlock();

  std::string path_;
  size_t block_records_;
  std::vector<InstructionPair> pending_;
  std::string encoded_;  ///< header + finished blocks, appended in order.
  uint64_t pool_dedup_hits_ = 0;
  uint64_t records_ = 0;
  bool closed_ = false;
};

/// \brief Memory-mapped reader for the binary columnar format.
///
/// The file is mapped read-only (falling back to a buffered read when mmap
/// is unavailable) and every block is CRC-validated once, on first entry;
/// record strings are materialized per Next() call. Scan() is the
/// zero-copy alternative: it walks RecordViews pointing straight into the
/// mapping, never allocating per record.
class BinaryCorpusReader : public RecordReader {
 public:
  [[nodiscard]] static Result<std::unique_ptr<BinaryCorpusReader>> Open(
      const std::string& path, const RecordReadOptions& options = {});

  ~BinaryCorpusReader() override;

  [[nodiscard]] Result<bool> Next(InstructionPair* pair) override;
  size_t SizeHint() const override { return info_.records; }

  /// Zero-copy scan: invokes \p fn for every record in file order. The
  /// views die with the call; \p fn must copy what it keeps.
  template <typename Fn>
  [[nodiscard]] Status Scan(Fn&& fn) {
    RecordView view;
    while (true) {
      COACHLM_ASSIGN_OR_RETURN(const bool more, NextView(&view));
      if (!more) return Status::OK();
      fn(view);
    }
  }

  /// Scan-cursor form of Next(): false at end of stream.
  [[nodiscard]] Result<bool> NextView(RecordView* view);

  const BinaryReadInfo& info() const { return info_; }

 private:
  struct BlockCursor {
    size_t record = 0;       ///< next record within the current block.
    size_t record_count = 0;
    const char* ids = nullptr;
    const char* cats = nullptr;
    const char* cols[3] = {nullptr, nullptr, nullptr};
    const char* pool = nullptr;
    size_t pool_size = 0;
  };

  BinaryCorpusReader() = default;

  /// Decodes + CRC-checks the block at offset_; false at EOF.
  [[nodiscard]] Result<bool> EnterNextBlock();

  std::string buffer_;          ///< fallback storage when mmap failed.
  const char* data_ = nullptr;  ///< mapped (or buffered) file bytes.
  size_t size_ = 0;
  void* mapping_ = nullptr;     ///< non-null when data_ is an mmap.
  size_t offset_ = 0;           ///< next block header offset.
  BlockCursor block_;
  bool in_block_ = false;
  bool recover_torn_tail_ = false;
  BinaryReadInfo info_;
};

/// \brief Pre-scans \p path: validates every block header + CRC and
/// returns totals (and the torn-tail offset under recovery). Used by the
/// shard manifest writer and tests; O(file) but allocation-free.
[[nodiscard]] Result<BinaryReadInfo> InspectBinaryCorpus(
    const std::string& path, const RecordReadOptions& options = {});

}  // namespace coachlm

#endif  // COACHLM_DATA_BINARY_CORPUS_H_
