#ifndef COACHLM_DATA_REVISION_IO_H_
#define COACHLM_DATA_REVISION_IO_H_

#include <string>

#include "common/result.h"
#include "data/revision_record.h"

namespace coachlm {

/// \brief Serializes the expert revision dataset R to JSONL: one record
/// per line as {"original": {...}, "revised": {...}} (the release format
/// of the paper's published training data).
Status SaveRevisions(const std::string& path, const RevisionDataset& records);

/// \brief Loads a revision dataset saved by SaveRevisions(). Derived
/// fields (edit distance, changed flags) are recomputed on load.
Result<RevisionDataset> LoadRevisions(const std::string& path);

}  // namespace coachlm

#endif  // COACHLM_DATA_REVISION_IO_H_
