#include "data/record_stream.h"

#include "common/metrics.h"
#include "json/jsonl.h"

namespace coachlm {

const char* CorpusFormatName(CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kAuto:
      return "auto";
    case CorpusFormat::kJson:
      return "json";
    case CorpusFormat::kJsonl:
      return "jsonl";
    case CorpusFormat::kBinary:
      return "binary";
  }
  return "auto";
}

Result<CorpusFormat> ParseCorpusFormat(const std::string& name) {
  if (name == "auto") return CorpusFormat::kAuto;
  if (name == "json") return CorpusFormat::kJson;
  if (name == "jsonl") return CorpusFormat::kJsonl;
  if (name == "binary") return CorpusFormat::kBinary;
  return Status::InvalidArgument(
      "unknown corpus format '" + name +
      "' (expected auto, json, jsonl, or binary)");
}

Result<InstructionDataset> ReadAllRecords(RecordReader* reader) {
  InstructionDataset dataset;
  if (reader->SizeHint() > 0) dataset.pairs().reserve(reader->SizeHint());
  InstructionPair pair;
  while (true) {
    COACHLM_ASSIGN_OR_RETURN(const bool more, reader->Next(&pair));
    if (!more) break;
    dataset.Add(std::move(pair));
    pair = InstructionPair();
  }
  return dataset;
}

Status WriteAllRecords(RecordWriter* writer,
                       const InstructionDataset& dataset) {
  for (const InstructionPair& pair : dataset) {
    COACHLM_RETURN_NOT_OK(writer->Write(pair));
  }
  return Status::OK();
}

Result<bool> DatasetRecordReader::Next(InstructionPair* pair) {
  if (next_ >= dataset_->size()) return false;
  *pair = (*dataset_)[next_++];
  return true;
}

Status DatasetRecordWriter::Write(const InstructionPair& pair) {
  dataset_->Add(pair);
  return Status::OK();
}

Result<std::unique_ptr<JsonArrayRecordReader>> JsonArrayRecordReader::Open(
    const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, json::ReadFile(path));
  CountMetric("io.bytes_read", text.size());
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset,
                           InstructionDataset::FromJson(text));
  CountMetric("io.records_read", dataset.size());
  return std::unique_ptr<JsonArrayRecordReader>(
      new JsonArrayRecordReader(std::move(dataset)));
}

Result<bool> JsonArrayRecordReader::Next(InstructionPair* pair) {
  if (next_ >= dataset_.size()) return false;
  *pair = std::move(dataset_[next_++]);
  return true;
}

Result<std::unique_ptr<JsonlRecordReader>> JsonlRecordReader::Open(
    const std::string& path, const RecordReadOptions& options) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, json::ReadFile(path));
  CountMetric("io.bytes_read", text.size());
  Result<std::vector<json::Value>> lines =
      options.recover_torn_tail
          ? json::ParseLinesRecoverable(text, /*info=*/nullptr)
          : json::ParseLines(text);
  COACHLM_ASSIGN_OR_RETURN(std::vector<json::Value> values, std::move(lines));
  InstructionDataset dataset;
  dataset.pairs().reserve(values.size());
  for (const json::Value& value : values) {
    COACHLM_ASSIGN_OR_RETURN(InstructionPair pair,
                             InstructionPair::FromJson(value));
    dataset.Add(std::move(pair));
  }
  CountMetric("io.records_read", dataset.size());
  return std::unique_ptr<JsonlRecordReader>(
      new JsonlRecordReader(std::move(dataset)));
}

Result<bool> JsonlRecordReader::Next(InstructionPair* pair) {
  if (next_ >= dataset_.size()) return false;
  *pair = std::move(dataset_[next_++]);
  return true;
}

Status JsonArrayRecordWriter::Write(const InstructionPair& pair) {
  if (closed_) {
    return Status::FailedPrecondition("write to closed record writer");
  }
  buffered_.Add(pair);
  return Status::OK();
}

Status JsonArrayRecordWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  const std::string text = buffered_.ToJson();
  COACHLM_RETURN_NOT_OK(json::WriteFile(path_, text));
  CountMetric("io.records_written", buffered_.size());
  CountMetric("io.bytes_written", text.size());
  return Status::OK();
}

Status JsonlRecordWriter::Write(const InstructionPair& pair) {
  if (closed_) {
    return Status::FailedPrecondition("write to closed record writer");
  }
  buffer_ += pair.ToJson().Dump();
  buffer_ += '\n';
  ++records_;
  return Status::OK();
}

Status JsonlRecordWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  COACHLM_RETURN_NOT_OK(json::WriteFile(path_, buffer_));
  CountMetric("io.records_written", records_);
  CountMetric("io.bytes_written", buffer_.size());
  return Status::OK();
}

}  // namespace coachlm
