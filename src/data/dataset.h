#ifndef COACHLM_DATA_DATASET_H_
#define COACHLM_DATA_DATASET_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/instruction_pair.h"

namespace coachlm {

/// \brief Summary statistics of a dataset (the quantities of Table VII).
struct DatasetStats {
  size_t size = 0;
  double avg_instruction_words = 0.0;
  double avg_response_words = 0.0;
  double avg_instruction_chars = 0.0;
  double avg_response_chars = 0.0;
  /// Count per category (categories absent from the dataset are omitted).
  std::map<Category, size_t> category_counts;
};

/// \brief Merges per-shard statistics into whole-corpus statistics.
///
/// Averages recombine size-weighted and category counts sum, so the merge
/// is commutative (any shard order yields the same result up to
/// floating-point association; the pipeline always merges in manifest
/// order, which pins the bytes of deterministic-mode run reports).
DatasetStats MergeDatasetStats(const std::vector<DatasetStats>& parts);

/// \brief An ordered collection of instruction pairs with Alpaca-JSON I/O.
///
/// This is the dataset V / D of Section II-F: the unit that flows through
/// expert revision, CoachLM inference, and instruction tuning.
class InstructionDataset {
 public:
  InstructionDataset() = default;
  explicit InstructionDataset(std::vector<InstructionPair> pairs)
      : pairs_(std::move(pairs)) {}

  /// Appends one pair.
  void Add(InstructionPair pair) { pairs_.push_back(std::move(pair)); }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  const InstructionPair& operator[](size_t i) const { return pairs_[i]; }
  InstructionPair& operator[](size_t i) { return pairs_[i]; }

  const std::vector<InstructionPair>& pairs() const { return pairs_; }
  std::vector<InstructionPair>& pairs() { return pairs_; }

  auto begin() const { return pairs_.begin(); }
  auto end() const { return pairs_.end(); }

  /// Finds a pair by id; NotFound when absent.
  Result<InstructionPair> FindById(uint64_t id) const;

  /// Computes length/coverage statistics.
  DatasetStats ComputeStats() const;

  /// Returns a uniformly random subset of \p n pairs (whole dataset when
  /// n >= size), preserving original order.
  InstructionDataset SampleWithoutReplacement(size_t n, Rng* rng) const;

  /// Returns the subset belonging to \p category.
  InstructionDataset FilterByCategory(Category category) const;

  /// Serializes to an Alpaca-format JSON array (pretty-printed).
  std::string ToJson() const;

  /// Parses an Alpaca-format JSON array.
  static Result<InstructionDataset> FromJson(const std::string& text);

  /// Writes the dataset to \p path as JSON.
  Status SaveJson(const std::string& path) const;

  /// Loads a dataset from an Alpaca-format JSON file.
  static Result<InstructionDataset> LoadJson(const std::string& path);

 private:
  std::vector<InstructionPair> pairs_;
};

}  // namespace coachlm

#endif  // COACHLM_DATA_DATASET_H_
