#ifndef COACHLM_DATA_REVISION_RECORD_H_
#define COACHLM_DATA_REVISION_RECORD_H_

#include <cstdint>
#include <vector>

#include "data/instruction_pair.h"

namespace coachlm {

/// \brief One element (x, x_r) of the expert revision dataset R
/// (Section II-F1).
struct RevisionRecord {
  /// The original pair x.
  InstructionPair original;
  /// The expert-revised pair x_r.
  InstructionPair revised;
  /// Character-level edit distance between x and x_r over the concatenated
  /// instruction+input+output text; used by the α-selection.
  size_t char_edit_distance = 0;
  /// True when the INSTRUCTION side differs.
  bool instruction_changed = false;
  /// True when the RESPONSE side differs.
  bool response_changed = false;

  /// Recomputes the derived fields from the text.
  void RecomputeDerived();
};

/// The expert revision dataset R = {(x, x_r)}.
using RevisionDataset = std::vector<RevisionRecord>;

}  // namespace coachlm

#endif  // COACHLM_DATA_REVISION_RECORD_H_
