#ifndef COACHLM_DATA_SHARD_H_
#define COACHLM_DATA_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/record_stream.h"
#include "json/json.h"

namespace coachlm {

/// \name Sharded corpus layout (see docs/FORMAT.md)
///
/// A sharded corpus is a self-describing manifest — a small JSON object —
/// plus N shard files in any single-file corpus format. The manifest
/// records the format and, per shard, the file name (relative to the
/// manifest), record count, and byte size. Shards partition the corpus
/// contiguously and in order, so reading shard 0..N-1 back-to-back yields
/// exactly the unsharded record sequence; that, plus per-item derived RNG
/// in the stages, is what makes per-shard execution byte-identical to
/// whole-corpus execution.
/// @{

/// First key of every manifest object; sorts first under std::map, so it
/// appears in the opening bytes of the file — which is how sniffing tells
/// a manifest from an ordinary JSON corpus.
inline constexpr char kShardManifestKey[] = "coachlm_manifest";
inline constexpr uint32_t kShardManifestVersion = 1;

/// \brief One shard as recorded in the manifest.
struct ShardEntry {
  std::string file;  ///< Relative to the manifest's directory.
  uint64_t records = 0;
  uint64_t bytes = 0;
};

/// \brief The self-describing index of a sharded corpus.
struct ShardManifest {
  CorpusFormat format = CorpusFormat::kBinary;
  std::vector<ShardEntry> shards;

  uint64_t TotalRecords() const;

  json::Value ToJson() const;
  [[nodiscard]] static Result<ShardManifest> FromJson(const json::Value& doc);

  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] static Result<ShardManifest> Load(const std::string& path);
};

/// True when \p prefix opens a JSON object whose first key is
/// kShardManifestKey (whitespace-tolerant).
bool LooksLikeShardManifest(std::string_view prefix);

/// Canonical shard file name: `<stem>.shard-00002-of-00008<ext>` where the
/// extension matches \p format. \p stem is the manifest path minus a
/// trailing ".manifest.json" (or minus its extension otherwise).
std::string ShardFileName(const std::string& manifest_path,
                          CorpusFormat format, size_t index, size_t count);

/// Directory prefix of \p path including the trailing slash; empty for a
/// bare file name. Manifest-relative shard files resolve against this.
std::string DirnameWithSlash(const std::string& path);

/// Contiguous split of \p total records over \p shards: the first
/// `total % shards` shards hold one extra record. Returns per-shard counts.
std::vector<size_t> SplitShardCounts(size_t total, size_t shards);

/// @}

/// \brief Reads a sharded corpus as one record stream.
///
/// Shards open lazily in manifest order (counting io.shards_opened), so a
/// consumer that stops early never touches the remaining files.
class ShardedRecordReader : public RecordReader {
 public:
  [[nodiscard]] static Result<std::unique_ptr<ShardedRecordReader>> Open(
      const std::string& manifest_path, const RecordReadOptions& options = {});

  [[nodiscard]] Result<bool> Next(InstructionPair* pair) override;
  size_t SizeHint() const override;

  const ShardManifest& manifest() const { return manifest_; }

 private:
  ShardedRecordReader() = default;

  ShardManifest manifest_;
  std::string dir_;
  RecordReadOptions options_;
  size_t next_shard_ = 0;
  std::unique_ptr<RecordReader> current_;
};

/// \brief Writes a sharded corpus: records buffer in memory and split
/// contiguously into \p num_shards files at Close(), which writes the
/// manifest last — so a manifest on disk always describes complete shards.
class ShardedRecordWriter : public RecordWriter {
 public:
  ShardedRecordWriter(std::string manifest_path, CorpusFormat format,
                      size_t num_shards);

  [[nodiscard]] Status Write(const InstructionPair& pair) override;
  [[nodiscard]] Status Close() override;

 private:
  std::string manifest_path_;
  CorpusFormat format_;
  size_t num_shards_;
  std::vector<InstructionPair> pending_;
  bool closed_ = false;
};

/// \brief Opens one shard of \p manifest by index — the unit of per-shard
/// checkpointed execution in the CLI. \p manifest_path anchors relative
/// shard file names.
[[nodiscard]] Result<std::unique_ptr<RecordReader>> OpenShard(
    const ShardManifest& manifest, const std::string& manifest_path,
    size_t shard_index, const RecordReadOptions& options = {});

}  // namespace coachlm

#endif  // COACHLM_DATA_SHARD_H_
