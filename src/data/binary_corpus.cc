#include "data/binary_corpus.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xFF);
  bytes[1] = static_cast<char>((v >> 8) & 0xFF);
  bytes[2] = static_cast<char>((v >> 16) & 0xFF);
  bytes[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

Status TruncatedError(const char* what, size_t offset) {
  return Status::ParseError(std::string("truncated binary corpus: ") + what +
                            " at byte offset " + std::to_string(offset) +
                            " extends past end of file (torn final block; "
                            "re-read with torn-tail recovery to keep the "
                            "intact prefix)");
}

/// Parsed section table of one block payload; pointers into the mapping.
struct BlockSections {
  size_t record_count = 0;
  const char* ids = nullptr;
  const char* cats = nullptr;
  const char* cols[3] = {nullptr, nullptr, nullptr};
  const char* pool = nullptr;
  size_t pool_size = 0;
};

/// Validates internal consistency of a CRC-clean payload. Corruption that
/// survives a matching CRC is effectively impossible, but the decoder
/// still refuses to read out of bounds.
Result<BlockSections> DecodeSections(const char* payload, size_t payload_size,
                                     size_t record_count, size_t file_offset) {
  BlockSections out;
  out.record_count = record_count;
  size_t pos = 0;
  const auto take = [&](const char* what,
                        size_t expect_size) -> Result<const char*> {
    if (pos + 4 > payload_size) {
      return Status::ParseError("binary corpus block at byte offset " +
                                std::to_string(file_offset) +
                                ": missing section size for " + what);
    }
    const size_t size = GetU32(payload + pos);
    pos += 4;
    if (size > payload_size - pos) {
      return Status::ParseError("binary corpus block at byte offset " +
                                std::to_string(file_offset) + ": section " +
                                what + " overruns payload");
    }
    if (expect_size != kNpos && size != expect_size) {
      return Status::ParseError("binary corpus block at byte offset " +
                                std::to_string(file_offset) + ": section " +
                                what + " has size " + std::to_string(size) +
                                ", expected " + std::to_string(expect_size));
    }
    const char* base = payload + pos;
    pos += size;
    if (what[0] == 'p') out.pool_size = size;  // "pool" is the last section.
    return base;
  };
  COACHLM_ASSIGN_OR_RETURN(out.ids, take("ids", record_count * 8));
  COACHLM_ASSIGN_OR_RETURN(out.cats, take("categories", record_count));
  COACHLM_ASSIGN_OR_RETURN(out.cols[0], take("instruction", record_count * 8));
  COACHLM_ASSIGN_OR_RETURN(out.cols[1], take("input", record_count * 8));
  COACHLM_ASSIGN_OR_RETURN(out.cols[2], take("output", record_count * 8));
  COACHLM_ASSIGN_OR_RETURN(out.pool, take("pool", kNpos));
  if (pos != payload_size) {
    return Status::ParseError("binary corpus block at byte offset " +
                              std::to_string(file_offset) + ": " +
                              std::to_string(payload_size - pos) +
                              " trailing payload bytes");
  }
  // Every column reference must land inside the pool.
  for (const char* col : out.cols) {
    for (size_t i = 0; i < record_count; ++i) {
      const uint64_t off = GetU32(col + i * 8);
      const uint64_t len = GetU32(col + i * 8 + 4);
      if (off + len > out.pool_size) {
        return Status::ParseError("binary corpus block at byte offset " +
                                  std::to_string(file_offset) +
                                  ": string reference outside pool");
      }
    }
  }
  return out;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool HasBinaryCorpusMagic(std::string_view prefix) {
  return prefix.size() >= sizeof(kBinaryCorpusMagic) &&
         std::memcmp(prefix.data(), kBinaryCorpusMagic,
                     sizeof(kBinaryCorpusMagic)) == 0;
}

BinaryCorpusWriter::BinaryCorpusWriter(std::string path, size_t block_records)
    : path_(std::move(path)),
      block_records_(block_records == 0 ? 1 : block_records) {
  encoded_.append(kBinaryCorpusMagic, sizeof(kBinaryCorpusMagic));
  PutU32(&encoded_, kBinaryCorpusVersion);
}

Status BinaryCorpusWriter::Write(const InstructionPair& pair) {
  if (closed_) {
    return Status::FailedPrecondition("write to closed record writer");
  }
  pending_.push_back(pair);
  ++records_;
  if (pending_.size() >= block_records_) return FlushBlock();
  return Status::OK();
}

Status BinaryCorpusWriter::FlushBlock() {
  if (pending_.empty()) return Status::OK();
  const size_t n = pending_.size();
  // Intern each distinct string once; std::map keeps pool layout (and thus
  // output bytes) independent of insertion hashing.
  std::string pool;
  std::map<std::string, uint32_t> interned;
  const auto intern = [&](const std::string& s) -> std::pair<uint32_t, bool> {
    auto [it, inserted] = interned.emplace(s, 0);
    if (inserted) {
      it->second = static_cast<uint32_t>(pool.size());
      pool += s;
    }
    return {it->second, !inserted};
  };

  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(n * 8));
  for (const InstructionPair& p : pending_) PutU64(&payload, p.id);
  PutU32(&payload, static_cast<uint32_t>(n));
  for (const InstructionPair& p : pending_) {
    payload.push_back(static_cast<char>(static_cast<uint8_t>(p.category)));
  }
  for (int col = 0; col < 3; ++col) {
    PutU32(&payload, static_cast<uint32_t>(n * 8));
    for (const InstructionPair& p : pending_) {
      const std::string& s = col == 0   ? p.instruction
                             : col == 1 ? p.input
                                        : p.output;
      const auto [offset, was_hit] = intern(s);
      if (was_hit) ++pool_dedup_hits_;
      PutU32(&payload, offset);
      PutU32(&payload, static_cast<uint32_t>(s.size()));
    }
  }
  PutU32(&payload, static_cast<uint32_t>(pool.size()));
  payload += pool;

  PutU32(&encoded_, static_cast<uint32_t>(n));
  PutU32(&encoded_, static_cast<uint32_t>(payload.size()));
  PutU32(&encoded_, Crc32(payload.data(), payload.size()));
  PutU32(&encoded_, 0);  // reserved
  encoded_ += payload;
  pending_.clear();
  return Status::OK();
}

Status BinaryCorpusWriter::Close() {
  if (closed_) return Status::OK();
  COACHLM_RETURN_NOT_OK(FlushBlock());
  closed_ = true;
  COACHLM_RETURN_NOT_OK(json::WriteFile(path_, encoded_));
  CountMetric("io.records_written", records_);
  CountMetric("io.bytes_written", encoded_.size());
  CountMetric("io.pool_dedup_hits", pool_dedup_hits_);
  return Status::OK();
}

BinaryCorpusReader::~BinaryCorpusReader() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, size_);
  }
}

Result<std::unique_ptr<BinaryCorpusReader>> BinaryCorpusReader::Open(
    const std::string& path, const RecordReadOptions& options) {
  std::unique_ptr<BinaryCorpusReader> reader(new BinaryCorpusReader());
  reader->recover_torn_tail_ = options.recover_torn_tail;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                         MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        reader->mapping_ = map;
        reader->data_ = static_cast<const char*>(map);
        reader->size_ = static_cast<size_t>(st.st_size);
      }
    }
    ::close(fd);
  }
  if (reader->mapping_ == nullptr) {
    // mmap unavailable (empty file, special filesystem): buffered fallback
    // with identical semantics.
    COACHLM_ASSIGN_OR_RETURN(reader->buffer_, json::ReadFile(path));
    reader->data_ = reader->buffer_.data();
    reader->size_ = reader->buffer_.size();
  }
  CountMetric("io.bytes_read", reader->size_);

  if (reader->size_ < kBinaryCorpusHeaderBytes ||
      !HasBinaryCorpusMagic(std::string_view(reader->data_, reader->size_))) {
    return Status::ParseError("'" + path + "' is not a binary corpus file");
  }
  const uint32_t version = GetU32(reader->data_ + sizeof(kBinaryCorpusMagic));
  if (version != kBinaryCorpusVersion) {
    return Status::ParseError(
        "unsupported binary corpus version " + std::to_string(version) +
        " in '" + path + "' (reader supports version " +
        std::to_string(kBinaryCorpusVersion) + ")");
  }
  reader->offset_ = kBinaryCorpusHeaderBytes;

  // Validate every block up front: Next()/NextView() never fail after a
  // successful Open, and SizeHint() is exact.
  size_t offset = reader->offset_;
  while (offset < reader->size_) {
    if (reader->size_ - offset < kBinaryBlockHeaderBytes) {
      if (options.recover_torn_tail) {
        reader->info_.truncated_offset = offset;
        break;
      }
      return TruncatedError("block header", offset);
    }
    const size_t record_count = GetU32(reader->data_ + offset);
    const size_t payload_bytes = GetU32(reader->data_ + offset + 4);
    const uint32_t crc = GetU32(reader->data_ + offset + 8);
    const size_t payload_at = offset + kBinaryBlockHeaderBytes;
    if (payload_bytes > reader->size_ - payload_at) {
      if (options.recover_torn_tail) {
        reader->info_.truncated_offset = offset;
        break;
      }
      return TruncatedError("block payload", offset);
    }
    // A bit flip inside an intact block is corruption, not a torn tail:
    // never recoverable.
    if (Crc32(reader->data_ + payload_at, payload_bytes) != crc) {
      return Status::ParseError(
          "binary corpus block at byte offset " + std::to_string(offset) +
          " failed CRC check (corrupt data) in '" + path + "'");
    }
    COACHLM_RETURN_NOT_OK(DecodeSections(reader->data_ + payload_at,
                                         payload_bytes, record_count, offset)
                              .status());
    ++reader->info_.blocks;
    reader->info_.records += record_count;
    offset = payload_at + payload_bytes;
  }
  CountMetric("io.records_read", reader->info_.records);
  return reader;
}

Result<bool> BinaryCorpusReader::EnterNextBlock() {
  while (true) {
    if (offset_ >= size_ || offset_ == info_.truncated_offset) return false;
    const size_t record_count = GetU32(data_ + offset_);
    const size_t payload_bytes = GetU32(data_ + offset_ + 4);
    const char* payload = data_ + offset_ + kBinaryBlockHeaderBytes;
    COACHLM_ASSIGN_OR_RETURN(
        BlockSections sections,
        DecodeSections(payload, payload_bytes, record_count, offset_));
    offset_ += kBinaryBlockHeaderBytes + payload_bytes;
    if (record_count == 0) continue;  // writer flushed an empty block
    block_ = BlockCursor();
    block_.record_count = sections.record_count;
    block_.ids = sections.ids;
    block_.cats = sections.cats;
    block_.cols[0] = sections.cols[0];
    block_.cols[1] = sections.cols[1];
    block_.cols[2] = sections.cols[2];
    block_.pool = sections.pool;
    block_.pool_size = sections.pool_size;
    in_block_ = true;
    return true;
  }
}

Result<bool> BinaryCorpusReader::NextView(RecordView* view) {
  if (!in_block_ || block_.record >= block_.record_count) {
    COACHLM_ASSIGN_OR_RETURN(const bool more, EnterNextBlock());
    if (!more) return false;
  }
  const size_t i = block_.record++;
  view->id = GetU64(block_.ids + i * 8);
  view->category = static_cast<uint8_t>(block_.cats[i]);
  const char* cols[3] = {block_.cols[0], block_.cols[1], block_.cols[2]};
  std::string_view* fields[3] = {&view->instruction, &view->input,
                                 &view->output};
  for (int c = 0; c < 3; ++c) {
    const uint32_t off = GetU32(cols[c] + i * 8);
    const uint32_t len = GetU32(cols[c] + i * 8 + 4);
    *fields[c] = std::string_view(block_.pool + off, len);
  }
  return true;
}

Result<bool> BinaryCorpusReader::Next(InstructionPair* pair) {
  RecordView view;
  COACHLM_ASSIGN_OR_RETURN(const bool more, NextView(&view));
  if (!more) return false;
  pair->id = view.id;
  pair->category = static_cast<Category>(view.category);
  pair->instruction.assign(view.instruction);
  pair->input.assign(view.input);
  pair->output.assign(view.output);
  return true;
}

Result<BinaryReadInfo> InspectBinaryCorpus(const std::string& path,
                                           const RecordReadOptions& options) {
  COACHLM_ASSIGN_OR_RETURN(std::unique_ptr<BinaryCorpusReader> reader,
                           BinaryCorpusReader::Open(path, options));
  return reader->info();
}

}  // namespace coachlm
