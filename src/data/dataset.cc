#include "data/dataset.h"

#include <algorithm>

#include "json/jsonl.h"
#include "text/string_util.h"

namespace coachlm {

Result<InstructionPair> InstructionDataset::FindById(uint64_t id) const {
  for (const InstructionPair& pair : pairs_) {
    if (pair.id == id) return pair;
  }
  return Status::NotFound("no pair with id " + std::to_string(id));
}

DatasetStats InstructionDataset::ComputeStats() const {
  DatasetStats stats;
  stats.size = pairs_.size();
  if (pairs_.empty()) return stats;
  double iw = 0, rw = 0, ic = 0, rc = 0;
  for (const InstructionPair& pair : pairs_) {
    const std::string full = pair.FullInstruction();
    iw += static_cast<double>(strings::CountWords(full));
    rw += static_cast<double>(strings::CountWords(pair.output));
    ic += static_cast<double>(full.size());
    rc += static_cast<double>(pair.output.size());
    ++stats.category_counts[pair.category];
  }
  const double n = static_cast<double>(pairs_.size());
  stats.avg_instruction_words = iw / n;
  stats.avg_response_words = rw / n;
  stats.avg_instruction_chars = ic / n;
  stats.avg_response_chars = rc / n;
  return stats;
}

DatasetStats MergeDatasetStats(const std::vector<DatasetStats>& parts) {
  DatasetStats merged;
  double iw = 0, rw = 0, ic = 0, rc = 0;
  for (const DatasetStats& part : parts) {
    const double n = static_cast<double>(part.size);
    merged.size += part.size;
    iw += part.avg_instruction_words * n;
    rw += part.avg_response_words * n;
    ic += part.avg_instruction_chars * n;
    rc += part.avg_response_chars * n;
    for (const auto& [category, count] : part.category_counts) {
      merged.category_counts[category] += count;
    }
  }
  if (merged.size == 0) return merged;
  const double total = static_cast<double>(merged.size);
  merged.avg_instruction_words = iw / total;
  merged.avg_response_words = rw / total;
  merged.avg_instruction_chars = ic / total;
  merged.avg_response_chars = rc / total;
  return merged;
}

InstructionDataset InstructionDataset::SampleWithoutReplacement(
    size_t n, Rng* rng) const {
  if (n >= pairs_.size()) return *this;
  // Floyd's algorithm over indices, then restore order.
  std::vector<size_t> indices(pairs_.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  indices.resize(n);
  std::sort(indices.begin(), indices.end());
  std::vector<InstructionPair> sampled;
  sampled.reserve(n);
  for (size_t i : indices) sampled.push_back(pairs_[i]);
  return InstructionDataset(std::move(sampled));
}

InstructionDataset InstructionDataset::FilterByCategory(
    Category category) const {
  std::vector<InstructionPair> subset;
  for (const InstructionPair& pair : pairs_) {
    if (pair.category == category) subset.push_back(pair);
  }
  return InstructionDataset(std::move(subset));
}

std::string InstructionDataset::ToJson() const {
  json::Array array;
  array.reserve(pairs_.size());
  for (const InstructionPair& pair : pairs_) array.push_back(pair.ToJson());
  return json::Value(std::move(array)).DumpPretty();
}

Result<InstructionDataset> InstructionDataset::FromJson(
    const std::string& text) {
  COACHLM_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  if (!doc.is_array()) {
    return Status::ParseError("dataset file must contain a JSON array");
  }
  InstructionDataset dataset;
  for (const json::Value& item : doc.AsArray()) {
    COACHLM_ASSIGN_OR_RETURN(InstructionPair pair,
                             InstructionPair::FromJson(item));
    dataset.Add(std::move(pair));
  }
  return dataset;
}

Status InstructionDataset::SaveJson(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

Result<InstructionDataset> InstructionDataset::LoadJson(
    const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, json::ReadFile(path));
  return FromJson(text);
}

}  // namespace coachlm
