#include "data/instruction_pair.h"

#include "text/string_util.h"

namespace coachlm {

std::string InstructionPair::FullInstruction() const {
  if (input.empty()) return instruction;
  return instruction + "\n" + input;
}

size_t InstructionPair::TotalChars() const {
  return instruction.size() + input.size() + output.size();
}

bool InstructionPair::IsWellFormed() const {
  return !strings::Trim(instruction).empty() &&
         !strings::Trim(output).empty();
}

json::Value InstructionPair::ToJson() const {
  json::Object obj;
  obj["id"] = json::Value(static_cast<int64_t>(id));
  obj["instruction"] = json::Value(instruction);
  obj["input"] = json::Value(input);
  obj["output"] = json::Value(output);
  obj["category"] = json::Value(CategoryName(category));
  return json::Value(std::move(obj));
}

Result<InstructionPair> InstructionPair::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("instruction pair must be a JSON object");
  }
  InstructionPair pair;
  COACHLM_ASSIGN_OR_RETURN(pair.instruction, value.GetString("instruction"));
  // `input` may be absent in minimal Alpaca files.
  if (value.At("input").is_string()) pair.input = value.At("input").AsString();
  COACHLM_ASSIGN_OR_RETURN(pair.output, value.GetString("output"));
  if (value.At("id").is_number()) {
    pair.id = static_cast<uint64_t>(value.At("id").AsInt());
  }
  if (value.At("category").is_string()) {
    COACHLM_ASSIGN_OR_RETURN(pair.category,
                             CategoryFromName(value.At("category").AsString()));
  }
  return pair;
}

}  // namespace coachlm
