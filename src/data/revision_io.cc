#include "data/revision_io.h"

#include "json/jsonl.h"

namespace coachlm {

Status SaveRevisions(const std::string& path,
                     const RevisionDataset& records) {
  std::vector<json::Value> lines;
  lines.reserve(records.size());
  for (const RevisionRecord& record : records) {
    json::Object obj;
    obj["original"] = record.original.ToJson();
    obj["revised"] = record.revised.ToJson();
    lines.push_back(json::Value(std::move(obj)));
  }
  return json::SaveJsonl(path, lines);
}

Result<RevisionDataset> LoadRevisions(const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(std::vector<json::Value> lines,
                           json::LoadJsonl(path));
  RevisionDataset records;
  records.reserve(lines.size());
  for (const json::Value& line : lines) {
    RevisionRecord record;
    COACHLM_ASSIGN_OR_RETURN(record.original,
                             InstructionPair::FromJson(line.At("original")));
    COACHLM_ASSIGN_OR_RETURN(record.revised,
                             InstructionPair::FromJson(line.At("revised")));
    record.RecomputeDerived();
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace coachlm
