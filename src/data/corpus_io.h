#ifndef COACHLM_DATA_CORPUS_IO_H_
#define COACHLM_DATA_CORPUS_IO_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "data/shard.h"

namespace coachlm {

/// \name Corpus factories
///
/// The one place that knows every on-disk corpus shape. Everything above
/// (stages, CLI commands) asks for a RecordReader / RecordWriter by path
/// and lets these factories pick the backend.
/// @{

/// \brief What SniffCorpus concluded about a file.
struct CorpusSniff {
  CorpusFormat format = CorpusFormat::kJson;
  bool sharded = false;  ///< Path is a shard manifest.
};

/// Identifies a corpus file from its leading bytes: the binary magic, a
/// shard-manifest object (first key "coachlm_manifest"), a JSON array, or
/// JSONL (an object on the first line). Empty files sniff as JSONL (an
/// empty corpus).
[[nodiscard]] Result<CorpusSniff> SniffCorpus(const std::string& path);

/// Opens \p path with the backend chosen by options.format, or by
/// sniffing under kAuto. Shard manifests are always recognized (whatever
/// the requested format — the manifest itself pins its shards' format).
[[nodiscard]] Result<std::unique_ptr<RecordReader>> OpenCorpusReader(
    const std::string& path, const RecordReadOptions& options = {});

/// \brief Write-side choices of a corpus artifact.
struct CorpusWriteOptions {
  /// Concrete format, or kAuto to resolve from the path's extension:
  /// ".jsonl" is JSONL, ".clmb"/".bin" is binary, a ".manifest.json"
  /// sharded target defaults to binary shards, anything else is the
  /// pretty JSON array the pre-stream CLI wrote.
  CorpusFormat format = CorpusFormat::kAuto;
  /// Number of shards. Output is sharded (manifest + shard files) when
  /// this is > 1 or the path names a ".manifest.json"; 1 writes a single
  /// file. The CLI rejects 0 before it gets here.
  size_t shards = 1;
};

/// Resolves kAuto against \p path per CorpusWriteOptions::format rules.
CorpusFormat ResolveWriterFormat(const std::string& path, CorpusFormat format,
                                 bool sharded);

/// Creates the writer for \p path. The artifact is incomplete until
/// Close() succeeds.
[[nodiscard]] Result<std::unique_ptr<RecordWriter>> OpenCorpusWriter(
    const std::string& path, const CorpusWriteOptions& options = {});

/// Materializes the whole corpus at \p path (any backend).
[[nodiscard]] Result<InstructionDataset> LoadCorpus(
    const std::string& path, const RecordReadOptions& options = {});

/// Writes \p dataset to \p path (any backend), Close() included.
[[nodiscard]] Status SaveCorpus(const std::string& path,
                                const InstructionDataset& dataset,
                                const CorpusWriteOptions& options = {});

/// @}

}  // namespace coachlm

#endif  // COACHLM_DATA_CORPUS_IO_H_
