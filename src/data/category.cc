#include "data/category.h"

#include <array>
#include <unordered_map>

namespace coachlm {
namespace {

constexpr std::array<const char*, kNumCategories> kNames = {
    "information_extraction", "grammar_correction", "summarization",
    "paraphrasing", "translation", "text_classification",
    "sentiment_analysis", "keyword_extraction", "sentence_completion",
    "spelling_correction", "text_simplification", "data_formatting",
    "table_to_text", "entity_recognition", "ordering", "comparison",
    "general_qa", "in_domain_qa", "science_qa", "history_qa", "math_problem",
    "logical_reasoning", "coding", "code_explanation", "debugging_help",
    "how_to_guide", "recommendation", "dialogue_completion", "opinion",
    "health_advice", "story_writing", "poem_writing", "copywriting",
    "email_drafting", "brainstorming", "naming", "slogan_writing",
    "joke_writing", "lyrics_writing", "roleplay", "essay_writing",
    "speech_writing",
};

}  // namespace

const std::vector<Category>& AllCategories() {
  static const std::vector<Category> kAll = [] {
    std::vector<Category> all;
    all.reserve(kNumCategories);
    for (size_t i = 0; i < kNumCategories; ++i) {
      all.push_back(static_cast<Category>(i));
    }
    return all;
  }();
  return kAll;
}

TaskClass ClassOf(Category category) {
  const auto index = static_cast<uint8_t>(category);
  if (index <= static_cast<uint8_t>(Category::kComparison)) {
    return TaskClass::kLanguageTask;
  }
  if (index <= static_cast<uint8_t>(Category::kHealthAdvice)) {
    return TaskClass::kQa;
  }
  return TaskClass::kCreative;
}

const std::string& CategoryName(Category category) {
  static const std::array<std::string, kNumCategories> kStrings = [] {
    std::array<std::string, kNumCategories> strings;
    for (size_t i = 0; i < kNumCategories; ++i) strings[i] = kNames[i];
    return strings;
  }();
  return kStrings[static_cast<uint8_t>(category)];
}

Result<Category> CategoryFromName(const std::string& name) {
  static const std::unordered_map<std::string, Category> kIndex = [] {
    std::unordered_map<std::string, Category> index;
    for (size_t i = 0; i < kNumCategories; ++i) {
      index.emplace(kNames[i], static_cast<Category>(i));
    }
    return index;
  }();
  auto it = kIndex.find(name);
  if (it == kIndex.end()) {
    return Status::NotFound("unknown category '" + name + "'");
  }
  return it->second;
}

const std::string& TaskClassName(TaskClass task_class) {
  static const std::array<std::string, 3> kClassNames = {
      "language_task", "qa", "creative"};
  return kClassNames[static_cast<uint8_t>(task_class)];
}

}  // namespace coachlm
