#ifndef COACHLM_DATA_RECORD_STREAM_H_
#define COACHLM_DATA_RECORD_STREAM_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/dataset.h"
#include "data/instruction_pair.h"

namespace coachlm {

/// \brief On-disk corpus backend. Every stage speaks RecordReader /
/// RecordWriter; the format is a property of the file, not of the stage.
///
/// kAuto resolves by sniffing (readers: magic bytes / first JSON token;
/// writers: the output path's extension), so existing golden corpora —
/// Alpaca JSON arrays and JSONL — keep working unchanged next to the
/// binary columnar format of data/binary_corpus.h.
enum class CorpusFormat {
  kAuto = 0,
  kJson,    ///< Alpaca-format pretty-printed JSON array (the seed format).
  kJsonl,   ///< One compact JSON object per line.
  kBinary,  ///< Versioned binary columnar shards (docs/FORMAT.md).
};

/// Stable lowercase name ("auto", "json", "jsonl", "binary").
const char* CorpusFormatName(CorpusFormat format);

/// Parses a --format value; unknown names are InvalidArgument (the CLI
/// turns that into a usage error, exit 2).
[[nodiscard]] Result<CorpusFormat> ParseCorpusFormat(const std::string& name);

/// \brief Read options shared by every corpus backend.
struct RecordReadOptions {
  /// Explicit format; kAuto sniffs the file.
  CorpusFormat format = CorpusFormat::kAuto;
  /// When true, a torn final record — the signature of a writer killed
  /// mid-append, detected per backend (JSONL: unterminated last line;
  /// binary: a last block whose declared payload extends past EOF) — is
  /// discarded and reading stops at the intact prefix instead of failing.
  bool recover_torn_tail = false;
};

/// \brief Pull-based stream of instruction pairs, the narrow waist every
/// corpus producer/consumer goes through.
///
/// Contract: Next() returns true and fills \p pair until the stream is
/// exhausted, then returns false forever; errors are sticky. Readers are
/// single-threaded cursors — stages that need random access materialize
/// once via ReadAllRecords() and parallelize over the dataset.
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record. False (with OK) at end of stream.
  [[nodiscard]] virtual Result<bool> Next(InstructionPair* pair) = 0;

  /// Records the backend declares up front (manifest / loaded document);
  /// 0 when unknown. A hint for reserve(), never a contract.
  virtual size_t SizeHint() const { return 0; }
};

/// \brief Push-based sink for instruction pairs.
///
/// Close() finalizes the artifact (flushes the last block, writes the
/// array / manifest) and is required for the bytes to be complete;
/// destruction without Close() abandons the output. Close() is idempotent.
class RecordWriter {
 public:
  virtual ~RecordWriter() = default;

  [[nodiscard]] virtual Status Write(const InstructionPair& pair) = 0;
  [[nodiscard]] virtual Status Close() = 0;
};

/// \brief Drains \p reader into an in-memory dataset (the bridge for
/// stages whose algorithms need random access / parallel iteration).
[[nodiscard]] Result<InstructionDataset> ReadAllRecords(RecordReader* reader);

/// \brief Streams every pair of \p dataset into \p writer (does not
/// Close() it, so callers can append across datasets).
[[nodiscard]] Status WriteAllRecords(RecordWriter* writer,
                                     const InstructionDataset& dataset);

/// \name In-memory adapters
/// Stages use these to expose intermediate datasets as streams without
/// touching disk (and tests use them to drive stage entry points).
/// @{

/// Reads from a borrowed dataset; \p dataset must outlive the reader.
class DatasetRecordReader : public RecordReader {
 public:
  explicit DatasetRecordReader(const InstructionDataset* dataset)
      : dataset_(dataset) {}

  [[nodiscard]] Result<bool> Next(InstructionPair* pair) override;
  size_t SizeHint() const override { return dataset_->size(); }

 private:
  const InstructionDataset* dataset_;
  size_t next_ = 0;
};

/// Appends into a borrowed dataset; Close() is a no-op.
class DatasetRecordWriter : public RecordWriter {
 public:
  explicit DatasetRecordWriter(InstructionDataset* dataset)
      : dataset_(dataset) {}

  [[nodiscard]] Status Write(const InstructionPair& pair) override;
  [[nodiscard]] Status Close() override { return Status::OK(); }

 private:
  InstructionDataset* dataset_;
};

/// @}

/// \name Text backends (JSON array / JSONL)
///
/// The readers parse under the process-wide ParseLimits through the
/// hardened json/jsonl paths, so hostile corpora hit the same typed-error
/// surface as before the stream refactor. The writers reproduce the
/// pre-refactor bytes exactly: the JSON writer emits
/// InstructionDataset::ToJson() (pretty array) and the JSONL writer one
/// compact object per line — which is what keeps every golden corpus
/// byte-identical across the refactor.
/// @{

class JsonArrayRecordReader : public RecordReader {
 public:
  /// Parses \p path as an Alpaca JSON array.
  [[nodiscard]] static Result<std::unique_ptr<JsonArrayRecordReader>> Open(
      const std::string& path);

  [[nodiscard]] Result<bool> Next(InstructionPair* pair) override;
  size_t SizeHint() const override { return dataset_.size(); }

 private:
  explicit JsonArrayRecordReader(InstructionDataset dataset)
      : dataset_(std::move(dataset)) {}

  InstructionDataset dataset_;
  size_t next_ = 0;
};

class JsonlRecordReader : public RecordReader {
 public:
  [[nodiscard]] static Result<std::unique_ptr<JsonlRecordReader>> Open(
      const std::string& path, const RecordReadOptions& options = {});

  [[nodiscard]] Result<bool> Next(InstructionPair* pair) override;
  size_t SizeHint() const override { return dataset_.size(); }

 private:
  explicit JsonlRecordReader(InstructionDataset dataset)
      : dataset_(std::move(dataset)) {}

  InstructionDataset dataset_;
  size_t next_ = 0;
};

class JsonArrayRecordWriter : public RecordWriter {
 public:
  explicit JsonArrayRecordWriter(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] Status Write(const InstructionPair& pair) override;
  [[nodiscard]] Status Close() override;

 private:
  std::string path_;
  InstructionDataset buffered_;
  bool closed_ = false;
};

class JsonlRecordWriter : public RecordWriter {
 public:
  explicit JsonlRecordWriter(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] Status Write(const InstructionPair& pair) override;
  [[nodiscard]] Status Close() override;

 private:
  std::string path_;
  std::string buffer_;
  size_t records_ = 0;
  bool closed_ = false;
};

/// @}

}  // namespace coachlm

#endif  // COACHLM_DATA_RECORD_STREAM_H_
