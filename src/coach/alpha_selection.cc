#include "coach/alpha_selection.h"

#include <algorithm>
#include <cmath>

namespace coachlm {
namespace coach {

size_t AlphaCount(size_t n, double alpha) {
  alpha = std::clamp(alpha, 0.0, 1.0);
  return static_cast<size_t>(
      std::llround(alpha * static_cast<double>(n)));
}

RevisionDataset SelectTopAlpha(const RevisionDataset& revisions,
                               double alpha) {
  const size_t keep = AlphaCount(revisions.size(), alpha);
  if (keep == 0) return {};
  RevisionDataset sorted = revisions;
  // Stable sort on descending edit distance, ties broken by original id so
  // the selection is fully deterministic.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RevisionRecord& a, const RevisionRecord& b) {
                     if (a.char_edit_distance != b.char_edit_distance) {
                       return a.char_edit_distance > b.char_edit_distance;
                     }
                     return a.original.id < b.original.id;
                   });
  sorted.resize(std::min(keep, sorted.size()));
  return sorted;
}

}  // namespace coach
}  // namespace coachlm
