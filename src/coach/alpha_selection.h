#ifndef COACHLM_COACH_ALPHA_SELECTION_H_
#define COACHLM_COACH_ALPHA_SELECTION_H_

#include <cstddef>

#include "data/revision_record.h"

namespace coachlm {
namespace coach {

/// \brief The α-selection of Section II-F2.
///
/// Ranks the expert revision dataset R by character edit distance between
/// each original and its revision (the information content of the example)
/// and keeps the top α fraction as the coach-tuning set C_α. α = 0 yields
/// an empty set (no training); α = 1 keeps all of R.
RevisionDataset SelectTopAlpha(const RevisionDataset& revisions, double alpha);

/// Number of records SelectTopAlpha keeps for a dataset of size \p n.
size_t AlphaCount(size_t n, double alpha);

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_ALPHA_SELECTION_H_
