#ifndef COACHLM_COACH_VERIFIER_H_
#define COACHLM_COACH_VERIFIER_H_

#include <optional>
#include <string>

#include "lm/backbone.h"

namespace coachlm {
namespace coach {

/// \brief Statistics of an expansion-verification pass.
struct VerifierStats {
  size_t checked = 0;
  /// Sentences whose surface slips the verifier repaired in place.
  size_t repaired = 0;
  /// Sentences rejected as off-topic (would-be hallucinations).
  size_t rejected = 0;
};

/// \brief The paper's future-work extension: an RL-style self-check on
/// generated expansions (Section IV-B reports CoachLM occasionally
/// "expanded upon hallucinated content"; Section VI proposes integrating
/// RL signals to mitigate it).
///
/// Before an expansion sentence is appended, the verifier spends extra
/// backbone compute on it:
///  1. *Fluency self-consistency*: the sentence is re-decoded through the
///     backbone's surface competence (spelling/casing repair); if the
///     repaired form is more probable under the backbone's fluency LM, the
///     repaired form replaces the sampled one — the analogue of rejecting
///     low-reward samples.
///  2. *Grounding*: the sentence must activate the same memory region as
///     the task context (associative agreement above a floor); ungrounded
///     content — the hallucination signature — is rejected outright.
///
/// Enabled via CoachConfig::verify_expansions; the default (off) matches
/// the published system, and bench_ablation_verifier measures the delta.
class ExpansionVerifier {
 public:
  ExpansionVerifier(const lm::BackboneModel* backbone,
                    double min_agreement = 0.08)
      : backbone_(backbone), min_agreement_(min_agreement) {}

  /// Verifies one candidate expansion sentence against the task context.
  /// Returns the (possibly repaired) sentence to append, or nullopt when
  /// the sentence should be dropped. \p stats (optional) accumulates
  /// counters.
  std::optional<std::string> Verify(const std::string& context,
                                    const std::string& sentence,
                                    VerifierStats* stats = nullptr) const;

 private:
  const lm::BackboneModel* backbone_;
  double min_agreement_;
};

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_VERIFIER_H_
