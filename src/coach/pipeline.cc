#include "coach/pipeline.h"

#include "coach/alpha_selection.h"
#include "lm/pair_text.h"

namespace coachlm {
namespace coach {

CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     size_t num_threads) {
  CoachPipelineResult result;
  CoachTrainer trainer(config);
  result.model = trainer.Train(revisions);

  // The leakage guard: pairs used in training are not revised. Matching
  // on the full serialized pair (instruction + input + output) keeps the
  // guard precise in the synthetic corpus, where short instruction texts
  // recur across unrelated pairs.
  std::unordered_set<std::string> training_instructions;
  for (const RevisionRecord& record :
       SelectTopAlpha(revisions, config.alpha)) {
    training_instructions.insert(lm::SerializePair(record.original));
  }
  result.revised_dataset = result.model->ReviseDataset(
      corpus, training_instructions, &result.stats, num_threads);
  return result;
}

}  // namespace coach
}  // namespace coachlm
