#include "coach/pipeline.h"

#include "common/trace.h"

namespace coachlm {
namespace coach {

CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     const ExecutionContext& exec) {
  return RunCoachPipeline(corpus, revisions, config, exec,
                          /*runtime=*/nullptr, /*checkpoint=*/nullptr);
}

CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     const ExecutionContext& exec,
                                     PipelineRuntime* runtime,
                                     StageCheckpointer* checkpoint) {
  CoachPipelineResult result;
  CoachTrainer trainer(config);
  std::unordered_set<std::string> training_instructions;
  {
    const StageSpan span("train");
    // Build C_alpha once: training consumes the samples below, and the
    // leakage guard reuses each sample's input text — which *is* the
    // serialized original (lm::MakeCoachSample) — so nothing is α-selected
    // or serialized a second time.
    const InstructionDataset coach_dataset =
        trainer.BuildCoachDataset(revisions);
    result.model = trainer.TrainOnCoachDataset(coach_dataset);

    // The leakage guard: pairs used in training are not revised. Matching
    // on the full serialized pair (instruction + input + output) keeps the
    // guard precise in the synthetic corpus, where short instruction texts
    // recur across unrelated pairs.
    training_instructions.reserve(coach_dataset.size());
    for (const InstructionPair& sample : coach_dataset) {
      training_instructions.insert(sample.input);
    }
  }
  result.revised_dataset = result.model->ReviseDataset(
      corpus, training_instructions, &result.stats, exec, runtime, checkpoint);
  return result;
}

CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     size_t num_threads) {
  if (num_threads == 0) {
    return RunCoachPipeline(corpus, revisions, config,
                            ExecutionContext::Default());
  }
  const ExecutionContext exec(num_threads);
  return RunCoachPipeline(corpus, revisions, config, exec);
}

}  // namespace coach
}  // namespace coachlm
