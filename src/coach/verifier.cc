#include "coach/verifier.h"

#include "text/repair.h"

namespace coachlm {
namespace coach {

std::optional<std::string> ExpansionVerifier::Verify(
    const std::string& context, const std::string& sentence,
    VerifierStats* stats) const {
  if (stats != nullptr) ++stats->checked;

  // Grounding check: an expansion that does not co-activate the context's
  // memory region is the hallucination signature — drop it.
  const double agreement = backbone_->TopicalAgreement(context, sentence);
  if (agreement < min_agreement_) {
    if (stats != nullptr) ++stats->rejected;
    return std::nullopt;
  }

  // Fluency self-consistency: re-decode through the backbone's surface
  // competence and keep whichever form the fluency LM prefers.
  std::string repaired = repair::FixKnownSpelling(sentence);
  repaired = repair::CapitalizeSentences(repaired);
  if (repaired != sentence) {
    const NgramLm& fluency = backbone_->fluency_lm();
    if (fluency.Perplexity(repaired) < fluency.Perplexity(sentence)) {
      if (stats != nullptr) ++stats->repaired;
      return repaired;
    }
  }
  return sentence;
}

}  // namespace coach
}  // namespace coachlm
