#ifndef COACHLM_COACH_PIPELINE_H_
#define COACHLM_COACH_PIPELINE_H_

#include <optional>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/execution.h"
#include "data/dataset.h"
#include "data/revision_record.h"

namespace coachlm {
namespace coach {

/// \brief Output of the end-to-end coach pipeline (Fig. 2).
struct CoachPipelineResult {
  /// The trained coach model (or raw backbone when α = 0).
  std::optional<CoachLm> model;
  /// The CoachLM-revised dataset D_c (Eq. 2).
  InstructionDataset revised_dataset;
  /// Post-processing / leakage statistics of the revision pass.
  RevisionPassStats stats;
};

/// \brief Trains CoachLM on R and revises \p corpus with it over \p exec.
///
/// The leakage guard skips corpus pairs whose instruction appeared in the
/// coach-tuning samples (Section III-B1). C_α is built once: training
/// consumes the samples and the guard reuses each sample's serialized
/// original, so no record is α-selected or serialized twice. The revision
/// pass is byte-identical at any thread count.
CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     const ExecutionContext& exec);

/// Fault-tolerant variant: the revision pass runs under \p runtime
/// (nullptr = PipelineRuntime::Default()) so per-pair inference faults are
/// retried and permanent failures degrade to the original pair + a
/// quarantine record instead of aborting. \p checkpoint (optional) journals
/// the revision pass for crash-safe resume — see CoachLm::ReviseDataset.
CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config,
                                     const ExecutionContext& exec,
                                     PipelineRuntime* runtime,
                                     StageCheckpointer* checkpoint = nullptr);

/// Legacy thread-count entry point: \p num_threads = 0 uses
/// ExecutionContext::Default().
CoachPipelineResult RunCoachPipeline(const InstructionDataset& corpus,
                                     const RevisionDataset& revisions,
                                     const CoachConfig& config = {},
                                     size_t num_threads = 0);

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_PIPELINE_H_
