#include "coach/coach_lm.h"

#include "coach/verifier.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"
#include "json/jsonl.h"
#include "lm/pair_text.h"
#include "lm/rule_extractor.h"
#include "text/repair.h"
#include "text/similarity.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace coach {
namespace {

/// Picks the i-th phrase (rotating) from a support table restricted to
/// entries above min_support; empty when none qualify.
std::string RotatingPhrase(const std::map<std::string, size_t>& table,
                           size_t min_support, Rng* rng) {
  const auto phrases = lm::RuleStore::PhrasesAbove(table, min_support);
  if (phrases.empty()) return "";
  return phrases[rng->NextBelow(phrases.size())];
}

/// RotatingPhrase over a precompiled phrase vector (same contents as
/// PhrasesAbove would return, frozen at compile time). The RNG is drawn
/// only when the list is non-empty, exactly like RotatingPhrase — the two
/// engines must consume identical RNG streams.
std::string RotatingFromVector(const std::vector<std::string>& phrases,
                               Rng* rng) {
  if (phrases.empty()) return "";
  return phrases[rng->NextBelow(phrases.size())];
}

/// Per-text firing/prefilter counters for the compiled engine. The sums
/// are commutative, so parallel revision serializes them to the same
/// bytes at any thread count.
void EmitRuleFireMetrics(size_t fired, const lm::RuleMatcher& matcher) {
  if (!Observability::Enabled()) return;
  CountMetric("rules.matches_fired", fired);
  CountMetric("rules.prefilter_rejected", matcher.prefilter_rejected());
}

/// The coach's subject guess for disambiguation: the first pair of
/// adjacent content words in the response (a purely textual heuristic —
/// the model has no access to the topic bank).
std::string GuessSubject(const InstructionPair& pair) {
  const auto tokens = tokenizer::WordTokenize(pair.output.empty()
                                                  ? pair.input
                                                  : pair.output);
  std::string first;
  for (const std::string& token : tokens) {
    if (tokenizer::IsPunctuation(token) || token.size() < 4) continue;
    const std::string lower = strings::Lower(token);
    if (first.empty()) {
      first = lower;
      continue;
    }
    return first + " " + lower;
  }
  return first;
}

}  // namespace

CoachLm::CoachLm(CoachConfig config, lm::RuleStore rules)
    : config_(std::move(config)),
      rules_(std::move(rules)),
      backbone_(std::make_shared<lm::BackboneModel>(config_.backbone)) {
  // An α = 0 store never reaches the rule-application path (ReviseToText
  // echoes), so there is nothing worth compiling.
  if (!config_.compiled_rules || rules_.empty()) return;
  if (Observability::Enabled()) {
    // Timed through the observability clock, so the deterministic report
    // mode sees a schedule-independent duration.
    Clock* clock = Observability::Default().clock();
    const int64_t start_micros = clock->NowMicros();
    compiled_ = std::make_shared<const lm::CompiledRuleSet>(
        rules_, config_.min_rule_support);
    CountMetric("rules.compiled");
    CountMetric("rules.compile_micros",
                static_cast<uint64_t>(clock->NowMicros() - start_micros));
    SetGaugeMetric("rules.automaton_states",
                   static_cast<int64_t>(
                       compiled_->matcher_automaton().num_states()));
    SetGaugeMetric("rules.patterns",
                   static_cast<int64_t>(compiled_->num_patterns()));
  } else {
    compiled_ = std::make_shared<const lm::CompiledRuleSet>(
        rules_, config_.min_rule_support);
  }
}

std::string CoachLm::ReviseInstruction(const InstructionPair& pair,
                                       Rng* rng) const {
  if (compiled_ != nullptr) return ReviseInstructionCompiled(pair, rng);
  std::string text = pair.instruction;
  const size_t min_support = config_.min_rule_support;
  // Learned word substitutions (spelling repairs the experts taught).
  for (const auto& [from, targets] : rules_.token_subs) {
    if (!strings::Contains(text, from)) continue;
    const std::string to = rules_.BestSubstitution(from, min_support);
    if (!to.empty()) text = strings::ReplaceAll(text, from, to);
  }
  // Learned clause removals (infeasible requirements).
  for (const std::string& phrase :
       lm::RuleStore::PhrasesAbove(rules_.strip_phrases, min_support)) {
    const size_t at = text.find(phrase);
    if (at != std::string::npos) {
      text.erase(at, phrase.size());
      text = strings::CollapseWhitespace(text);
    }
  }
  // Learned filler disambiguation: a phrase replaced with *varying*
  // content across training pairs means "substitute the concrete subject".
  for (const auto& [filler, replacements] : rules_.filler_replacements) {
    if (replacements.size() < 2) continue;
    if (!strings::Contains(text, filler)) continue;
    const std::string subject = GuessSubject(pair);
    if (!subject.empty()) {
      text = strings::ReplaceAll(text, filler, subject);
    }
  }
  if (rules_.capitalize_support >= min_support) {
    text = repair::CapitalizeSentences(text);
  }
  // Learned context enrichment for bare instructions.
  if (strings::CountWords(text) < 12 &&
      rng->NextBool(rules_.context_add_rate)) {
    const std::string scaffold =
        RotatingPhrase(rules_.context_exemplars, min_support, rng);
    if (!scaffold.empty()) text += " " + scaffold;
  }
  return strings::Trim(text);
}

std::string CoachLm::ReviseInstructionCompiled(const InstructionPair& pair,
                                               Rng* rng) const {
  // Mirrors ReviseInstruction rule for rule: same families, same order,
  // same RNG draws — only the "does this rule fire, and where?" question
  // is answered by the shared matcher instead of per-rule string scans.
  const lm::CompiledRuleSet& compiled = *compiled_;
  std::string text = pair.instruction;
  lm::RuleMatcher matcher(compiled, text);
  size_t fired = 0;
  for (const lm::CompiledTokenSub& sub : compiled.token_subs()) {
    if (!matcher.Contains(sub.pattern, text)) continue;
    text = strings::ReplaceAll(text, sub.from, sub.to);
    matcher.NoteReplacement(sub.to);
    ++fired;
  }
  for (const lm::CompiledPhrase& phrase : compiled.strip_phrases()) {
    const size_t at = matcher.FirstBegin(phrase.pattern, text);
    if (at == automaton::kNotFound) continue;
    text.erase(at, phrase.text.size());
    // CollapseWhitespace only removes or unifies whitespace (one
    // fingerprint class), so this stays an erasure for the matcher.
    text = strings::CollapseWhitespace(text);
    matcher.NoteErasure();
    ++fired;
  }
  for (const lm::CompiledPhrase& filler : compiled.fillers()) {
    if (!matcher.Contains(filler.pattern, text)) continue;
    const std::string subject = GuessSubject(pair);
    if (!subject.empty()) {
      text = strings::ReplaceAll(text, filler.text, subject);
      matcher.NoteReplacement(subject);
      ++fired;
    }
  }
  if (compiled.capitalize()) {
    text = repair::CapitalizeSentences(text);
  }
  if (strings::CountWords(text) < 12 &&
      rng->NextBool(compiled.context_add_rate())) {
    const std::string scaffold =
        RotatingFromVector(compiled.context_exemplars(), rng);
    if (!scaffold.empty()) text += " " + scaffold;
  }
  EmitRuleFireMetrics(fired, matcher);
  return strings::Trim(text);
}

std::string CoachLm::ComposeExpansion(const std::string& context,
                                      const std::string& existing,
                                      size_t max_new, Rng* rng) const {
  const auto retrieved =
      backbone_->RetrieveRelevant(context, existing, max_new);
  std::string out;
  // The compiled markers vector is exactly what PhrasesAbove returns for
  // this table, frozen at compile time — same contents, same order.
  std::vector<std::string> markers_scratch;
  const std::vector<std::string>& markers =
      compiled_ != nullptr
          ? compiled_->markers()
          : (markers_scratch = lm::RuleStore::PhrasesAbove(
                 rules_.markers, config_.min_rule_support));
  const ExpansionVerifier verifier(backbone_.get());
  for (const std::string& sentence : retrieved) {
    std::string line = backbone_->ApplyFluencyNoise(sentence, rng);
    if (config_.verify_expansions) {
      const auto verified = verifier.Verify(context, line);
      if (!verified.has_value()) continue;
      line = *verified;
    }
    if (!markers.empty() && rng->NextBool(0.5)) {
      std::string marker = markers[rng->NextBelow(markers.size())];
      // Markers were learned with trailing commas attached ("For example ,").
      marker = strings::ReplaceAll(marker, " ,", ",");
      if (!strings::EndsWith(marker, ",") && !strings::EndsWith(marker, " ")) {
        marker += " ";
      } else if (strings::EndsWith(marker, ",")) {
        marker += " ";
      }
      // Decapitalize the retrieved sentence after a marker.
      if (!line.empty()) {
        line[0] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(line[0])));
      }
      line = marker + line;
      line = repair::CapitalizeSentences(line);
    }
    out += " " + line;
  }
  return out;
}

std::string CoachLm::ComposeRewrite(const InstructionPair& pair,
                                    const std::string& context,
                                    Rng* rng) const {
  // Generation conditions on the task input first: when the instruction
  // carries a prose payload (a passage to work on), the replacement
  // response is grounded in it, in the list layout the experts favour.
  std::string fresh;
  const bool prose_input = strings::CountWords(pair.input) >= 10 &&
                           !strings::Contains(pair.input, "def ") &&
                           !strings::Contains(pair.input, "|");
  if (prose_input) {
    const auto sentences = tokenizer::SplitSentences(pair.input);
    if (sentences.size() > 1) {
      for (const std::string& sentence : sentences) {
        fresh += (fresh.empty() ? "- " : "\n- ") + sentence;
      }
    } else if (!sentences.empty()) {
      fresh = sentences.front();
    }
  }
  fresh += ComposeExpansion(context, fresh, prose_input ? 1 : 3, rng);
  return strings::Trim(fresh);
}

void CoachLm::ApplyResponseRepairs(std::string* text_out) const {
  std::string& text = *text_out;
  const size_t min_support = config_.min_rule_support;
  for (const auto& [from, targets] : rules_.token_subs) {
    if (!strings::Contains(text, from)) continue;
    const std::string to = rules_.BestSubstitution(from, min_support);
    if (!to.empty()) text = strings::ReplaceAll(text, from, to);
  }
  for (const std::string& opener :
       lm::RuleStore::PhrasesAbove(rules_.opener_removals, min_support)) {
    if (strings::StartsWith(text, opener)) {
      text = strings::Trim(text.substr(opener.size()));
      break;
    }
  }
  // Tone alignment: the experts' consistently warm outputs (high learned
  // closing rate) teach the model to drop robotic boilerplate, even when
  // no explicit opener-deletion example made it into C_alpha.
  if (rules_.closing_rate > 0.3) {
    const size_t opener_len = lm::MechanicalOpenerLength(text);
    if (opener_len > 0) {
      text = strings::Trim(text.substr(opener_len));
    }
  }
  for (const std::string& token :
       lm::RuleStore::PhrasesAbove(rules_.strip_tokens, min_support)) {
    if (strings::Contains(text, token)) {
      text = strings::Trim(strings::ReplaceAll(text, token, ""));
    }
  }
  if (rules_.reflow_support >= min_support &&
      !strings::Contains(text, "\n")) {
    if (strings::Contains(text, " - ") || strings::Contains(text, " 2. ")) {
      text = repair::ReflowLists(text);
    }
    text = repair::CollapseSpaces(text);
  }
  if (rules_.doubled_removal_support >= min_support &&
      !strings::Contains(text, "\n")) {
    text = repair::RemoveDoubledWords(text);
  }
  if (rules_.capitalize_support >= min_support) {
    text = repair::CapitalizeSentences(text);
  }
}

void CoachLm::ApplyResponseRepairsCompiled(std::string* text_out) const {
  // Mirrors ApplyResponseRepairs rule for rule; see ReviseInstructionCompiled.
  const lm::CompiledRuleSet& compiled = *compiled_;
  std::string& text = *text_out;
  lm::RuleMatcher matcher(compiled, text);
  size_t fired = 0;
  for (const lm::CompiledTokenSub& sub : compiled.token_subs()) {
    if (!matcher.Contains(sub.pattern, text)) continue;
    text = strings::ReplaceAll(text, sub.from, sub.to);
    matcher.NoteReplacement(sub.to);
    ++fired;
  }
  for (const lm::CompiledPhrase& opener : compiled.openers()) {
    if (matcher.StartsWith(opener.pattern, text)) {
      text = strings::Trim(text.substr(opener.text.size()));
      matcher.NoteErasure();
      ++fired;
      break;
    }
  }
  if (compiled.closing_rate() > 0.3) {
    const size_t opener_len = lm::MechanicalOpenerLength(text);
    if (opener_len > 0) {
      text = strings::Trim(text.substr(opener_len));
      matcher.NoteErasure();
    }
  }
  for (const lm::CompiledPhrase& token : compiled.strip_tokens()) {
    if (matcher.Contains(token.pattern, text)) {
      text = strings::Trim(strings::ReplaceAll(text, token.text, ""));
      matcher.NoteErasure();
      ++fired;
    }
  }
  if (compiled.reflow() && !strings::Contains(text, "\n")) {
    if (strings::Contains(text, " - ") || strings::Contains(text, " 2. ")) {
      text = repair::ReflowLists(text);
    }
    text = repair::CollapseSpaces(text);
  }
  if (compiled.remove_doubled() && !strings::Contains(text, "\n")) {
    text = repair::RemoveDoubledWords(text);
  }
  if (compiled.capitalize()) {
    text = repair::CapitalizeSentences(text);
  }
  EmitRuleFireMetrics(fired, matcher);
}

std::string CoachLm::ReviseResponse(const InstructionPair& pair,
                                    const std::string& new_instruction,
                                    Rng* rng) const {
  const std::string context = new_instruction + "\n" + pair.input;
  std::string text = pair.output;

  // Learned rewrite policy: weakly related (or empty) responses are
  // replaced wholesale with generated content. Relatedness is the
  // backbone's associative agreement — the same feature the trainer used
  // to estimate the threshold.
  const double relatedness =
      backbone_->TopicalAgreement(pair.FullInstruction(), text);
  const bool rewrite =
      rules_.rewrite_overlap_threshold >= 0.0 &&
      (strings::Trim(text).empty() ||
       relatedness < rules_.rewrite_overlap_threshold);
  if (rewrite) {
    const std::string fresh = ComposeRewrite(pair, context, rng);
    if (!fresh.empty()) {
      text = fresh;
    }
  } else if (compiled_ != nullptr) {
    ApplyResponseRepairsCompiled(&text);
  } else {
    ApplyResponseRepairs(&text);
  }

  // Learned expansion: grow thin responses toward the expert target
  // length, using backbone knowledge for content.
  const double target_words = rules_.mean_target_response_words;
  const size_t expansion_budget = static_cast<size_t>(std::clamp(
      std::llround(rules_.mean_appended_sentences), 0LL, 4LL));
  size_t added = 0;
  while (added < expansion_budget &&
         static_cast<double>(strings::CountWords(text)) + 10.0 <
             target_words) {
    const std::string expansion = ComposeExpansion(context, text, 1, rng);
    if (strings::Trim(expansion).empty()) break;
    text += expansion;
    ++added;
  }

  // Learned closing behaviour: add a warm closing (when the experts
  // usually did) unless the response already ends on one.
  const std::string tail =
      text.size() > 120 ? text.substr(text.size() - 120) : text;
  if (!lm::LooksLikeClosing(tail) && rng->NextBool(rules_.closing_rate)) {
    const std::string closing =
        compiled_ != nullptr
            ? RotatingFromVector(compiled_->closings(), rng)
            : RotatingPhrase(rules_.closings, config_.min_rule_support, rng);
    if (!closing.empty() && !strings::Contains(text, closing)) {
      text += " " + closing;
    }
  }
  return strings::Trim(text);
}

std::string CoachLm::ReviseToText(const InstructionPair& pair,
                                  Rng* rng) const {
  if (backbone_->DegeneratesThisCall(rng)) {
    // Degenerate generation: token repetition until the length limit, the
    // classic failure mode the post-processor's regexes catch.
    std::string junk;
    for (int i = 0; i < 24; ++i) junk += "@@ ";
    return junk;
  }
  if (rules_.empty()) {
    // α = 0: the raw backbone echoes the pair, minor noise included — it
    // has not been aligned with the expert revision behaviour.
    InstructionPair echo = pair;
    echo.output = backbone_->ApplyFluencyNoise(echo.output, rng);
    return lm::SerializePair(echo);
  }
  InstructionPair revised = pair;
  revised.instruction = ReviseInstruction(pair, rng);
  revised.output = ReviseResponse(pair, revised.instruction, rng);
  return lm::SerializePair(revised);
}

InstructionPair CoachLm::Revise(const InstructionPair& pair, Rng* rng,
                                RevisionPassStats* stats) const {
  if (stats != nullptr) ++stats->total;
  const std::string raw = ReviseToText(pair, rng);
  // Post-processing (Section III-B1): strip invalid characters and
  // repeated strings, then parse; fall back to the original when the
  // output is not a valid instruction pair.
  std::string cleaned;
  cleaned.reserve(raw.size());
  for (char c : raw) {
    if (static_cast<unsigned char>(c) >= 0x20 || c == '\n' || c == '\t') {
      cleaned += c;
    }
  }
  cleaned = strings::ReplaceAll(cleaned, "@@ ", "");
  cleaned = strings::Trim(cleaned);
  auto parsed = lm::DeserializePair(cleaned);
  if (!parsed.ok() || strings::Trim(parsed->output).empty()) {
    if (stats != nullptr) ++stats->invalid_replaced;
    return pair;
  }
  InstructionPair revised = std::move(parsed).ValueOrDie();
  revised.id = pair.id;
  revised.category = pair.category;
  if (stats != nullptr &&
      (revised.instruction != pair.instruction ||
       revised.input != pair.input || revised.output != pair.output)) {
    ++stats->changed;
  }
  return revised;
}

namespace {

/// One pair's outcome in a fault-tolerant / checkpointed revision pass:
/// the revised pair plus the per-item stat flags, serializable to one
/// JSONL line so completed work survives a crash.
struct RevisedItemRecord {
  InstructionPair pair;
  bool invalid_replaced = false;
  bool leakage_skipped = false;
  bool changed = false;
  bool quarantined = false;
  bool recovered = false;

  enum Flag : int64_t {
    kInvalid = 1,
    kLeakage = 2,
    kChanged = 4,
    kQuarantined = 8,
    kRecovered = 16,
  };

  std::string ToLine() const {
    json::Object o;
    o["pair"] = pair.ToJson();
    int64_t flags = 0;
    if (invalid_replaced) flags |= kInvalid;
    if (leakage_skipped) flags |= kLeakage;
    if (changed) flags |= kChanged;
    if (quarantined) flags |= kQuarantined;
    if (recovered) flags |= kRecovered;
    o["flags"] = json::Value(flags);
    return json::Value(std::move(o)).Dump();
  }

  static Result<RevisedItemRecord> FromLine(const std::string& line) {
    COACHLM_ASSIGN_OR_RETURN(json::Value value, json::Parse(line));
    RevisedItemRecord record;
    COACHLM_ASSIGN_OR_RETURN(record.pair,
                             InstructionPair::FromJson(value.At("pair")));
    COACHLM_ASSIGN_OR_RETURN(double flags, value.GetNumber("flags"));
    const auto bits = static_cast<int64_t>(flags);
    record.invalid_replaced = (bits & kInvalid) != 0;
    record.leakage_skipped = (bits & kLeakage) != 0;
    record.changed = (bits & kChanged) != 0;
    record.quarantined = (bits & kQuarantined) != 0;
    record.recovered = (bits & kRecovered) != 0;
    return record;
  }
};

/// Emits the revision pass's folded totals plus the response-length
/// distribution. Runs after the serial fold on the driver thread, so one
/// bulk update per counter — nothing touches the parallel hot loop.
void EmitReviseMetrics(const RevisionPassStats& totals,
                       const std::vector<InstructionPair>& revised) {
  if (!Observability::Enabled()) return;
  CountMetric("revise.items_in", totals.total);
  CountMetric("revise.items_changed", totals.changed);
  CountMetric("revise.items_invalid_replaced", totals.invalid_replaced);
  CountMetric("revise.items_leakage_skipped", totals.leakage_skipped);
  CountMetric("revise.items_quarantined", totals.quarantined);
  CountMetric("revise.items_recovered", totals.recovered);
  CountMetric("revise.items_resumed", totals.resumed);
  if (MetricHistogram* chars =
          MetricsRegistry::Default().FindHistogram("revise.response_chars")) {
    for (const InstructionPair& pair : revised) {
      chars->Observe(static_cast<int64_t>(pair.output.size()));
    }
  }
}

}  // namespace

InstructionDataset CoachLm::ReviseDataset(
    const InstructionDataset& dataset,
    const std::unordered_set<std::string>& training_instructions,
    RevisionPassStats* stats, const ExecutionContext& exec,
    PipelineRuntime* runtime, StageCheckpointer* checkpoint) const {
  const StageSpan span("revise");
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  const bool checkpointed = checkpoint != nullptr && checkpoint->enabled();

  if (!runtime->governed() && !checkpointed) {
    // Hot path: no injection, no retry envelope, no journaling — exactly
    // the schedule-independent pass the determinism suite pins down.
    std::vector<InstructionPair> revised(dataset.size());
    std::vector<RevisionPassStats> shard_stats(dataset.size());
    exec.ParallelFor(dataset.size(), [&](size_t i) {
      const InstructionPair& pair = dataset[i];
      RevisionPassStats& s = shard_stats[i];
      if (training_instructions.count(lm::SerializePair(pair)) > 0) {
        // Leakage guard: instructions seen in coach training are adopted
        // unchanged in the revised dataset.
        ++s.total;
        ++s.leakage_skipped;
        revised[i] = pair;
        return;
      }
      // Deterministic per-pair stream: thread scheduling cannot change
      // results.
      Rng rng = DeriveRng(config_.seed, pair.id);
      revised[i] = Revise(pair, &rng, &s);
    });
    // Serial fold in dataset order (the counters are commutative, but a
    // fixed order keeps the path schedule-independent by construction).
    RevisionPassStats totals;
    for (const RevisionPassStats& s : shard_stats) {
      totals.total += s.total;
      totals.invalid_replaced += s.invalid_replaced;
      totals.leakage_skipped += s.leakage_skipped;
      totals.changed += s.changed;
    }
    EmitReviseMetrics(totals, revised);
    if (stats != nullptr) {
      stats->total += totals.total;
      stats->invalid_replaced += totals.invalid_replaced;
      stats->leakage_skipped += totals.leakage_skipped;
      stats->changed += totals.changed;
    }
    return InstructionDataset(std::move(revised));
  }

  // Fault-tolerant / checkpointed path. Each item resolves to a record;
  // revision runs under the runtime envelope so a permanently-failing pair
  // degrades to its original text instead of aborting the pass.
  CancelToken* cancel = runtime->cancel_token();
  // In the non-checkpointed branch this marks which items the token cut
  // off, so they can be quarantined once, in index order, after the loop.
  std::vector<uint8_t>* cancel_hit = nullptr;
  auto revise_one = [&](size_t i) {
    RevisedItemRecord record;
    const InstructionPair& pair = dataset[i];
    if (training_instructions.count(lm::SerializePair(pair)) > 0) {
      record.pair = pair;
      record.leakage_skipped = true;
      return record;
    }
    InstructionPair out;
    RevisionPassStats s;
    int attempts = 0;
    const Status status = runtime->Run(
        FaultSite::kRevise, pair.id,
        [&] {
          // The attempt re-derives the pair's stream from scratch, so a
          // retried item produces exactly the bytes a fault-free run
          // would.
          RevisionPassStats attempt_stats;
          Rng rng = DeriveRng(config_.seed, pair.id);
          out = Revise(pair, &rng, &attempt_stats);
          s = attempt_stats;
          return Status::OK();
        },
        &attempts);
    if (!status.ok()) {
      record.pair = pair;
      record.quarantined = true;
      if (cancel_hit != nullptr && cancel != nullptr && cancel->cancelled()) {
        (*cancel_hit)[i] = 1;
      }
      return record;
    }
    record.pair = std::move(out);
    record.invalid_replaced = s.invalid_replaced > 0;
    record.changed = s.changed > 0;
    record.recovered = attempts > 1;
    return record;
  };

  std::vector<RevisedItemRecord> records(dataset.size());
  size_t resumed = 0;
  if (checkpointed) {
    Status commit_error = Status::OK();
    GovernedLoopOptions options;
    options.cancel = cancel;
    options.watchdog = runtime->watchdog();
    options.commit_error = &commit_error;
    // Overlap chunk compute with journal IO; the checkpointer's admission
    // gate bounds buffered chunks, so memory stays O(chunk), not O(corpus).
    options.async_commits = true;
    const GovernedLoopResult loop = RunGovernedCheckpointedLoop(
        checkpoint, exec, &records, revise_one,
        [](const RevisedItemRecord& record) { return record.ToLine(); },
        [](const std::string& line, RevisedItemRecord* record) {
          Result<RevisedItemRecord> decoded = RevisedItemRecord::FromLine(line);
          if (!decoded.ok()) return false;
          *record = std::move(decoded).ValueOrDie();
          return true;
        },
        options);
    resumed = loop.restored;
    if (!commit_error.ok()) {
      // A failing journal must not fail the pass; record the loss of
      // crash-safety with the progress cursor as provenance.
      runtime->QuarantineRecordFailure(FaultSite::kIo, dataset.size(),
                                       commit_error);
    }
    if (loop.cancelled) {
      // The run was cut off: the checkpoint covers exactly
      // [0, loop.completed), so pass the unprocessed originals through and
      // quarantine them with the cancellation cause — a later --resume
      // picks them up and lands byte-identical to an uninterrupted run.
      const Status cause = cancel->status();
      for (size_t i = loop.completed; i < dataset.size(); ++i) {
        records[i] = RevisedItemRecord();
        records[i].pair = dataset[i];
        records[i].quarantined = true;
        runtime->QuarantineRecordFailure(FaultSite::kRevise, dataset[i].id,
                                         cause, 0);
      }
    }
  } else {
    std::vector<uint8_t> hit(dataset.size(), 0);
    cancel_hit = &hit;
    exec.ParallelFor(dataset.size(), [&](size_t i) {
      records[i] = revise_one(i);
      if (StallWatchdog* wd = runtime->watchdog()) wd->Tick();
    });
    cancel_hit = nullptr;
    if (cancel != nullptr && cancel->cancelled()) {
      const Status cause = cancel->status();
      for (size_t i = 0; i < hit.size(); ++i) {
        if (hit[i] != 0) {
          runtime->QuarantineRecordFailure(FaultSite::kRevise, dataset[i].id,
                                           cause, 0);
        }
      }
    }
  }

  std::vector<InstructionPair> revised;
  revised.reserve(records.size());
  RevisionPassStats totals;
  totals.resumed = resumed;
  for (RevisedItemRecord& record : records) {
    ++totals.total;
    totals.invalid_replaced += record.invalid_replaced ? 1 : 0;
    totals.leakage_skipped += record.leakage_skipped ? 1 : 0;
    totals.changed += record.changed ? 1 : 0;
    totals.quarantined += record.quarantined ? 1 : 0;
    totals.recovered += record.recovered ? 1 : 0;
    revised.push_back(std::move(record.pair));
  }
  EmitReviseMetrics(totals, revised);
  if (stats != nullptr) {
    stats->total += totals.total;
    stats->invalid_replaced += totals.invalid_replaced;
    stats->leakage_skipped += totals.leakage_skipped;
    stats->changed += totals.changed;
    stats->quarantined += totals.quarantined;
    stats->recovered += totals.recovered;
    stats->resumed += totals.resumed;
  }
  return InstructionDataset(std::move(revised));
}

InstructionDataset CoachLm::ReviseDataset(
    const InstructionDataset& dataset,
    const std::unordered_set<std::string>& training_instructions,
    RevisionPassStats* stats, size_t num_threads) const {
  if (num_threads == 0) {
    return ReviseDataset(dataset, training_instructions, stats,
                         ExecutionContext::Default());
  }
  const ExecutionContext exec(num_threads);
  return ReviseDataset(dataset, training_instructions, stats, exec);
}

Result<RevisionPassStats> CoachLm::ReviseRecords(
    RecordReader* reader, RecordWriter* writer,
    const std::unordered_set<std::string>& training_instructions,
    const ExecutionContext& exec, PipelineRuntime* runtime,
    StageCheckpointer* checkpoint) const {
  // The revision algorithm parallelizes over random-access pairs, so the
  // stream materializes once; per-pair id-derived RNG keeps the output
  // independent of how the stream was sharded.
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset,
                           ReadAllRecords(reader));
  RevisionPassStats stats;
  const InstructionDataset revised = ReviseDataset(
      dataset, training_instructions, &stats, exec, runtime, checkpoint);
  COACHLM_RETURN_NOT_OK(WriteAllRecords(writer, revised));
  return stats;
}

Status CoachLm::SaveCheckpoint(const std::string& path) const {
  return json::WriteFile(path, rules_.ToJson().DumpPretty());
}

Result<CoachLm> CoachLm::LoadCheckpoint(const std::string& path,
                                        CoachConfig config) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, json::ReadFile(path));
  COACHLM_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  COACHLM_ASSIGN_OR_RETURN(lm::RuleStore rules, lm::RuleStore::FromJson(doc));
  return CoachLm(std::move(config), std::move(rules));
}

}  // namespace coach
}  // namespace coachlm
