#include "coach/trainer.h"

#include <cmath>

#include "coach/alpha_selection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "lm/pair_text.h"
#include "lm/rule_extractor.h"

namespace coachlm {
namespace coach {

InstructionDataset CoachTrainer::BuildCoachDataset(
    const RevisionDataset& revisions) const {
  CountMetric("train.revision_pairs", revisions.size());
  const RevisionDataset selected = SelectTopAlpha(revisions, config_.alpha);
  InstructionDataset dataset;
  for (const RevisionRecord& record : selected) {
    dataset.Add(lm::MakeCoachSample(record.original, record.revised));
  }
  return dataset;
}

CoachLm CoachTrainer::Train(const RevisionDataset& revisions) const {
  return TrainOnCoachDataset(BuildCoachDataset(revisions));
}

CoachLm CoachTrainer::TrainOnCoachDataset(
    const InstructionDataset& coach_dataset) const {
  CountMetric("train.coach_samples", coach_dataset.size());
  SetGaugeMetric("train.alpha_x1000",
                 static_cast<int64_t>(std::llround(config_.alpha * 1000.0)));
  // The rewrite-policy feature is computed with the backbone's associative
  // memory so training and inference see the same signal.
  lm::BackboneModel backbone(config_.backbone);
  lm::RuleExtractor extractor([&backbone](const InstructionPair& pair) {
    return backbone.TopicalAgreement(pair.FullInstruction(), pair.output);
  });
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Rule estimation is exact after one pass; subsequent epochs are
    // no-ops kept for configuration fidelity with the paper's setup.
    if (epoch > 0) break;
    for (const InstructionPair& sample : coach_dataset) {
      // The learner sees the Fig. 3 text only: recover (x, x_r) from the
      // serialized sample before aligning them.
      auto original = lm::DeserializePair(sample.input);
      auto revised = lm::DeserializePair(sample.output);
      if (!original.ok() || !revised.ok()) {
        COACHLM_LOG_WARN << "skipping malformed coach sample id="
                         << sample.id;
        continue;
      }
      RevisionRecord record;
      record.original = std::move(original).ValueOrDie();
      record.revised = std::move(revised).ValueOrDie();
      record.RecomputeDerived();
      extractor.Consume(record);
    }
  }
  COACHLM_LOG_DEBUG << "coach tuning consumed " << extractor.consumed()
                    << " samples (alpha=" << config_.alpha << ")";
  return CoachLm(config_, extractor.Finalize());
}

}  // namespace coach
}  // namespace coachlm
