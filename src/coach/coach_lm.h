#ifndef COACHLM_COACH_COACH_LM_H_
#define COACHLM_COACH_COACH_LM_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "coach/coach_config.h"
#include "common/checkpoint.h"
#include "common/execution.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/runtime.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "lm/backbone.h"
#include "lm/rule_compile.h"
#include "lm/rule_store.h"

namespace coachlm {
namespace coach {

/// \brief Statistics of a dataset-revision pass (Section III-B1).
struct RevisionPassStats {
  size_t total = 0;
  /// Outputs that were not valid instruction pairs and were replaced with
  /// the original (the paper: ~1.3%).
  size_t invalid_replaced = 0;
  /// Pairs skipped because their instruction appeared in CoachLM training
  /// (the leakage guard; the paper: ~1.3%).
  size_t leakage_skipped = 0;
  /// Pairs whose text actually changed.
  size_t changed = 0;
  /// Pairs whose revision failed permanently (retries exhausted): adopted
  /// unchanged in the output and routed to the runtime's quarantine log.
  size_t quarantined = 0;
  /// Pairs that needed more than one attempt but recovered via retry.
  size_t recovered = 0;
  /// Pairs restored from a checkpoint instead of being recomputed.
  size_t resumed = 0;
};

/// \brief The trained coach language model θ_c.
///
/// Holds the backbone (pre-trained knowledge + fluency) and the rule store
/// learned by coach instruction tuning. Inference takes an instruction
/// pair, emits a *serialized revised pair as raw model text* (exactly like
/// the real generative model), and the post-processing path of
/// Section III-B1 parses/validates it, falling back to the original on
/// invalid output.
class CoachLm {
 public:
  CoachLm(CoachConfig config, lm::RuleStore rules);

  /// Raw generative step: the model's text output for the Fig. 3 revision
  /// prompt applied to \p pair. May be degenerate (invalid) — callers are
  /// expected to post-process.
  std::string ReviseToText(const InstructionPair& pair, Rng* rng) const;

  /// Revision with post-processing: parses/validates the raw output and
  /// falls back to \p pair when invalid. \p stats (optional) accumulates
  /// pass statistics.
  InstructionPair Revise(const InstructionPair& pair, Rng* rng,
                         RevisionPassStats* stats = nullptr) const;

  /// Revises a whole dataset over \p exec (deterministically: each pair's
  /// randomness derives from the config seed and the pair id, so results
  /// are byte-identical at any thread count). Pairs whose serialized form
  /// (lm::SerializePair) is in \p training_instructions are adopted
  /// unchanged (the data-leakage guard).
  ///
  /// \p runtime (nullptr = PipelineRuntime::Default()) wraps each pair's
  /// inference in fault injection + retry at FaultSite::kRevise: pairs
  /// that fail permanently fall back to their original text, count as
  /// `quarantined`, and land in the runtime's quarantine log — the stage
  /// never aborts. Under a purely transient fault plan the output is
  /// byte-identical to the fault-free run.
  ///
  /// \p checkpoint (optional) makes the pass crash-safe: every
  /// checkpoint-interval pairs the revised prefix is journaled, and a
  /// rerun that calls StageCheckpointer::Resume() first recomputes only
  /// the remainder, to the same bytes.
  InstructionDataset ReviseDataset(
      const InstructionDataset& dataset,
      const std::unordered_set<std::string>& training_instructions,
      RevisionPassStats* stats, const ExecutionContext& exec,
      PipelineRuntime* runtime = nullptr,
      StageCheckpointer* checkpoint = nullptr) const;

  /// Record-stream form of ReviseDataset: drains \p reader, revises, and
  /// streams the revised pairs into \p writer (without closing it — the
  /// caller owns the artifact lifecycle, so shards can share one writer).
  /// Because every pair's randomness derives from the config seed and the
  /// *pair id*, never its position, revising a corpus shard by shard and
  /// concatenating in shard order is byte-identical to revising it whole.
  [[nodiscard]] Result<RevisionPassStats> ReviseRecords(
      RecordReader* reader, RecordWriter* writer,
      const std::unordered_set<std::string>& training_instructions,
      const ExecutionContext& exec, PipelineRuntime* runtime = nullptr,
      StageCheckpointer* checkpoint = nullptr) const;

  /// Legacy thread-count entry point: \p num_threads = 0 uses
  /// ExecutionContext::Default(); otherwise a dedicated context of that
  /// width is constructed for the call.
  InstructionDataset ReviseDataset(
      const InstructionDataset& dataset,
      const std::unordered_set<std::string>& training_instructions,
      RevisionPassStats* stats = nullptr, size_t num_threads = 0) const;

  /// Saves the learned rules to \p path (the "checkpoint").
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a CoachLm from a checkpoint written by SaveCheckpoint().
  static Result<CoachLm> LoadCheckpoint(const std::string& path,
                                        CoachConfig config);

  const lm::RuleStore& rules() const { return rules_; }
  const lm::BackboneModel& backbone() const { return *backbone_; }
  const CoachConfig& config() const { return config_; }

  /// The compiled rule artifact (docs/RULE_ENGINE.md), built in the
  /// constructor when config.compiled_rules is set; nullptr on the scan
  /// engine. Immutable and owned via shared_ptr, so a hot reload that
  /// builds a fresh CoachLm swaps rules and matcher tables as one
  /// atomically published snapshot.
  std::shared_ptr<const lm::CompiledRuleSet> compiled_rules() const {
    return compiled_;
  }

 private:
  std::string ReviseInstruction(const InstructionPair& pair, Rng* rng) const;
  std::string ReviseResponse(const InstructionPair& pair,
                             const std::string& new_instruction,
                             Rng* rng) const;
  std::string ReviseInstructionCompiled(const InstructionPair& pair,
                                        Rng* rng) const;
  /// The wholesale-rewrite branch of response revision (shared by both
  /// engines — it consults no surface rules). Returns the replacement
  /// text, empty when generation produced nothing.
  std::string ComposeRewrite(const InstructionPair& pair,
                             const std::string& context, Rng* rng) const;
  /// The surface-repair block of response revision: scan engine (per-rule
  /// table probing) and compiled engine (shared automaton scan) variants.
  /// Both must edit \p text to the same bytes — the equivalence suite
  /// pins this down.
  void ApplyResponseRepairs(std::string* text) const;
  void ApplyResponseRepairsCompiled(std::string* text) const;
  std::string ComposeExpansion(const std::string& context,
                               const std::string& existing, size_t max_new,
                               Rng* rng) const;

  CoachConfig config_;
  lm::RuleStore rules_;
  std::shared_ptr<lm::BackboneModel> backbone_;
  std::shared_ptr<const lm::CompiledRuleSet> compiled_;
};

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_COACH_LM_H_
