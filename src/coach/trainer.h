#ifndef COACHLM_COACH_TRAINER_H_
#define COACHLM_COACH_TRAINER_H_

#include "coach/coach_config.h"
#include "coach/coach_lm.h"
#include "data/revision_record.h"

namespace coachlm {
namespace coach {

/// \brief Coach instruction tuning (Section II-F1, Eq. 1).
///
/// Training builds the coach-tuning dataset C_α: each expert revision
/// record (x, x_r) is serialized into a Fig.-3 instruction pair x_c, the
/// α-selection keeps the top fraction by edit distance, and the rule
/// learner consumes the *text* of the selected samples — parsing x and x_r
/// back out of x_c exactly as the generative model would see them, so the
/// learner provably has no access to oracle metadata.
class CoachTrainer {
 public:
  explicit CoachTrainer(CoachConfig config) : config_(std::move(config)) {}

  /// Trains a CoachLm from the expert revision dataset R.
  CoachLm Train(const RevisionDataset& revisions) const;

  /// Trains directly from a pre-built coach-tuning dataset (the output of
  /// BuildCoachDataset). Callers that also need the serialized samples —
  /// e.g. the pipeline's leakage guard, which reads each original back out
  /// of sample.input — build C_α once and reuse it here instead of paying
  /// for α-selection and serialization twice.
  CoachLm TrainOnCoachDataset(const InstructionDataset& coach_dataset) const;

  /// The serialized coach-tuning dataset C_α (for inspection / export).
  InstructionDataset BuildCoachDataset(const RevisionDataset& revisions) const;

  const CoachConfig& config() const { return config_; }

 private:
  CoachConfig config_;
};

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_TRAINER_H_
