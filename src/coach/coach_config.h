#ifndef COACHLM_COACH_COACH_CONFIG_H_
#define COACHLM_COACH_COACH_CONFIG_H_

#include <cstdint>

#include "lm/backbone.h"

namespace coachlm {
namespace coach {

/// \brief Hyper-parameters of coach instruction tuning (Section III-A3).
struct CoachConfig {
  /// Human input ratio α (Section II-F2): fraction of R, ranked by edit
  /// distance, used for training. 0 means the raw backbone is used.
  double alpha = 0.3;
  /// Backbone model profile; the main experiment uses ChatGLM2 (6B).
  lm::BackboneProfile backbone = lm::ChatGlm26B();
  /// Training epochs (the paper uses 7). Rule estimation is exact, so
  /// epochs are recorded for fidelity but do not change the estimate.
  int epochs = 7;
  /// Learning rate of the paper's LoRA fine-tune (2e-4); recorded only.
  double learning_rate = 2e-4;
  /// Minimum support before a learned rule fires at inference.
  size_t min_rule_support = 2;
  /// Seed for inference-time sampling (expansion choice, noise).
  uint64_t seed = 23;
  /// Future-work extension (Section VI): verify generated expansions with
  /// an RL-style backbone self-check before appending them (grounding +
  /// fluency self-consistency; see coach/verifier.h). Off by default to
  /// match the published system.
  bool verify_expansions = false;
  /// Apply rules through the compiled matcher tables (docs/RULE_ENGINE.md)
  /// instead of per-rule table probing. Output is byte-identical either
  /// way — the equivalence suite pins that down — so this exists for A/B
  /// benchmarking and as an escape hatch (`--rule-engine scan`).
  bool compiled_rules = true;
};

}  // namespace coach
}  // namespace coachlm

#endif  // COACHLM_COACH_COACH_CONFIG_H_
