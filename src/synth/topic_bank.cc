#include "synth/topic_bank.h"

#include <cctype>

namespace coachlm {
namespace synth {

const std::vector<Topic>& Topics() {
  static const std::vector<Topic> kTopics = {
      {"photosynthesis", "science",
       "Photosynthesis converts carbon dioxide and water into glucose and "
       "oxygen using light energy.",
       "Photosynthesis converts oxygen and glucose into carbon dioxide and "
       "water using light energy.",
       {"The light-dependent reactions occur in the thylakoid membranes of "
        "the chloroplast.",
        "Chlorophyll absorbs mostly red and blue light, which is why leaves "
        "appear green.",
        "The Calvin cycle fixes carbon dioxide into sugars during the "
        "light-independent stage.",
        "Plants release the oxygen we breathe as a byproduct of this "
        "process."}},
      {"the water cycle", "science",
       "The water cycle moves water through evaporation, condensation, and "
       "precipitation.",
       "The water cycle moves water through melting, boiling, and freezing "
       "only.",
       {"Solar energy drives evaporation from oceans, lakes, and rivers.",
        "Water vapor condenses into clouds as rising air cools.",
        "Precipitation returns water to the surface as rain, snow, or hail.",
        "Groundwater slowly feeds rivers and aquifers between rainfalls."}},
      {"gravity", "science",
       "Gravity is the attractive force between masses, and on Earth it "
       "accelerates objects at about 9.8 meters per second squared.",
       "Gravity is a repulsive force between masses, and on Earth it "
       "accelerates objects at about 98 meters per second squared.",
       {"Isaac Newton described gravitation as a universal force between "
        "any two masses.",
        "Einstein's general relativity models gravity as curvature of "
        "spacetime.",
        "The Moon's gravity causes the ocean tides on Earth.",
        "Objects in orbit are in continuous free fall around the body they "
        "circle."}},
      {"the solar system", "science",
       "The solar system has eight planets orbiting the Sun.",
       "The solar system has eleven planets orbiting the Sun.",
       {"Jupiter is the largest planet, with a mass greater than all other "
        "planets combined.",
        "Mercury completes an orbit of the Sun in only 88 Earth days.",
        "The asteroid belt lies between the orbits of Mars and Jupiter.",
        "Neptune was located mathematically before it was observed through "
        "a telescope."}},
      {"dna", "science",
       "DNA stores genetic information in sequences of four bases: adenine, "
       "thymine, guanine, and cytosine.",
       "DNA stores genetic information in sequences of four bases: adenine, "
       "uracil, guanine, and cytosine.",
       {"The double helix structure was described by Watson and Crick in "
        "1953.",
        "Genes are stretches of DNA that encode proteins.",
        "During replication each strand serves as a template for a new "
        "complementary strand.",
        "Mutations are changes in the base sequence that can alter protein "
        "function."}},
      {"vaccines", "science",
       "Vaccines train the immune system to recognize a pathogen without "
       "causing the disease.",
       "Vaccines cure diseases after infection by directly killing the "
       "pathogen.",
       {"Edward Jenner pioneered vaccination against smallpox in 1796.",
        "Herd immunity protects people who cannot be vaccinated themselves.",
        "Modern mRNA vaccines deliver instructions for cells to produce a "
        "harmless antigen.",
        "Booster doses refresh the immune memory as antibody levels "
        "decline."}},
      {"climate change", "science",
       "Rising greenhouse gas concentrations are warming the planet's "
       "average surface temperature.",
       "Rising greenhouse gas concentrations are cooling the planet's "
       "average surface temperature.",
       {"Carbon dioxide from burning fossil fuels is the largest human "
        "contribution.",
        "Warming oceans expand and, together with melting ice, raise sea "
        "levels.",
        "Extreme weather events become more frequent as the climate "
        "warms.",
        "Renewable energy and efficiency are the main levers for reducing "
        "emissions."}},
      {"the roman empire", "history",
       "The Western Roman Empire fell in 476 CE.",
       "The Western Roman Empire fell in 1066 CE.",
       {"At its height the empire stretched from Britain to Mesopotamia.",
        "Roman law and engineering still influence modern institutions and "
        "infrastructure.",
        "Latin, the language of Rome, is the ancestor of the Romance "
        "languages.",
        "The empire split into western and eastern halves in 285 CE under "
        "Diocletian."}},
      {"the renaissance", "history",
       "The Renaissance was a cultural revival of art and learning that "
       "began in 14th-century Italy.",
       "The Renaissance was a cultural revival of art and learning that "
       "began in 18th-century Russia.",
       {"Florence's wealthy patrons, such as the Medici, funded artists and "
        "scholars.",
        "Leonardo da Vinci and Michelangelo exemplified the era's ideal of "
        "the universal genius.",
        "The printing press spread Renaissance ideas rapidly across "
        "Europe.",
        "Humanism placed renewed emphasis on classical Greek and Roman "
        "texts."}},
      {"the industrial revolution", "history",
       "The Industrial Revolution began in Britain in the late 18th "
       "century.",
       "The Industrial Revolution began in Japan in the early 16th "
       "century.",
       {"Steam power transformed manufacturing, mining, and transport.",
        "Factory towns grew quickly, changing where and how people lived.",
        "Railways cut travel times and knit national markets together.",
        "Mechanized textile production was the leading early industry."}},
      {"ancient egypt", "history",
       "The Great Pyramid of Giza was built around 2560 BCE as a tomb for "
       "the pharaoh Khufu.",
       "The Great Pyramid of Giza was built around 560 CE as a temple for "
       "the pharaoh Tutankhamun.",
       {"The Nile's annual floods made Egyptian agriculture possible.",
        "Hieroglyphic writing was deciphered using the Rosetta Stone.",
        "Pharaohs were considered divine intermediaries between gods and "
        "people.",
        "Mummification reflected beliefs about the afterlife."}},
      {"world war ii", "history",
       "World War II ended in 1945 with the surrender of Germany and "
       "Japan.",
       "World War II ended in 1952 with the surrender of Germany and "
       "Japan.",
       {"The war involved more than 30 countries across every inhabited "
        "continent.",
        "The D-Day landings in Normandy opened a western front in 1944.",
        "The United Nations was founded in the war's aftermath to prevent "
        "future conflicts.",
        "Wartime research accelerated technologies from radar to jet "
        "engines."}},
      {"the printing press", "history",
       "Johannes Gutenberg introduced movable-type printing to Europe "
       "around 1440.",
       "Johannes Gutenberg introduced movable-type printing to Europe "
       "around 1740.",
       {"Printed books became dramatically cheaper than hand-copied "
        "manuscripts.",
        "Literacy expanded as printed material reached ordinary "
        "households.",
        "Scientific results could be reproduced and checked across "
        "distances.",
        "Pamphlets and newspapers reshaped politics and public opinion."}},
      {"machine learning", "technology",
       "Machine learning systems improve at tasks by learning patterns "
       "from data rather than following hand-written rules.",
       "Machine learning systems improve at tasks by following hand-written "
       "rules rather than learning patterns from data.",
       {"Supervised learning fits a model to labeled input-output "
        "examples.",
        "Overfitting happens when a model memorizes noise instead of "
        "generalizing.",
        "Neural networks stack layers of simple units to learn complex "
        "functions.",
        "Training data quality strongly influences a model's behaviour."}},
      {"the internet", "technology",
       "The Internet is a global network of networks communicating through "
       "the TCP/IP protocol suite.",
       "The Internet is a single central computer that all devices connect "
       "to directly.",
       {"Packet switching lets many conversations share the same links.",
        "The ARPANET of 1969 is the Internet's direct ancestor.",
        "DNS translates human-readable names into numeric addresses.",
        "The web, email, and streaming are applications built on top of "
        "the Internet."}},
      {"renewable energy", "technology",
       "Solar and wind power generate electricity without burning fossil "
       "fuels.",
       "Solar and wind power generate electricity by burning refined "
       "fossil fuels.",
       {"Photovoltaic cells convert sunlight directly into electric "
        "current.",
        "Wind turbines extract kinetic energy from moving air.",
        "Battery storage smooths the variability of renewable sources.",
        "The cost of solar panels has fallen by roughly 90% since 2010."}},
      {"electric cars", "technology",
       "Electric cars are propelled by battery-powered motors instead of "
       "internal combustion engines.",
       "Electric cars are propelled by small internal combustion engines "
       "that charge their batteries while driving.",
       {"Regenerative braking recovers energy that friction brakes would "
        "waste as heat.",
        "Charging networks are expanding along major highway corridors.",
        "Electric motors deliver full torque instantly from a standstill.",
        "Battery costs dominate the price difference with petrol cars."}},
      {"cybersecurity", "technology",
       "Strong unique passwords and two-factor authentication are basic "
       "defenses against account takeover.",
       "Reusing one strong password everywhere is the recommended defense "
       "against account takeover.",
       {"Phishing lures users into revealing credentials on fake sites.",
        "Software updates patch vulnerabilities attackers exploit.",
        "Encryption protects data both in transit and at rest.",
        "Backups limit the damage ransomware can cause."}},
      {"cloud computing", "technology",
       "Cloud computing rents on-demand computing resources over the "
       "network instead of owning servers.",
       "Cloud computing requires every company to buy and host its own "
       "physical servers.",
       {"Elastic scaling adds capacity during demand spikes and releases "
        "it afterwards.",
        "Data centers achieve efficiency through massive shared "
        "infrastructure.",
        "Managed services shift maintenance work to the provider.",
        "Pay-as-you-go pricing converts capital costs into operating "
        "costs."}},
      {"healthy eating", "daily life",
       "A balanced diet combines vegetables, fruits, whole grains, and "
       "lean protein in sensible portions.",
       "A balanced diet consists mostly of refined sugar with occasional "
       "vegetables.",
       {"Fiber from whole grains supports digestion and steady energy.",
        "Cooking at home gives control over salt, sugar, and fat.",
        "Hydration matters: water is the best everyday drink.",
        "Highly processed foods tend to pack calories without "
        "nutrients."}},
      {"regular exercise", "daily life",
       "Regular moderate exercise strengthens the heart, muscles, and "
       "mood.",
       "Regular moderate exercise weakens the heart and should be avoided "
       "by healthy adults.",
       {"Guidelines suggest about 150 minutes of moderate activity per "
        "week.",
        "Strength training twice a week preserves muscle and bone "
        "density.",
        "Walking, cycling, and swimming are accessible low-impact "
        "options.",
        "Consistency beats intensity for long-term health benefits."}},
      {"time management", "daily life",
       "Effective time management prioritizes important tasks and limits "
       "distractions.",
       "Effective time management means doing every task the moment it is "
       "requested.",
       {"Breaking large projects into small steps reduces "
        "procrastination.",
        "Time-blocking reserves focused periods for deep work.",
        "Reviewing the plan each morning keeps priorities visible.",
        "Saying no to low-value requests protects the schedule."}},
      {"public speaking", "daily life",
       "Good public speaking rests on preparation, clear structure, and "
       "practice.",
       "Good public speaking rests on improvising everything without "
       "preparation.",
       {"Opening with a story or question draws the audience in.",
        "Pauses give listeners time to absorb key points.",
        "Rehearsing aloud exposes awkward phrasing before the real talk.",
        "Eye contact builds trust with the audience."}},
      {"saving money", "business",
       "Paying yourself first by saving a fixed share of income builds "
       "wealth steadily.",
       "Spending first and saving whatever remains builds wealth "
       "fastest.",
       {"An emergency fund of three to six months of expenses cushions "
        "shocks.",
        "Automatic transfers remove the temptation to skip saving.",
        "Compound interest rewards money saved early.",
        "Tracking expenses reveals easy places to cut."}},
      {"remote work", "business",
       "Remote work trades commuting time for flexibility but demands "
       "deliberate communication.",
       "Remote work eliminates the need for any communication with "
       "colleagues.",
       {"Written updates keep distributed teammates aligned.",
        "A dedicated workspace helps separate work from home life.",
        "Overlapping core hours make real-time collaboration possible.",
        "Regular video calls preserve team cohesion."}},
      {"small business marketing", "business",
       "Small businesses grow by understanding their customers and "
       "focusing marketing on the channels those customers use.",
       "Small businesses grow by advertising identically on every channel "
       "regardless of their customers.",
       {"Word-of-mouth referrals convert better than cold outreach.",
        "A simple website with clear contact details builds "
        "credibility.",
        "Email newsletters keep past customers coming back.",
        "Local partnerships expand reach at low cost."}},
      {"customer service", "business",
       "Great customer service listens first, resolves the issue, and "
       "follows up.",
       "Great customer service deflects complaints until customers stop "
       "asking.",
       {"Acknowledging the customer's frustration defuses tension.",
        "Empowered front-line staff resolve issues faster.",
        "Follow-up messages confirm the problem stayed fixed.",
        "Feedback loops turn complaints into product improvements."}},
      {"classical music", "arts",
       "The symphony orchestra combines strings, woodwinds, brass, and "
       "percussion.",
       "The symphony orchestra consists only of string instruments.",
       {"Beethoven bridged the Classical and Romantic eras.",
        "A concerto features a solo instrument in dialogue with the "
        "orchestra.",
        "Tempo and dynamics markings guide interpretation.",
        "Mozart wrote more than 600 works in his short life."}},
      {"impressionist painting", "arts",
       "Impressionist painters captured fleeting light with loose, visible "
       "brushstrokes.",
       "Impressionist painters hid every brushstroke to imitate "
       "photographs.",
       {"Claude Monet's 'Impression, Sunrise' gave the movement its name.",
        "Painting outdoors let artists observe natural light directly.",
        "The movement faced ridicule before reshaping modern art.",
        "Complementary colors placed side by side create vibrancy."}},
      {"photography basics", "arts",
       "Exposure in photography balances aperture, shutter speed, and "
       "ISO.",
       "Exposure in photography depends only on the price of the "
       "camera.",
       {"A wide aperture blurs the background to isolate the subject.",
        "Slow shutter speeds convey motion; fast ones freeze it.",
        "The rule of thirds places subjects off-center for balance.",
        "Golden-hour light flatters almost any scene."}},
      {"creative writing", "arts",
       "Strong stories show character change through concrete scenes "
       "rather than summary.",
       "Strong stories avoid any change in their characters.",
       {"Conflict gives a narrative its forward motion.",
        "Specific sensory detail makes scenes vivid.",
        "Dialogue reveals character faster than description.",
        "Revision is where most of the writing actually happens."}},
      {"chess strategy", "daily life",
       "Controlling the center and developing pieces early are core "
       "opening principles in chess.",
       "Moving only edge pawns for the first ten moves is a core opening "
       "principle in chess.",
       {"Knights are strongest on central squares.",
        "Castling tucks the king to safety and connects the rooks.",
        "A passed pawn grows stronger as the endgame approaches.",
        "Tactics flow from superior piece activity."}},
      {"gardening", "daily life",
       "Most vegetables need at least six hours of direct sunlight and "
       "well-drained soil.",
       "Most vegetables grow best in total darkness and waterlogged "
       "soil.",
       {"Compost enriches soil structure and feeds microbial life.",
        "Mulch suppresses weeds and retains moisture.",
        "Rotating crops interrupts pest and disease cycles.",
        "Watering deeply but infrequently encourages strong roots."}},
      {"coffee brewing", "daily life",
       "Brewing coffee extracts flavor best with water just below "
       "boiling, around 90 to 96 degrees Celsius.",
       "Brewing coffee extracts flavor best with ice-cold water poured "
       "quickly.",
       {"A consistent grind size is the biggest lever on taste.",
        "Freshly roasted beans lose aroma within weeks of roasting.",
        "The golden ratio is roughly 60 grams of coffee per litre of "
        "water.",
        "Pour-over methods highlight acidity; immersion methods add "
        "body."}},
      {"space exploration", "science",
       "Apollo 11 landed the first humans on the Moon in 1969.",
       "Apollo 11 landed the first humans on Mars in 1969.",
       {"Reusable rockets have sharply cut the cost of reaching orbit.",
        "Robotic probes have visited every planet in the solar system.",
        "The International Space Station has been continuously occupied "
        "since 2000.",
        "Telescopes in space avoid the blurring of Earth's atmosphere."}},
      {"the human brain", "science",
       "The human brain contains roughly 86 billion neurons.",
       "The human brain contains roughly 86 thousand neurons.",
       {"Synapses strengthen with use, the basis of learning.",
        "The prefrontal cortex supports planning and self-control.",
        "Sleep consolidates memories formed during the day.",
        "The brain consumes about a fifth of the body's energy."}},
      {"ocean ecosystems", "science",
       "Coral reefs support about a quarter of all marine species while "
       "covering less than one percent of the ocean floor.",
       "Coral reefs support almost no marine species despite covering "
       "half of the ocean floor.",
       {"Phytoplankton produce a large share of the oxygen in the "
        "atmosphere.",
        "Ocean currents redistribute heat around the globe.",
        "Overfishing disrupts food webs far beyond the targeted "
        "species.",
        "Warming and acidification stress reef-building corals."}},
      {"volcanoes", "science",
       "Volcanoes erupt when molten rock, or magma, rises through the "
       "crust and escapes as lava.",
       "Volcanoes erupt when ocean water drains into the crust and "
       "freezes.",
       {"Most volcanoes form along tectonic plate boundaries.",
        "The Ring of Fire around the Pacific hosts the majority of "
        "active volcanoes.",
        "Volcanic ash enriches soils over the long term.",
        "Eruptions are classified by their explosivity index."}},
      {"the french revolution", "history",
       "The French Revolution began in 1789 with the storming of the "
       "Bastille.",
       "The French Revolution began in 1889 with the storming of the "
       "Eiffel Tower.",
       {"Fiscal crisis and food shortages fueled popular anger.",
        "The Declaration of the Rights of Man proclaimed legal "
        "equality.",
        "The monarchy was abolished and a republic declared in 1792.",
        "Its ideas of citizenship spread across Europe in the following "
        "decades."}},
      {"the silk road", "history",
       "The Silk Road was a network of trade routes linking China with "
       "the Mediterranean for centuries.",
       "The Silk Road was a single paved highway built in the 20th "
       "century.",
       {"Silk, spices, paper, and ideas all traveled the routes.",
        "Caravanserais sheltered merchants a day's journey apart.",
        "Buddhism spread from India to East Asia along these paths.",
        "Maritime routes eventually carried more volume than the land "
        "legs."}},
      {"programming in python", "technology",
       "Python is a high-level language known for readable syntax and a "
       "vast ecosystem of libraries.",
       "Python is a low-level assembly language with no libraries.",
       {"Indentation defines code blocks instead of braces.",
        "List comprehensions express loops over collections concisely.",
        "The standard library covers tasks from file I/O to networking.",
        "Virtual environments isolate project dependencies."}},
      {"databases", "technology",
       "Relational databases organize data into tables and answer "
       "queries written in SQL.",
       "Relational databases store all data in a single unstructured "
       "text file.",
       {"Indexes trade write cost for much faster lookups.",
        "Transactions keep data consistent even when operations fail "
        "midway.",
        "Normalization removes redundant copies of the same fact.",
        "Query planners choose join orders to minimize work."}},
      {"artificial satellites", "technology",
       "Artificial satellites stay in orbit because their horizontal "
       "speed balances Earth's gravitational pull.",
       "Artificial satellites stay in orbit because they are lighter "
       "than air.",
       {"Geostationary satellites hover over one point by orbiting in "
        "24 hours.",
        "GPS receivers compute position from timing signals of several "
        "satellites.",
        "Low orbits require speeds near 7.8 kilometres per second.",
        "Atmospheric drag slowly lowers satellites in low orbit."}},
      {"personal budgeting", "business",
       "A budget assigns every unit of income a job across spending, "
       "saving, and debt repayment.",
       "A budget is a record written after money is spent with no plan "
       "attached.",
       {"The 50/30/20 rule splits income into needs, wants, and "
        "savings.",
        "Reviewing subscriptions yearly trims silent recurring costs.",
        "Cash envelopes make overspending physically visible.",
        "Small automated transfers accumulate into real savings."}},
      {"negotiation", "business",
       "Successful negotiation seeks outcomes that satisfy the core "
       "interests of both sides.",
       "Successful negotiation requires one side to concede on every "
       "point.",
       {"Preparation means knowing your alternatives before you sit "
        "down.",
        "Open questions surface the other side's real constraints.",
        "Anchoring with the first offer shapes the bargaining range.",
        "Silence after an offer often improves the next one."}},
      {"team leadership", "business",
       "Effective leaders set clear goals, delegate authority, and give "
       "timely feedback.",
       "Effective leaders make every decision personally and withhold "
       "feedback.",
       {"Psychological safety lets teams surface problems early.",
        "One-on-one meetings catch concerns before they grow.",
        "Recognition reinforces the behaviour a team values.",
        "Delegation develops the judgment of future leaders."}},
      {"haiku poetry", "arts",
       "A traditional haiku has three lines of five, seven, and five "
       "syllables.",
       "A traditional haiku has ten rhyming lines of equal length.",
       {"Haiku classically evoke a season with a single image.",
        "The form prizes concrete observation over abstraction.",
        "A cutting word creates a pause or turn between images.",
        "Matsuo Basho elevated haiku to high art in 17th-century "
        "Japan."}},
      {"film editing", "arts",
       "Film editing assembles shots to control a story's rhythm and "
       "meaning.",
       "Film editing only trims the first and last frame of a single "
       "shot.",
       {"A match cut links two scenes through visual similarity.",
        "Cross-cutting builds tension between parallel actions.",
        "The Kuleshov effect shows meaning arises between shots.",
        "Sound bridges smooth transitions between scenes."}},
  };
  return kTopics;
}

const Topic* FindTopicIn(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const Topic& topic : Topics()) {
    if (lower.find(topic.name) != std::string::npos) return &topic;
  }
  return nullptr;
}

bool TopicOwnsText(const Topic& topic, const std::string& text) {
  // Case-insensitive: revised text often carries a decapitalized copy of
  // a sentence after a discourse marker ("For example, the Calvin ...").
  std::string lower = text;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto contains_ci = [&lower](const std::string& needle) {
    std::string needle_lower = needle;
    for (char& c : needle_lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return lower.find(needle_lower) != std::string::npos;
  };
  if (contains_ci(topic.name)) return true;
  if (contains_ci(topic.fact)) return true;
  if (contains_ci(topic.wrong_fact)) return true;
  for (const std::string& detail : topic.details) {
    if (contains_ci(detail)) return true;
  }
  return false;
}

const Topic* FindOwningTopic(const std::string& text) {
  for (const Topic& topic : Topics()) {
    if (TopicOwnsText(topic, text)) return &topic;
  }
  return nullptr;
}

}  // namespace synth
}  // namespace coachlm
