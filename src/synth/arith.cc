#include "synth/arith.h"

#include <cctype>

namespace coachlm {
namespace synth {
namespace {

/// Parses a non-negative integer at position \p i, advancing it.
std::optional<int64_t> ParseInt(const std::string& text, size_t* i) {
  size_t j = *i;
  int64_t value = 0;
  bool any = false;
  while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
    value = value * 10 + (text[j] - '0');
    any = true;
    ++j;
    if (value > 1000000000LL) return std::nullopt;  // implausible in corpus
  }
  if (!any) return std::nullopt;
  *i = j;
  return value;
}

size_t SkipSpaces(const std::string& text, size_t i) {
  while (i < text.size() && text[i] == ' ') ++i;
  return i;
}

}  // namespace

int64_t ArithProblem::Answer() const {
  switch (op) {
    case '+':
      return lhs + rhs;
    case '-':
      return lhs - rhs;
    case '*':
      return lhs * rhs;
    default:
      return 0;
  }
}

std::string ArithProblem::Expression() const {
  return std::to_string(lhs) + " " + op + " " + std::to_string(rhs);
}

std::optional<ArithProblem> ParseArithProblem(const std::string& text) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) continue;
    if (i > 0 && !std::isspace(static_cast<unsigned char>(text[i - 1])) &&
        text[i - 1] != '(') {
      continue;  // avoid matching digits inside identifiers like "covid19"
    }
    size_t j = i;
    auto lhs = ParseInt(text, &j);
    if (!lhs) continue;
    size_t k = SkipSpaces(text, j);
    if (k >= text.size()) return std::nullopt;
    char op = text[k];
    if (op == 'x' || op == 'X') op = '*';
    if (op != '+' && op != '-' && op != '*') continue;
    size_t l = SkipSpaces(text, k + 1);
    auto rhs = ParseInt(text, &l);
    if (!rhs) continue;
    ArithProblem problem;
    problem.lhs = *lhs;
    problem.rhs = *rhs;
    problem.op = op;
    return problem;
  }
  return std::nullopt;
}

std::optional<int64_t> ParseStatedResult(const std::string& text) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '=') continue;
    size_t j = SkipSpaces(text, i + 1);
    bool negative = false;
    if (j < text.size() && text[j] == '-') {
      negative = true;
      ++j;
    }
    auto value = ParseInt(text, &j);
    if (value) return negative ? -*value : *value;
  }
  return std::nullopt;
}

}  // namespace synth
}  // namespace coachlm
