#ifndef COACHLM_SYNTH_CONTENT_ENGINE_H_
#define COACHLM_SYNTH_CONTENT_ENGINE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/instruction_pair.h"
#include "synth/code_bank.h"
#include "synth/topic_bank.h"

namespace coachlm {
namespace synth {

/// \brief Knobs controlling how elaborate a generated response is.
struct ResponseRichness {
  /// Number of explanation/background sentences to include (0..4).
  size_t explanations = 1;
  /// Whether to end with a warm closing line (humanization dimension).
  bool closing = false;
  /// Whether to include a rich instruction context (contextualization).
  bool context = false;
};

/// \brief Composes instructions and responses from the topic/code banks.
///
/// The engine encodes the "knowledge" that, in the paper, lives in the
/// teacher LLM (which generated ALPACA52K) and in the human experts'
/// heads. Both the corpus generator and the expert revision simulator call
/// into it; CoachLM never does — it must learn revision behaviour from
/// expert (x, x_r) pairs alone.
class ContentEngine {
 public:
  ContentEngine() = default;

  /// Builds a defect-free pair for the category/topic with the requested
  /// richness. Ids are caller-assigned.
  InstructionPair BuildCleanPair(uint64_t id, Category category,
                                 const Topic& topic,
                                 const ResponseRichness& richness,
                                 Rng* rng) const;

  /// Rebuilds a correct, rich response for an existing pair by analyzing
  /// its instruction text (recovering the topic / code task / arithmetic
  /// problem). This is the expert's "rewrite from scratch" capability.
  /// When the instruction is too ambiguous to recover a subject, the
  /// fallback topic is used.
  std::string RebuildResponse(const InstructionPair& pair,
                              const ResponseRichness& richness,
                              Rng* rng) const;

  /// Produces a context/requirement sentence enriching an instruction
  /// (the Contextualization dimension of Table II).
  std::string ContextSentence(Category category, const Topic& topic,
                              Rng* rng) const;

  /// Explanation sentences about the topic, at most its detail count.
  /// Details already present (case-insensitively) in \p avoid are skipped.
  std::vector<std::string> ExplanationSentences(
      const Topic& topic, Rng* rng, size_t count,
      const std::string& avoid = "") const;

  /// A warm closing line.
  std::string ClosingLine(Rng* rng) const;

  /// The instruction text for the category/topic (no context enrichment).
  std::string InstructionText(Category category, const Topic& topic,
                              Rng* rng) const;

  /// Optional input payload for categories that carry one (passages to
  /// summarize, sentences to correct, ...); empty otherwise.
  std::string InputText(Category category, const Topic& topic,
                        Rng* rng) const;

  /// The direct core answer, consistent with InstructionText/InputText for
  /// the same (category, topic, rng sequence). For deterministic categories
  /// (math, grammar) the answer derives from \p pair_text analysis.
  std::string CoreAnswer(Category category, const Topic& topic,
                         const std::string& instruction_text,
                         const std::string& input_text, Rng* rng) const;

  /// Topic recovered from a pair's text, or a deterministic fallback.
  const Topic& TopicFor(const InstructionPair& pair) const;
};

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_CONTENT_ENGINE_H_
