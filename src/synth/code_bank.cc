#include "synth/code_bank.h"

namespace coachlm {
namespace synth {

const std::vector<CodeTask>& CodeTasks() {
  static const std::vector<CodeTask> kTasks = {
      {"computes the factorial of a number", "factorial",
       "def factorial(n):\n"
       "    result = 1\n"
       "    for i in range(2, n + 1):\n"
       "        result *= i\n"
       "    return result",
       "def factorial(n):\n"
       "    result = 0\n"
       "    for i in range(2, n + 1):\n"
       "        result *= i\n"
       "    return result",
       "the accumulator is initialized to 0, so every product is zero",
       {"The loop multiplies the accumulator by each integer from 2 up to "
        "n.",
        "Starting the accumulator at 1 makes factorial(0) and factorial(1) "
        "return 1, matching the mathematical definition.",
        "An iterative loop avoids the recursion depth limit for large n."}},
      {"reverses a string", "reverse_string",
       "def reverse_string(s):\n"
       "    return s[::-1]",
       "def reverse_string(s):\n"
       "    return s[1:-1]",
       "the slice drops the first and last characters instead of reversing",
       {"The slice notation s[::-1] walks the string backwards with a step "
        "of -1.",
        "Python strings are immutable, so the slice returns a new string.",
        "This runs in linear time with respect to the string length."}},
      {"checks whether a number is prime", "is_prime",
       "def is_prime(n):\n"
       "    if n < 2:\n"
       "        return False\n"
       "    i = 2\n"
       "    while i * i <= n:\n"
       "        if n % i == 0:\n"
       "            return False\n"
       "        i += 1\n"
       "    return True",
       "def is_prime(n):\n"
       "    if n < 2:\n"
       "        return False\n"
       "    for i in range(2, n):\n"
       "        if n % i == 0:\n"
       "            return True\n"
       "    return False",
       "the return values inside the loop are inverted",
       {"Trial division only needs to test divisors up to the square root "
        "of n.",
        "Numbers below 2 are excluded because primality is defined for "
        "integers greater than 1.",
        "The while loop exits early on the first divisor found."}},
      {"finds the largest element in a list", "find_max",
       "def find_max(items):\n"
       "    largest = items[0]\n"
       "    for value in items[1:]:\n"
       "        if value > largest:\n"
       "            largest = value\n"
       "    return largest",
       "def find_max(items):\n"
       "    largest = 0\n"
       "    for value in items:\n"
       "        if value > largest:\n"
       "            largest = value\n"
       "    return largest",
       "seeding with 0 fails for lists of all-negative numbers",
       {"Seeding the running maximum with the first element handles "
        "negative values correctly.",
        "The single pass gives linear time complexity.",
        "An empty list should be rejected before calling this function."}},
      {"counts the vowels in a sentence", "count_vowels",
       "def count_vowels(text):\n"
       "    return sum(1 for ch in text.lower() if ch in 'aeiou')",
       "def count_vowels(text):\n"
       "    return sum(1 for ch in text if ch in 'aeiou')",
       "upper-case vowels are missed because the text is not lower-cased",
       {"Lower-casing first makes the membership test case-insensitive.",
        "The generator expression avoids building an intermediate list.",
        "Membership in a short string is a constant-time check per "
        "character."}},
      {"computes the Fibonacci sequence up to n terms", "fibonacci",
       "def fibonacci(n):\n"
       "    sequence = []\n"
       "    a, b = 0, 1\n"
       "    for _ in range(n):\n"
       "        sequence.append(a)\n"
       "        a, b = b, a + b\n"
       "    return sequence",
       "def fibonacci(n):\n"
       "    sequence = []\n"
       "    a, b = 0, 1\n"
       "    for _ in range(n):\n"
       "        sequence.append(b)\n"
       "        a, b = b, a + b\n"
       "    return sequence",
       "appending b instead of a skips the leading zero of the sequence",
       {"The tuple assignment advances both state variables in one step.",
        "Appending before advancing keeps the sequence zero-indexed.",
        "Each term needs only the previous two, so memory use is "
        "constant apart from the output list."}},
      {"removes duplicate values from a list while keeping order",
       "dedupe",
       "def dedupe(items):\n"
       "    seen = set()\n"
       "    result = []\n"
       "    for value in items:\n"
       "        if value not in seen:\n"
       "            seen.add(value)\n"
       "            result.append(value)\n"
       "    return result",
       "def dedupe(items):\n"
       "    return list(set(items))",
       "converting through a set loses the original order of the items",
       {"The set gives constant-time membership checks.",
        "Appending only unseen values preserves first-occurrence order.",
        "This runs in linear time for hashable items."}},
      {"converts temperatures from Celsius to Fahrenheit",
       "celsius_to_fahrenheit",
       "def celsius_to_fahrenheit(celsius):\n"
       "    return celsius * 9 / 5 + 32",
       "def celsius_to_fahrenheit(celsius):\n"
       "    return celsius * 5 / 9 + 32",
       "the conversion factor is inverted (5/9 instead of 9/5)",
       {"The formula scales by 9/5 and then offsets by 32.",
        "Using true division keeps the result exact for fractional "
        "inputs.",
        "Zero Celsius maps to 32 Fahrenheit, a quick sanity check."}},
  };
  return kTasks;
}

const CodeTask* FindCodeTaskIn(const std::string& text) {
  for (const CodeTask& task : CodeTasks()) {
    if (text.find(task.name) != std::string::npos ||
        text.find(task.description) != std::string::npos) {
      return &task;
    }
  }
  return nullptr;
}

}  // namespace synth
}  // namespace coachlm
