#ifndef COACHLM_SYNTH_TOPIC_BANK_H_
#define COACHLM_SYNTH_TOPIC_BANK_H_

#include <string>
#include <vector>

namespace coachlm {
namespace synth {

/// \brief A topic the corpus generator (and the expert oracle) can speak
/// about.
///
/// Each topic carries a small amount of "world knowledge": one checkable
/// fact with a corrupted counterpart (the FactualError defect swaps them),
/// and detail sentences that serve as explanation/richness content. The
/// topic bank is the stand-in for the pre-training knowledge that both the
/// teacher LLM (which generated ALPACA52K) and the human experts share.
struct Topic {
  /// Display name appearing verbatim in instructions ("photosynthesis").
  std::string name;
  /// Broad domain ("science", "history", "technology", ...).
  std::string domain;
  /// A correct factual statement about the topic.
  std::string fact;
  /// The same statement with a factual corruption.
  std::string wrong_fact;
  /// Supporting detail sentences (explanations, background, examples).
  std::vector<std::string> details;
};

/// \brief Returns the global topic bank (deterministic, ~48 topics across
/// science, history, technology, daily life, business, and arts).
const std::vector<Topic>& Topics();

/// \brief Finds the first topic whose name occurs in \p text (case
/// sensitive, names are lower-case); returns nullptr when none matches.
const Topic* FindTopicIn(const std::string& text);

/// \brief True when \p text speaks about \p topic: it mentions the topic's
/// name, or contains its fact / one of its detail sentences (knowledgeable
/// raters recognize a topic's content even when the name is not repeated).
bool TopicOwnsText(const Topic& topic, const std::string& text);

/// \brief Finds a topic that owns \p text per TopicOwnsText; nullptr when
/// none does.
const Topic* FindOwningTopic(const std::string& text);

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_TOPIC_BANK_H_
