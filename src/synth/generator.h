#ifndef COACHLM_SYNTH_GENERATOR_H_
#define COACHLM_SYNTH_GENERATOR_H_

#include <vector>

#include "common/checkpoint.h"
#include "common/execution.h"
#include "common/rng.h"
#include "common/runtime.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "synth/content_engine.h"
#include "synth/defect.h"

namespace coachlm {
namespace synth {

/// \brief Configuration of the synthetic ALPACA52K-like corpus.
///
/// Default rates are calibrated to the paper's measurements: ~18% of a 6k
/// sample fell into Table III exclusion categories, 46.8% of the remainder
/// was deficient, and 17.7% of the full dataset rated above 4.5/5.
struct CorpusConfig {
  /// Number of instruction pairs (the paper's dataset has 52002).
  size_t size = 52000;
  /// RNG seed; the corpus is a pure function of the config.
  uint64_t seed = 42;
  /// Probability a pair belongs to a Table III exclusion category.
  double exclusion_rate = 0.18;
  /// Probability a non-excluded pair carries quality defects.
  double deficiency_rate = 0.468;
  /// Probability a deficient pair *also* has an instruction-side defect
  /// (the paper: 1079 of 2301 revised pairs had instruction revisions).
  double instruction_defect_rate = 0.47;
  /// Relative weight of the sparse "coding" categories; low weight makes
  /// filtering-based baselines visibly regress on coding (Section II-A(3)).
  double code_category_weight = 0.35;
};

/// \brief A generated corpus with defect provenance.
///
/// `defects[i]` lists the defects injected into `dataset[i]` (empty for
/// clean pairs). Provenance exists for tests and analysis only; the expert
/// simulator and CoachLM never read it.
struct SynthCorpus {
  InstructionDataset dataset;
  std::vector<std::vector<DefectType>> defects;

  /// True when pair \p i carries at least one exclusion-class defect.
  bool IsExcludedClass(size_t i) const;
  /// True when pair \p i carries at least one quality defect.
  bool IsDeficient(size_t i) const;
};

/// \brief Deterministic generator of the synthetic instruction corpus.
///
/// Pair i draws from its own counter-derived RNG stream
/// (DeriveRng(seed, id)), so generation parallelizes over \p exec with
/// byte-identical output at any thread count.
class SynthCorpusGenerator {
 public:
  explicit SynthCorpusGenerator(CorpusConfig config);

  /// Generates the corpus described by the config.
  SynthCorpus Generate(
      const ExecutionContext& exec = ExecutionContext::Default()) const;

  /// Fault-tolerant / checkpointed generation. Each pair's synthesis runs
  /// under \p runtime (nullptr = PipelineRuntime::Default()) at
  /// FaultSite::kCollect: transient faults retry to the exact bytes the
  /// fault-free run produces (every attempt re-derives the pair's stream),
  /// and permanently-failed ids are *dropped* from the corpus and recorded
  /// in the runtime's quarantine log — collection never aborts. With an
  /// enabled \p checkpoint the pass journals finished chunks and resumes a
  /// killed run to byte-identical output.
  SynthCorpus Generate(const ExecutionContext& exec, PipelineRuntime* runtime,
                       StageCheckpointer* checkpoint = nullptr) const;

  /// Record-stream form: synthesizes the corpus and pushes every pair into
  /// \p writer in id order (defect provenance is dropped — streaming
  /// consumers never read it). The writer is not closed; the caller owns
  /// the artifact lifecycle. Same fault/checkpoint semantics as
  /// Generate(exec, runtime, checkpoint).
  [[nodiscard]] Status GenerateTo(RecordWriter* writer,
                                  const ExecutionContext& exec,
                                  PipelineRuntime* runtime = nullptr,
                                  StageCheckpointer* checkpoint =
                                      nullptr) const;

  /// Generates a single pair (clean or deficient) with the given id; used
  /// by streaming consumers such as the platform simulator. Callers wanting
  /// schedule-independent output pass DeriveRng(seed, id) as \p rng.
  void GeneratePair(uint64_t id, Rng* rng, InstructionPair* pair,
                    std::vector<DefectType>* defects) const;

  const CorpusConfig& config() const { return config_; }
  const ContentEngine& engine() const { return engine_; }

 private:
  Category PickCategory(Rng* rng) const;
  const Topic& PickTopic(Category category, Rng* rng) const;

  CorpusConfig config_;
  ContentEngine engine_;
  DefectInjector injector_;
};

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_GENERATOR_H_
