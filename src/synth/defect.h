#ifndef COACHLM_SYNTH_DEFECT_H_
#define COACHLM_SYNTH_DEFECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/instruction_pair.h"
#include "synth/content_engine.h"

namespace coachlm {
namespace synth {

/// \brief Typed quality defects injected into the synthetic corpus.
///
/// The first group mirrors Table II's quality dimensions (these make a pair
/// *deficient* — the 46.8% of Section II-E); the second group mirrors
/// Table III's exclusion reasons (these make a pair *unsuitable* for
/// revision). The generator records which defects it injected, but that
/// provenance is visible only to tests — the expert simulator detects
/// deficiencies by analyzing the text, and CoachLM learns repairs from
/// expert revision pairs.
enum class DefectType : uint8_t {
  // -- Quality defects (revisable) --
  kEmptyResponse = 0,      ///< output removed entirely
  kTruncatedResponse,      ///< output cut off mid-sentence
  kMissingExplanation,     ///< explanations/background stripped (thin answer)
  kSpellingNoise,          ///< misspelled words in the response
  kInstructionSpellingNoise,  ///< misspelled words in the instruction
  kGrammarNoise,           ///< decapitalized sentences, doubled words
  kBrokenLayout,           ///< flattened lists, stray markers, bad spacing
  kAmbiguousInstruction,   ///< topic replaced by vague filler
  kInfeasibleInstruction,  ///< contradictory requirement appended
  kIrrelevantResponse,     ///< response about a different topic
  kFactualError,           ///< correct fact swapped for the corrupted one
  kMechanicalTone,         ///< robotic boilerplate opener, no warmth
  kMissingContext,         ///< instruction context stripped (advanced dim)
  // -- Exclusion defects (Table III) --
  kInvalidInput,           ///< key content replaced by a dead reference
  kBeyondExpertise,        ///< overly professional niche request
  kMassiveWorkload,        ///< poem/lyrics requiring full rewriting
  kMultiModal,             ///< refers to an image/audio payload
  kUnsafe,                 ///< toxic/sensitive request or response
};

/// Number of defect types.
constexpr size_t kNumDefectTypes = 18;

/// Stable snake_case name of a defect type.
const std::string& DefectName(DefectType type);

/// True for the Table III exclusion group.
bool IsExclusionDefect(DefectType type);

/// \brief Applies defects to clean pairs.
///
/// Each Apply* function transforms the pair in place, deterministically
/// given the Rng. Injection is designed to be *repairable*: every quality
/// defect has a corresponding expert repair operator that restores (or
/// improves upon) the clean form.
class DefectInjector {
 public:
  explicit DefectInjector(const ContentEngine* engine) : engine_(engine) {}

  /// Applies \p type to \p pair. Returns false when the defect is not
  /// applicable (e.g. truncation of an already-empty response) and the pair
  /// was left unchanged.
  bool Apply(DefectType type, InstructionPair* pair, Rng* rng) const;

 private:
  const ContentEngine* engine_;
};

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_DEFECT_H_
