#include "synth/generator.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "json/json.h"

namespace coachlm {
namespace synth {
namespace {

/// Relative weights of the response-side quality defects, shaped after the
/// revision-type distribution of Table IV (what experts ended up fixing).
struct WeightedDefect {
  DefectType type;
  double weight;
};

const std::vector<WeightedDefect>& ResponseDefects() {
  static const std::vector<WeightedDefect> kWeights = {
      {DefectType::kMissingExplanation, 30.0},  // comprehensiveness/richness
      {DefectType::kTruncatedResponse, 12.0},   // (same bucket: thin answers)
      {DefectType::kIrrelevantResponse, 8.0},   // relevance rewrites
      {DefectType::kSpellingNoise, 9.0},        // readability rewrites
      {DefectType::kGrammarNoise, 8.0},
      {DefectType::kBrokenLayout, 12.0},        // layout adjustments
      {DefectType::kMechanicalTone, 11.0},      // tone adjustments
      {DefectType::kFactualError, 7.0},         // corrections
      {DefectType::kEmptyResponse, 3.0},        // misc severe
  };
  return kWeights;
}

/// Instruction-side defects, shaped after Table IV's instruction rows
/// (readability 68.1%, feasibility 24.9%, contextualization 7.0%).
const std::vector<WeightedDefect>& InstructionDefects() {
  static const std::vector<WeightedDefect> kWeights = {
      {DefectType::kInstructionSpellingNoise, 68.0},
      {DefectType::kAmbiguousInstruction, 15.0},
      {DefectType::kInfeasibleInstruction, 10.0},
      {DefectType::kMissingContext, 7.0},
  };
  return kWeights;
}

/// Exclusion defects with Table III ratios.
const std::vector<WeightedDefect>& ExclusionDefects() {
  static const std::vector<WeightedDefect> kWeights = {
      {DefectType::kInvalidInput, 41.7},
      {DefectType::kBeyondExpertise, 27.7},
      {DefectType::kMassiveWorkload, 8.2},
      {DefectType::kMultiModal, 6.5},
      {DefectType::kUnsafe, 15.9},
  };
  return kWeights;
}

DefectType PickWeighted(const std::vector<WeightedDefect>& defects,
                        Rng* rng) {
  std::vector<double> weights;
  weights.reserve(defects.size());
  for (const WeightedDefect& d : defects) weights.push_back(d.weight);
  return defects[rng->NextCategorical(weights)].type;
}

}  // namespace

bool SynthCorpus::IsExcludedClass(size_t i) const {
  for (DefectType d : defects[i]) {
    if (IsExclusionDefect(d)) return true;
  }
  return false;
}

bool SynthCorpus::IsDeficient(size_t i) const {
  for (DefectType d : defects[i]) {
    if (!IsExclusionDefect(d)) return true;
  }
  return false;
}

SynthCorpusGenerator::SynthCorpusGenerator(CorpusConfig config)
    : config_(config), injector_(&engine_) {}

Category SynthCorpusGenerator::PickCategory(Rng* rng) const {
  const auto& all = AllCategories();
  std::vector<double> weights(all.size(), 1.0);
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == Category::kCoding || all[i] == Category::kCodeExplanation ||
        all[i] == Category::kDebuggingHelp) {
      weights[i] = config_.code_category_weight;
    }
  }
  return all[rng->NextCategorical(weights)];
}

const Topic& SynthCorpusGenerator::PickTopic(Category category,
                                             Rng* rng) const {
  const auto& topics = Topics();
  // Domain-affine categories sample from matching domains so e.g.
  // science_qa instructions are about science topics.
  auto pick_domain = [&](const std::string& domain) -> const Topic& {
    std::vector<const Topic*> matching;
    for (const Topic& t : topics) {
      if (t.domain == domain) matching.push_back(&t);
    }
    if (matching.empty()) return rng->Pick(topics);
    return *matching[rng->NextBelow(matching.size())];
  };
  switch (category) {
    case Category::kScienceQa:
      return pick_domain("science");
    case Category::kHistoryQa:
      return pick_domain("history");
    case Category::kHealthAdvice: {
      // Health advice topics: the daily-life wellness subjects.
      for (const Topic& t : topics) {
        if (t.name == "healthy eating" && rng->NextBool(0.5)) return t;
        if (t.name == "regular exercise") return t;
      }
      return rng->Pick(topics);
    }
    default:
      return rng->Pick(topics);
  }
}

void SynthCorpusGenerator::GeneratePair(
    uint64_t id, Rng* rng, InstructionPair* pair,
    std::vector<DefectType>* defects) const {
  defects->clear();
  const Category category = PickCategory(rng);
  const Topic& topic = PickTopic(category, rng);

  // Clean pairs vary in richness: the ALPACA52K baseline mostly carries
  // thin-to-moderate answers (avg 43.9 words), so richness skews low.
  ResponseRichness richness;
  richness.explanations = static_cast<size_t>(rng->NextCategorical(
      {0.30, 0.38, 0.22, 0.10}));  // 0..3 explanation sentences
  richness.closing = rng->NextBool(0.15);
  richness.context = rng->NextBool(0.15);
  if (category == Category::kCoding ||
      category == Category::kCodeExplanation ||
      category == Category::kDebuggingHelp) {
    // Teacher-LLM code answers in the corpus are terse (code, little
    // prose) — the trait that makes filtering baselines drop them and
    // regress on coding (Section II-A(3)).
    richness.explanations = std::min<size_t>(richness.explanations, 1);
    richness.closing = false;
  }
  *pair = engine_.BuildCleanPair(id, category, topic, richness, rng);

  if (rng->NextBool(config_.exclusion_rate)) {
    const DefectType d = PickWeighted(ExclusionDefects(), rng);
    if (injector_.Apply(d, pair, rng)) defects->push_back(d);
    return;  // excluded pairs carry only their exclusion defect
  }

  if (rng->NextBool(config_.deficiency_rate)) {
    const DefectType response_defect = PickWeighted(ResponseDefects(), rng);
    if (injector_.Apply(response_defect, pair, rng)) {
      defects->push_back(response_defect);
    }
    if (rng->NextBool(config_.instruction_defect_rate)) {
      const DefectType instruction_defect =
          PickWeighted(InstructionDefects(), rng);
      if (injector_.Apply(instruction_defect, pair, rng)) {
        defects->push_back(instruction_defect);
      }
    }
    // Retry once if no defect stuck (e.g. truncation on a short answer),
    // keeping the realized deficiency rate close to the configured one.
    if (defects->empty()) {
      const DefectType fallback = DefectType::kMissingExplanation;
      if (injector_.Apply(fallback, pair, rng)) {
        defects->push_back(fallback);
      } else if (injector_.Apply(DefectType::kMechanicalTone, pair, rng)) {
        defects->push_back(DefectType::kMechanicalTone);
      }
    }
  }
}

SynthCorpus SynthCorpusGenerator::Generate(
    const ExecutionContext& exec) const {
  std::vector<InstructionPair> pairs(config_.size);
  SynthCorpus corpus;
  corpus.defects.resize(config_.size);
  // Each pair draws from its own id-derived stream, so the corpus is a
  // pure function of the config no matter how the loop is scheduled.
  exec.ParallelFor(config_.size, [&](size_t i) {
    const uint64_t id = static_cast<uint64_t>(i + 1);
    Rng rng = DeriveRng(config_.seed, id);
    GeneratePair(id, &rng, &pairs[i], &corpus.defects[i]);
  });
  corpus.dataset = InstructionDataset(std::move(pairs));
  return corpus;
}

namespace {

/// One id's outcome in a fault-tolerant / checkpointed generation pass,
/// serializable to a JSONL checkpoint line. Dropped records keep their
/// slot in the journal (so resume cursors stay item-aligned) but are
/// excluded from the assembled corpus.
struct GeneratedItemRecord {
  InstructionPair pair;
  std::vector<DefectType> defects;
  bool dropped = false;

  std::string ToLine() const {
    json::Object o;
    o["pair"] = pair.ToJson();
    json::Array defect_codes;
    defect_codes.reserve(defects.size());
    for (DefectType defect : defects) {
      defect_codes.emplace_back(static_cast<int64_t>(defect));
    }
    o["defects"] = json::Value(std::move(defect_codes));
    o["dropped"] = json::Value(dropped);
    return json::Value(std::move(o)).Dump();
  }

  static bool FromLine(const std::string& line, GeneratedItemRecord* record) {
    Result<json::Value> parsed = json::Parse(line);
    if (!parsed.ok()) return false;
    const json::Value& value = parsed.ValueOrDie();
    Result<InstructionPair> pair = InstructionPair::FromJson(value.At("pair"));
    if (!pair.ok()) return false;
    const json::Value& defect_codes = value.At("defects");
    if (!defect_codes.is_array()) return false;
    Result<bool> dropped = value.GetBool("dropped");
    if (!dropped.ok()) return false;
    record->pair = std::move(pair).ValueOrDie();
    record->defects.clear();
    for (const json::Value& code : defect_codes.AsArray()) {
      record->defects.push_back(static_cast<DefectType>(code.AsInt()));
    }
    record->dropped = dropped.ValueOrDie();
    return true;
  }
};

}  // namespace

SynthCorpus SynthCorpusGenerator::Generate(const ExecutionContext& exec,
                                           PipelineRuntime* runtime,
                                           StageCheckpointer* checkpoint) const {
  const StageSpan span("generate");
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  const bool checkpointed = checkpoint != nullptr && checkpoint->enabled();
  if (!runtime->governed() && !checkpointed) {
    SynthCorpus corpus = Generate(exec);
    CountMetric("generate.items_out", corpus.dataset.size());
    return corpus;
  }

  CancelToken* cancel = runtime->cancel_token();
  std::vector<uint8_t>* cancel_hit = nullptr;
  auto generate_one = [&](size_t i) {
    GeneratedItemRecord record;
    const uint64_t id = static_cast<uint64_t>(i + 1);
    const Status status = runtime->Run(FaultSite::kCollect, id, [&] {
      // Each attempt restarts the id's private stream, so the attempt
      // that succeeds emits the fault-free bytes.
      Rng rng = DeriveRng(config_.seed, id);
      record.pair = InstructionPair();
      record.defects.clear();
      GeneratePair(id, &rng, &record.pair, &record.defects);
      return Status::OK();
    });
    if (!status.ok()) {
      // Collection degrades by dropping the record: the remaining corpus
      // is still a pure function of (config, fault plan).
      record = GeneratedItemRecord();
      record.dropped = true;
      if (cancel_hit != nullptr && cancel != nullptr && cancel->cancelled()) {
        (*cancel_hit)[i] = 1;
      }
    }
    return record;
  };

  std::vector<GeneratedItemRecord> records(config_.size);
  if (checkpointed) {
    Status commit_error = Status::OK();
    GovernedLoopOptions options;
    options.cancel = cancel;
    options.watchdog = runtime->watchdog();
    options.commit_error = &commit_error;
    options.async_commits = true;
    const GovernedLoopResult loop = RunGovernedCheckpointedLoop(
        checkpoint, exec, &records, generate_one,
        [](const GeneratedItemRecord& record) { return record.ToLine(); },
        &GeneratedItemRecord::FromLine, options);
    if (!commit_error.ok()) {
      runtime->QuarantineRecordFailure(FaultSite::kIo, config_.size,
                                       commit_error);
    }
    if (loop.cancelled) {
      const Status cause = cancel->status();
      for (size_t i = loop.completed; i < records.size(); ++i) {
        records[i] = GeneratedItemRecord();
        records[i].dropped = true;
        runtime->QuarantineRecordFailure(FaultSite::kCollect,
                                         static_cast<uint64_t>(i + 1), cause,
                                         0);
      }
    }
  } else {
    std::vector<uint8_t> hit(config_.size, 0);
    cancel_hit = &hit;
    exec.ParallelFor(config_.size, [&](size_t i) {
      records[i] = generate_one(i);
      if (StallWatchdog* wd = runtime->watchdog()) wd->Tick();
    });
    cancel_hit = nullptr;
    if (cancel != nullptr && cancel->cancelled()) {
      const Status cause = cancel->status();
      for (size_t i = 0; i < hit.size(); ++i) {
        if (hit[i] != 0) {
          runtime->QuarantineRecordFailure(FaultSite::kCollect,
                                           static_cast<uint64_t>(i + 1), cause,
                                           0);
        }
      }
    }
  }

  SynthCorpus corpus;
  std::vector<InstructionPair> pairs;
  pairs.reserve(records.size());
  corpus.defects.reserve(records.size());
  for (GeneratedItemRecord& record : records) {
    if (record.dropped) continue;
    pairs.push_back(std::move(record.pair));
    corpus.defects.push_back(std::move(record.defects));
  }
  CountMetric("generate.items_out", pairs.size());
  CountMetric("generate.items_dropped", records.size() - pairs.size());
  corpus.dataset = InstructionDataset(std::move(pairs));
  return corpus;
}

Status SynthCorpusGenerator::GenerateTo(RecordWriter* writer,
                                        const ExecutionContext& exec,
                                        PipelineRuntime* runtime,
                                        StageCheckpointer* checkpoint) const {
  const SynthCorpus corpus = Generate(exec, runtime, checkpoint);
  return WriteAllRecords(writer, corpus.dataset);
}

}  // namespace synth
}  // namespace coachlm
