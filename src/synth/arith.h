#ifndef COACHLM_SYNTH_ARITH_H_
#define COACHLM_SYNTH_ARITH_H_

#include <cstdint>
#include <optional>
#include <string>

namespace coachlm {
namespace synth {

/// \brief A two-operand arithmetic problem embedded in a math instruction.
///
/// Math pairs are the one place where correctness is *exactly* checkable:
/// the generator embeds "Calculate 47 + 38", the correctness analyzer
/// recomputes the result, and the expert repair re-derives it — no oracle
/// metadata needed anywhere.
struct ArithProblem {
  int64_t lhs = 0;
  int64_t rhs = 0;
  char op = '+';  // one of + - *

  /// The correct result.
  int64_t Answer() const;

  /// Renders "47 + 38".
  std::string Expression() const;
};

/// \brief Finds the first "A <op> B" pattern in \p text (op in {+,-,*,x}).
/// Returns nullopt when no well-formed problem is present.
std::optional<ArithProblem> ParseArithProblem(const std::string& text);

/// \brief Finds the first "= N" stated result in \p text.
std::optional<int64_t> ParseStatedResult(const std::string& text);

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_ARITH_H_
