#include "synth/defect.h"

#include <array>
#include <cctype>

#include "synth/arith.h"

#include "text/lexicons.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace synth {
namespace {

constexpr std::array<const char*, kNumDefectTypes> kDefectNames = {
    "empty_response", "truncated_response", "missing_explanation",
    "spelling_noise", "instruction_spelling_noise", "grammar_noise",
    "broken_layout", "ambiguous_instruction", "infeasible_instruction",
    "irrelevant_response", "factual_error", "mechanical_tone",
    "missing_context", "invalid_input", "beyond_expertise",
    "massive_workload", "multi_modal", "unsafe",
};

/// Corrupts up to \p max_words known words in \p text.
std::string InjectSpelling(const std::string& text, size_t max_words) {
  std::string out = text;
  size_t done = 0;
  for (const auto& [good, bad] : lexicons::SpellingCorruptions()) {
    if (done >= max_words) break;
    if (strings::Contains(out, good)) {
      out = strings::ReplaceAll(out, good, bad);
      ++done;
    }
  }
  return out;
}

std::string Decap(std::string s) {
  for (char& c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      break;
    }
  }
  return s;
}

}  // namespace

const std::string& DefectName(DefectType type) {
  static const std::array<std::string, kNumDefectTypes> kNames = [] {
    std::array<std::string, kNumDefectTypes> names;
    for (size_t i = 0; i < kNumDefectTypes; ++i) names[i] = kDefectNames[i];
    return names;
  }();
  return kNames[static_cast<uint8_t>(type)];
}

bool IsExclusionDefect(DefectType type) {
  return static_cast<uint8_t>(type) >=
         static_cast<uint8_t>(DefectType::kInvalidInput);
}

bool DefectInjector::Apply(DefectType type, InstructionPair* pair,
                           Rng* rng) const {
  switch (type) {
    case DefectType::kEmptyResponse:
      if (pair->output.empty()) return false;
      pair->output.clear();
      return true;

    case DefectType::kTruncatedResponse: {
      const auto words = tokenizer::WhitespaceTokenize(pair->output);
      if (words.size() < 8) return false;
      const size_t keep = words.size() * 2 / 5;
      std::vector<std::string> head(words.begin(), words.begin() + keep);
      pair->output = strings::Join(head, " ");
      return true;
    }

    case DefectType::kMissingExplanation: {
      // Keep only the first sentence (or the first list line) of the
      // response: the thin, unexplained answer pattern.
      const auto sentences = tokenizer::SplitSentences(pair->output);
      if (sentences.size() < 2) return false;
      pair->output = sentences.front();
      return true;
    }

    case DefectType::kSpellingNoise: {
      const std::string noisy = InjectSpelling(pair->output, 3);
      if (noisy == pair->output) return false;
      pair->output = noisy;
      return true;
    }

    case DefectType::kInstructionSpellingNoise: {
      const std::string noisy = InjectSpelling(pair->instruction, 2);
      if (noisy == pair->instruction) {
        // Fall back to a decapitalized instruction; still a readability
        // defect the expert repairs.
        const std::string decap = Decap(pair->instruction);
        if (decap == pair->instruction) return false;
        pair->instruction = decap;
        return true;
      }
      pair->instruction = noisy;
      return true;
    }

    case DefectType::kGrammarNoise: {
      // Decapitalize sentence starts and double a word: classic LLM slip.
      auto sentences = tokenizer::SplitSentences(pair->output);
      if (sentences.empty()) return false;
      for (std::string& s : sentences) s = Decap(s);
      std::string joined = strings::Join(sentences, " ");
      auto words = tokenizer::WhitespaceTokenize(joined);
      if (words.size() > 4) {
        const size_t at = 1 + rng->NextBelow(words.size() - 2);
        words.insert(words.begin() + static_cast<long>(at), words[at]);
        joined = strings::Join(words, " ");
      }
      pair->output = joined;
      return true;
    }

    case DefectType::kBrokenLayout: {
      std::string flat = pair->output;
      const bool had_newlines = strings::Contains(flat, "\n");
      flat = strings::ReplaceAll(flat, "\n- ", " - ");
      flat = strings::ReplaceAll(flat, "\n1. ", " 1. ");
      flat = strings::ReplaceAll(flat, "\n2. ", " 2. ");
      flat = strings::ReplaceAll(flat, "\n3. ", " 3. ");
      flat = strings::ReplaceAll(flat, "\n4. ", " 4. ");
      flat = strings::ReplaceAll(flat, "\n5. ", " 5. ");
      flat = strings::ReplaceAll(flat, "\n", "  ");
      if (!had_newlines) {
        // Inject a stray machine marker and double spacing instead.
        flat = "OUTPUT:  " + flat;
      }
      pair->output = flat;
      return true;
    }

    case DefectType::kAmbiguousInstruction: {
      const Topic* topic = FindTopicIn(pair->instruction);
      if (topic == nullptr) return false;
      pair->instruction = strings::ReplaceAll(
          pair->instruction, topic->name,
          rng->Pick(lexicons::AmbiguityFillers()));
      return true;
    }

    case DefectType::kInfeasibleInstruction: {
      static const std::vector<std::string> kImpossible = {
          " Answer in exactly zero words.",
          " Make the answer both shorter than one word and longer than "
          "two paragraphs.",
          " Do not use any words containing vowels.",
          " Provide the answer before reading this instruction.",
      };
      pair->instruction += rng->Pick(kImpossible);
      return true;
    }

    case DefectType::kIrrelevantResponse: {
      // Swap in a response about an unrelated topic.
      const Topic& current = engine_->TopicFor(*pair);
      const auto& topics = Topics();
      const Topic* other = &topics[(pair->id + 7) % topics.size()];
      if (other->name == current.name) {
        other = &topics[(pair->id + 13) % topics.size()];
      }
      pair->output = other->fact + " " + other->details[0];
      return true;
    }

    case DefectType::kFactualError: {
      for (const Topic& topic : Topics()) {
        if (strings::Contains(pair->output, topic.fact)) {
          pair->output = strings::ReplaceAll(pair->output, topic.fact,
                                             topic.wrong_fact);
          return true;
        }
      }
      // Math pairs: corrupt the stated result instead.
      auto problem = ParseArithProblem(pair->instruction);
      auto stated = ParseStatedResult(pair->output);
      if (problem && stated) {
        const std::string good = "= " + std::to_string(*stated);
        const std::string bad = "= " + std::to_string(*stated + 10);
        pair->output = strings::ReplaceAll(pair->output, good, bad);
        pair->output = strings::ReplaceAll(
            pair->output, "answer is " + std::to_string(*stated),
            "answer is " + std::to_string(*stated + 10));
        return true;
      }
      return false;
    }

    case DefectType::kMechanicalTone: {
      std::string out = pair->output;
      // Strip warm closings, then prepend a robotic opener.
      for (const std::string& marker : lexicons::PolitenessMarkers()) {
        const size_t at = strings::Lower(out).find(strings::Lower(marker));
        if (at != std::string::npos) {
          // Remove the sentence containing the marker.
          size_t begin = out.rfind('.', at);
          begin = begin == std::string::npos ? 0 : begin + 1;
          size_t end = out.find_first_of(".!?", at);
          end = end == std::string::npos ? out.size() : end + 1;
          out = out.substr(0, begin) + out.substr(end);
        }
      }
      pair->output = rng->Pick(lexicons::MechanicalOpeners()) + " " +
                     strings::Trim(out);
      return true;
    }

    case DefectType::kMissingContext: {
      // Strip any context scaffold sentence from the instruction, leaving a
      // bare, minimal request.
      const auto sentences = tokenizer::SplitSentences(pair->instruction);
      if (sentences.size() < 2) return false;
      pair->instruction = sentences.front();
      return true;
    }

    case DefectType::kInvalidInput: {
      static const std::vector<std::string> kDead = {
          "[Link to an article]", "<noinput>", "(see the attachment)",
          "[DOCUMENT REMOVED]",
      };
      pair->input = rng->Pick(kDead);
      return true;
    }

    case DefectType::kBeyondExpertise: {
      static const std::vector<std::string> kNiche = {
          "Generate the chords for an E minor scale in drop-D tuning.",
          "Derive the renormalization group flow for this lattice model.",
          "Write the Verilog for a 5-stage pipelined RISC core.",
          "Produce the full legal brief for this patent dispute.",
      };
      pair->instruction = rng->Pick(kNiche);
      pair->input.clear();
      return true;
    }

    case DefectType::kMassiveWorkload: {
      static const std::vector<std::string> kHeavy = {
          "From the given lyrics, create a haiku poem preserving every "
          "image.",
          "Rewrite this entire novel chapter in iambic pentameter.",
          "Translate this 40-stanza poem preserving rhyme and meter.",
      };
      pair->instruction = rng->Pick(kHeavy);
      return true;
    }

    case DefectType::kMultiModal: {
      static const std::vector<std::string> kModal = {
          "List the products in the photo.",
          "Describe what happens in this video clip.",
          "Transcribe the attached audio recording.",
      };
      pair->instruction = rng->Pick(kModal);
      pair->input = "(binary attachment)";
      return true;
    }

    case DefectType::kUnsafe: {
      const auto& terms = lexicons::UnsafeTerms();
      pair->instruction = "Explain " + rng->Pick(terms) + ".";
      pair->input.clear();
      return true;
    }
  }
  return false;
}

}  // namespace synth
}  // namespace coachlm
