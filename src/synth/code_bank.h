#ifndef COACHLM_SYNTH_CODE_BANK_H_
#define COACHLM_SYNTH_CODE_BANK_H_

#include <string>
#include <vector>

namespace coachlm {
namespace synth {

/// \brief A small programming task with a reference solution.
///
/// The coding categories (kCoding, kCodeExplanation, kDebuggingHelp) draw
/// from this bank. Code pairs matter for the reproduction: the paper notes
/// that AlpaGasus' aggressive filtering of code-related pairs weakened its
/// coding ability, which our Table IX bench must reproduce.
struct CodeTask {
  /// Short description used inside instructions ("computes the factorial
  /// of a number").
  std::string description;
  /// Identifier-ish name ("factorial").
  std::string name;
  /// Reference Python solution.
  std::string code;
  /// A buggy variant (for kDebuggingHelp instructions).
  std::string buggy_code;
  /// One-line description of the bug.
  std::string bug_note;
  /// Explanation sentences about how the solution works.
  std::vector<std::string> explanation;
};

/// Returns the global bank of code tasks.
const std::vector<CodeTask>& CodeTasks();

/// Finds the code task whose name occurs in \p text; nullptr when none.
const CodeTask* FindCodeTaskIn(const std::string& text);

}  // namespace synth
}  // namespace coachlm

#endif  // COACHLM_SYNTH_CODE_BANK_H_
