#include "synth/content_engine.h"

#include <algorithm>
#include <cctype>

#include "synth/arith.h"
#include "text/lexicons.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace synth {
namespace {

/// Deterministic neighbor topic used by comparison instructions.
const Topic& NeighborTopic(const Topic& topic) {
  const auto& topics = Topics();
  for (size_t i = 0; i < topics.size(); ++i) {
    if (topics[i].name == topic.name) {
      return topics[(i + 1) % topics.size()];
    }
  }
  return topics.front();
}

/// Applies the lexicon spelling corruptions to every applicable word.
std::string CorruptSpelling(const std::string& text) {
  std::string out = text;
  for (const auto& [good, bad] : lexicons::SpellingCorruptions()) {
    out = strings::ReplaceAll(out, good, bad);
  }
  return out;
}

/// Repairs all known corrupted spellings (inverse of CorruptSpelling).
std::string FixSpelling(const std::string& text) {
  std::string out = text;
  for (const auto& [bad, good] : lexicons::SpellingRepairs()) {
    out = strings::ReplaceAll(out, bad, good);
  }
  return out;
}

/// Lower-cases the first alphabetic character (a grammar corruption that
/// Capitalize() inverts exactly).
std::string Decapitalize(std::string s) {
  for (char& c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      break;
    }
  }
  return s;
}

bool IsCodeCategory(Category category) {
  return category == Category::kCoding ||
         category == Category::kCodeExplanation ||
         category == Category::kDebuggingHelp;
}

const CodeTask& CodeTaskFor(const Topic& topic) {
  // Deterministic code task keyed by topic identity so instruction and
  // response generation agree without shared mutable state.
  const auto& tasks = CodeTasks();
  size_t h = 0;
  for (char c : topic.name) h = h * 131 + static_cast<unsigned char>(c);
  return tasks[h % tasks.size()];
}

/// First clause of a sentence (up to ~60% of its words).
std::string FirstClause(const std::string& sentence) {
  const auto words = tokenizer::WhitespaceTokenize(sentence);
  const size_t keep = std::max<size_t>(3, words.size() * 3 / 5);
  std::vector<std::string> head(words.begin(),
                                words.begin() + std::min(keep, words.size()));
  return strings::Join(head, " ");
}

std::string PositiveReview(const Topic& topic) {
  return "I really enjoyed learning about " + topic.name +
         ". The material was clear, engaging, and well organized.";
}

std::string NegativeReview(const Topic& topic) {
  return "I was disappointed by the session on " + topic.name +
         ". The material felt confusing, dull, and poorly organized.";
}

}  // namespace

std::string ContentEngine::ContextSentence(Category category,
                                           const Topic& topic,
                                           Rng* rng) const {
  static const std::vector<std::string> kScaffolds = {
      "Assume the reader is a curious beginner with no background in %D.",
      "Imagine you are a patient teacher preparing material on %D.",
      "Keep the answer under 200 words and use plain language.",
      "Include at least one concrete example to support your answer.",
      "Structure the answer so each point builds on the previous one.",
      "Think through the question step by step before answering.",
  };
  (void)category;
  std::string scaffold = rng->Pick(kScaffolds);
  return strings::ReplaceAll(scaffold, "%D", topic.domain);
}

std::vector<std::string> ContentEngine::ExplanationSentences(
    const Topic& topic, Rng* rng, size_t count,
    const std::string& avoid) const {
  static const std::vector<std::string> kMarkers = {
      "For example, ", "Note that ", "In addition, ", "More specifically, ",
      "As background, ", "It also helps to know that ",
  };
  std::vector<std::string> out;
  const std::string avoid_lower = strings::Lower(avoid);
  // Deterministic rotation through details starting at a random offset.
  const size_t start = static_cast<size_t>(
      rng->NextBelow(topic.details.size()));
  for (size_t i = 0; i < topic.details.size() && out.size() < count; ++i) {
    const std::string& detail =
        topic.details[(start + i) % topic.details.size()];
    if (strings::Contains(avoid_lower, strings::Lower(detail))) continue;
    if (rng->NextBool(0.5)) {
      out.push_back(kMarkers[(start + i) % kMarkers.size()] +
                    Decapitalize(detail));
    } else {
      out.push_back(detail);
    }
  }
  return out;
}

std::string ContentEngine::ClosingLine(Rng* rng) const {
  static const std::vector<std::string> kClosings = {
      "I hope this helps — feel free to ask if anything is unclear!",
      "Hope this helps; happy to expand on any point.",
      "Let me know if you would like more detail on any step.",
      "I hope you find this useful, and good luck with your project!",
  };
  return rng->Pick(kClosings);
}

std::string ContentEngine::InstructionText(Category category,
                                           const Topic& topic,
                                           Rng* rng) const {
  auto pick = [&](std::initializer_list<const char*> options) {
    std::vector<std::string> list(options.begin(), options.end());
    return strings::ReplaceAll(rng->Pick(list), "%T", topic.name);
  };
  switch (category) {
    case Category::kInformationExtraction:
      return pick({"Extract the key facts from the following passage about %T.",
                   "List the main facts stated in this passage about %T."});
    case Category::kGrammarCorrection:
      return pick({"Correct the grammar and spelling in the following "
                   "sentence about %T.",
                   "Fix the errors in this sentence about %T."});
    case Category::kSummarization:
      return pick({"Summarize the following passage about %T in one sentence.",
                   "Give a one-sentence summary of this passage about %T."});
    case Category::kParaphrasing:
      return pick({"Paraphrase the following sentence about %T.",
                   "Rewrite this sentence about %T in your own words."});
    case Category::kTranslation:
      return pick({"Translate the following sentence about %T into French.",
                   "Render this sentence about %T in French."});
    case Category::kTextClassification:
      return pick({"Classify the following passage about %T into one of: "
                   "science, history, technology, business, arts, daily life.",
                   "Which domain does this passage about %T belong to: "
                   "science, history, technology, business, arts, or daily "
                   "life?"});
    case Category::kSentimentAnalysis:
      return pick({"Determine whether the sentiment of the following review "
                   "is positive or negative.",
                   "Is the sentiment of this review positive or negative?"});
    case Category::kKeywordExtraction:
      return pick({"Extract the most important keywords from the following "
                   "passage about %T.",
                   "List the keywords of this passage about %T."});
    case Category::kSentenceCompletion:
      return pick({"Complete the following sentence about %T.",
                   "Finish this sentence about %T."});
    case Category::kSpellingCorrection:
      return pick({"Correct the spelling mistakes in the following sentence "
                   "about %T.",
                   "Fix the misspelled words in this sentence about %T."});
    case Category::kTextSimplification:
      return pick({"Simplify the following sentence about %T so a child "
                   "could understand it.",
                   "Rewrite this sentence about %T in simpler language."});
    case Category::kDataFormatting:
      return pick({"Convert the following facts about %T into a bulleted "
                   "list.",
                   "Reformat this prose about %T as a bulleted list."});
    case Category::kTableToText:
      return pick({"Write one sentence describing the following table about "
                   "%T.",
                   "Describe the content of this table about %T in a "
                   "sentence."});
    case Category::kEntityRecognition:
      return pick({"Identify the named entities in the following sentence "
                   "about %T.",
                   "List the entities mentioned in this sentence about %T."});
    case Category::kOrdering:
      return pick({"Arrange the following points about %T in a logical "
                   "order.",
                   "Put these statements about %T into a sensible order."});
    case Category::kComparison: {
      const Topic& other = NeighborTopic(topic);
      return strings::ReplaceAll(
          pick({"Compare %T with %O in a short paragraph.",
                "What are the key differences between %T and %O?"}),
          "%O", other.name);
    }
    case Category::kGeneralQa:
      return pick({"What is %T?", "Explain %T briefly.",
                   "Can you describe %T?"});
    case Category::kInDomainQa:
      return strings::ReplaceAll(
          pick({"In the context of %D, explain the significance of %T.",
                "Why does %T matter within %D?"}),
          "%D", topic.domain);
    case Category::kScienceQa:
      return pick({"From a scientific perspective, how does %T work?",
                   "Explain the science behind %T."});
    case Category::kHistoryQa:
      return pick({"What is the historical importance of %T?",
                   "Describe the history of %T."});
    case Category::kMathProblem: {
      ArithProblem problem;
      problem.lhs = rng->NextInt(12, 97);
      problem.rhs = rng->NextInt(8, 89);
      const char ops[3] = {'+', '-', '*'};
      problem.op = ops[rng->NextBelow(3)];
      if (problem.op == '*') {
        problem.lhs = rng->NextInt(3, 19);
        problem.rhs = rng->NextInt(4, 24);
      }
      return "Calculate " + problem.Expression() +
             " and show your reasoning.";
    }
    case Category::kLogicalReasoning:
      return pick({"Premise 1: Every introductory course on %T includes "
                   "practical examples. Premise 2: This course is an "
                   "introductory course on %T. What follows?",
                   "All guides about %T recommend starting with the basics. "
                   "This book is a guide about %T. What can you conclude?"});
    case Category::kCoding: {
      const CodeTask& task = CodeTaskFor(topic);
      return "Write a Python function that " + task.description + ".";
    }
    case Category::kCodeExplanation:
      return pick({"Explain what the following Python function does.",
                   "Describe the behaviour of this Python function."});
    case Category::kDebuggingHelp:
      return pick({"Find and fix the bug in the following Python function.",
                   "This Python function is buggy. Identify the problem and "
                   "correct it."});
    case Category::kHowToGuide:
      return pick({"Give a step-by-step guide to getting started with %T.",
                   "How do I get started with %T? Provide concrete steps."});
    case Category::kRecommendation:
      return pick({"Recommend three practices for someone who wants to learn "
                   "about %T.",
                   "Suggest three ways to build a solid understanding of "
                   "%T."});
    case Category::kDialogueCompletion:
      return pick({"Continue the following dialogue naturally.",
                   "Write the next line of this conversation."});
    case Category::kOpinion:
      return pick({"What is your view on the importance of %T?",
                   "Do you think %T deserves more public attention? Why?"});
    case Category::kHealthAdvice:
      return pick({"Share general guidance about %T, with appropriate "
                   "caution.",
                   "What general advice can you give about %T?"});
    case Category::kStoryWriting:
      return pick({"Write a short story inspired by %T.",
                   "Compose a brief story in which %T plays a central "
                   "role."});
    case Category::kPoemWriting:
      return pick({"Write a short poem about %T.",
                   "Compose a four-line poem about %T."});
    case Category::kCopywriting:
      return pick({"Write a product description for an online course about "
                   "%T.",
                   "Draft marketing copy for a beginner's course on %T."});
    case Category::kEmailDrafting:
      return pick({"Draft a professional email inviting colleagues to a "
                   "lunchtime talk about %T.",
                   "Write a polite email announcing a workshop on %T."});
    case Category::kBrainstorming:
      return pick({"Brainstorm five ideas related to %T.",
                   "List five creative ideas connected to %T."});
    case Category::kNaming:
      return pick({"Suggest three names for a podcast about %T.",
                   "Propose three titles for a newsletter about %T."});
    case Category::kSloganWriting:
      return pick({"Write a slogan for a campaign promoting %T.",
                   "Create a catchy slogan about %T."});
    case Category::kJokeWriting:
      return pick({"Write a light-hearted joke about %T.",
                   "Tell a gentle joke involving %T."});
    case Category::kLyricsWriting:
      return pick({"Write a short song verse about %T.",
                   "Compose four lines of song lyrics about %T."});
    case Category::kRoleplay:
      return pick({"Pretend you are a museum guide introducing %T to "
                   "visitors.",
                   "Act as a friendly tour guide presenting %T."});
    case Category::kEssayWriting:
      return pick({"Write a short essay about %T.",
                   "Compose a brief essay discussing %T."});
    case Category::kSpeechWriting:
      return pick({"Write the opening of a speech about %T.",
                   "Draft the introduction of a talk on %T."});
  }
  return "Explain " + topic.name + ".";
}

std::string ContentEngine::InputText(Category category, const Topic& topic,
                                     Rng* rng) const {
  switch (category) {
    case Category::kInformationExtraction:
    case Category::kSummarization:
    case Category::kKeywordExtraction:
    case Category::kTextClassification:
      return topic.fact + " " + topic.details[0] + " " + topic.details[1];
    case Category::kGrammarCorrection:
      return Decapitalize(CorruptSpelling(rng->Pick(topic.details)));
    case Category::kSpellingCorrection:
      return CorruptSpelling(rng->Pick(topic.details));
    case Category::kParaphrasing:
    case Category::kTranslation:
    case Category::kTextSimplification:
    case Category::kEntityRecognition:
      return rng->Pick(topic.details);
    case Category::kSentimentAnalysis:
      return rng->NextBool(0.5) ? PositiveReview(topic)
                                : NegativeReview(topic);
    case Category::kSentenceCompletion:
      return FirstClause(topic.fact) + " ...";
    case Category::kDataFormatting:
      return topic.details[0] + " " + topic.details[1] + " " +
             topic.details[2];
    case Category::kTableToText:
      return "subject | domain\n" + topic.name + " | " + topic.domain;
    case Category::kOrdering:
      return "A) " + topic.details[2] + "\nB) " + topic.details[0] + "\nC) " +
             topic.details[1];
    case Category::kCodeExplanation:
      return CodeTaskFor(topic).code;
    case Category::kDebuggingHelp:
      return CodeTaskFor(topic).buggy_code;
    case Category::kDialogueCompletion:
      return "A: I have been curious about " + topic.name +
             " lately.\nB: What would you like to know?\nA: Just the "
             "essentials to get oriented.";
    default:
      return "";
  }
}

std::string ContentEngine::CoreAnswer(Category category, const Topic& topic,
                                      const std::string& instruction_text,
                                      const std::string& input_text,
                                      Rng* rng) const {
  switch (category) {
    case Category::kInformationExtraction: {
      std::string out = "The key facts are:";
      for (const std::string& s : tokenizer::SplitSentences(input_text)) {
        out += "\n- " + s;
      }
      return out;
    }
    case Category::kGrammarCorrection:
      return "Corrected sentence: " +
             strings::Capitalize(FixSpelling(input_text));
    case Category::kSpellingCorrection:
      return "Corrected sentence: " + FixSpelling(input_text);
    case Category::kSummarization:
      return "In short, " + Decapitalize(topic.fact);
    case Category::kParaphrasing:
      return "In other words: " + input_text;
    case Category::kTranslation:
      return "French translation: [FR] " + input_text;
    case Category::kTextClassification:
      return "Category: " + topic.domain + ".";
    case Category::kSentimentAnalysis: {
      const bool positive = strings::Contains(input_text, "enjoyed") ||
                            strings::Contains(input_text, "clear");
      return positive
                 ? "Sentiment: positive. The review praises the material as "
                   "clear and engaging."
                 : "Sentiment: negative. The review criticizes the material "
                   "as confusing and dull.";
    }
    case Category::kKeywordExtraction:
      return "Keywords: " + topic.name + ", " + topic.domain + ".";
    case Category::kSentenceCompletion:
      return topic.fact;
    case Category::kTextSimplification:
      return "Simply put: " + Decapitalize(topic.fact);
    case Category::kDataFormatting: {
      std::string out = "Here is the list:";
      for (const std::string& s : tokenizer::SplitSentences(input_text)) {
        out += "\n- " + s;
      }
      return out;
    }
    case Category::kTableToText:
      return "The table shows that " + topic.name + " belongs to the " +
             topic.domain + " domain.";
    case Category::kEntityRecognition:
      return "Entities: " + topic.name + " (" + topic.domain + ").";
    case Category::kOrdering:
      return "A sensible order is:\n1. " + topic.details[0] + "\n2. " +
             topic.details[1] + "\n3. " + topic.details[2];
    case Category::kComparison: {
      const Topic& other = NeighborTopic(topic);
      return topic.fact + " By contrast, " + Decapitalize(other.fact) +
             " The former sits in the " + topic.domain +
             " domain while the latter belongs to " + other.domain + ".";
    }
    case Category::kGeneralQa:
    case Category::kInDomainQa:
    case Category::kScienceQa:
    case Category::kHistoryQa:
      return topic.fact;
    case Category::kMathProblem: {
      auto problem = ParseArithProblem(instruction_text);
      if (!problem) return "The result cannot be determined.";
      const int64_t answer = problem->Answer();
      return "Let's work through it: " + problem->Expression() + " = " +
             std::to_string(answer) + ". The answer is " +
             std::to_string(answer) + ".";
    }
    case Category::kLogicalReasoning: {
      // Echo the predicate of whichever premise template was used so the
      // conclusion actually answers the stated syllogism.
      if (strings::Contains(instruction_text, "practical examples")) {
        return "It follows that this course also includes practical "
               "examples, because it belongs to the class the first premise "
               "describes: introductory courses on " + topic.name + ".";
      }
      return "It follows that this book also recommends starting with the "
             "basics, because it is a guide about " + topic.name +
             " and the first premise covers all such guides.";
    }
    case Category::kCoding: {
      // Answer the task the instruction actually asked for; the
      // topic-derived task is only a fallback for instruction text that
      // names no known task.
      const CodeTask* task = FindCodeTaskIn(instruction_text);
      if (task == nullptr) task = &CodeTaskFor(topic);
      return "Here is a Python function that " + task->description +
             ":\n```python\n" + task->code + "\n```";
    }
    case Category::kCodeExplanation: {
      const CodeTask* task = FindCodeTaskIn(input_text);
      if (task == nullptr) task = &CodeTaskFor(topic);
      return "This function " + task->description + ". " +
             task->explanation[0];
    }
    case Category::kDebuggingHelp: {
      const CodeTask* task = FindCodeTaskIn(input_text);
      if (task == nullptr) task = &CodeTaskFor(topic);
      return "The bug: " + task->bug_note + ". Corrected version:\n```python\n" +
             task->code + "\n```";
    }
    case Category::kHowToGuide:
      return "Here is a practical way to begin:\n1. " + topic.details[0] +
             "\n2. " + topic.details[1] + "\n3. " + topic.details[2];
    case Category::kRecommendation:
      return "Three practices that work well:\n1. " + topic.details[0] +
             "\n2. " + topic.details[1] + "\n3. " + topic.details[2];
    case Category::kDialogueCompletion:
      return "B: Happy to share the essentials. " + topic.fact;
    case Category::kOpinion:
      return "I believe " + topic.name + " deserves real attention. " +
             topic.details[0];
    case Category::kHealthAdvice:
      return topic.fact +
             " Please remember this is general information, not a "
             "substitute for professional advice.";
    case Category::kStoryWriting:
      return "Maya had always wondered about " + topic.name + ". " +
             topic.details[0] +
             " That evening, watching the city settle into dusk, she "
             "finally understood: " + Decapitalize(topic.fact);
    case Category::kPoemWriting:
      return "Quiet minds that seek to see,\nfind in " + topic.name +
             " a key;\nwhat the patient learner knows,\nline by line, the "
             "insight grows.";
    case Category::kCopywriting:
      return "Discover " + topic.name +
             " the approachable way! Our self-paced course takes you from "
             "curious beginner to confident practitioner. " +
             topic.details[0];
    case Category::kEmailDrafting:
      return "Subject: Lunchtime talk on " + topic.name +
             "\n\nDear colleagues,\n\nYou are warmly invited to a short "
             "lunchtime talk about " + topic.name + " this Thursday. " +
             topic.details[0] + "\n\nBest regards,\nThe Learning Team";
    case Category::kBrainstorming:
      return "Five ideas:\n1. Start a study group focused on " + topic.name +
             ".\n2. " + topic.details[0] + "\n3. " + topic.details[1] +
             "\n4. " + topic.details[2] +
             "\n5. Interview a local expert and share the notes.";
    case Category::kNaming: {
      const std::string cap = strings::Capitalize(topic.name);
      return "Three name ideas:\n1. \"" + cap + " Weekly\"\n2. \"The " + cap +
             " Companion\"\n3. \"Field Notes on " + cap + "\"";
    }
    case Category::kSloganWriting: {
      std::string slogan = "\"";
      slogan += strings::Capitalize(topic.name);
      slogan += ": understand it today, use it tomorrow.\"";
      return slogan;
    }
    case Category::kJokeWriting:
      return "Why did the student bring a ladder to the lecture on " +
             topic.name + "? Because they heard the subject was on a whole "
             "new level!";
    case Category::kLyricsWriting:
      return "Verse:\nWe chased the dawn to learn the way,\nof " +
             topic.name + " come what may,\nwith every page a wider view,\n"
             "the old world suddenly looked new.";
    case Category::kRoleplay:
      return "Welcome, everyone! Right this way. Before us is our exhibit "
             "on " + topic.name + ". " + topic.fact +
             " Take a moment to look closely — there is more here than "
             "first meets the eye.";
    case Category::kEssayWriting:
      return strings::Capitalize(topic.name) +
             " rewards a closer look. " + topic.fact + " " +
             topic.details[0] + " " + topic.details[1] +
             " Taken together, these points show why the subject continues "
             "to matter.";
    case Category::kSpeechWriting:
      return "Friends and colleagues, thank you for being here. Today I "
             "want to talk about " + topic.name + ", and why it deserves "
             "ten minutes of your attention. " + topic.fact;
  }
  (void)rng;
  return topic.fact;
}

InstructionPair ContentEngine::BuildCleanPair(uint64_t id, Category category,
                                              const Topic& topic,
                                              const ResponseRichness& richness,
                                              Rng* rng) const {
  InstructionPair pair;
  pair.id = id;
  pair.category = category;
  pair.instruction = InstructionText(category, topic, rng);
  pair.input = InputText(category, topic, rng);
  if (richness.context) {
    pair.instruction += ' ';
    pair.instruction += ContextSentence(category, topic, rng);
  }
  std::string response =
      CoreAnswer(category, topic, pair.instruction, pair.input, rng);
  std::vector<std::string> explanations;
  if (IsCodeCategory(category)) {
    const CodeTask& task = CodeTaskFor(topic);
    for (size_t i = 0; i < richness.explanations && i < task.explanation.size();
         ++i) {
      explanations.push_back(task.explanation[i]);
    }
  } else if (category == Category::kMathProblem) {
    if (richness.explanations > 0) {
      explanations.push_back(
          "Breaking the computation into smaller steps makes it easy to "
          "verify each part of the result.");
    }
  } else {
    explanations =
        ExplanationSentences(topic, rng, richness.explanations, response);
  }
  for (const std::string& sentence : explanations) {
    // List-style cores already contain some detail sentences; avoid
    // repeating them verbatim as explanations.
    if (strings::Contains(strings::Lower(response),
                          strings::Lower(sentence))) {
      continue;
    }
    response += " " + sentence;
  }
  if (richness.closing) {
    response += ' ';
    response += ClosingLine(rng);
  }
  pair.output = response;
  return pair;
}

const Topic& ContentEngine::TopicFor(const InstructionPair& pair) const {
  const Topic* found = FindTopicIn(pair.FullInstruction() + " " + pair.output);
  if (found != nullptr) return *found;
  // Deterministic fallback keyed by id so ambiguous pairs get a stable,
  // plausible subject (the expert "chooses" a topic when disambiguating).
  const auto& topics = Topics();
  return topics[pair.id % topics.size()];
}

std::string ContentEngine::RebuildResponse(const InstructionPair& pair,
                                           const ResponseRichness& richness,
                                           Rng* rng) const {
  const Topic& topic = TopicFor(pair);
  std::string response = CoreAnswer(pair.category, topic, pair.instruction,
                                    pair.input, rng);
  std::vector<std::string> explanations;
  if (IsCodeCategory(pair.category)) {
    const CodeTask* task = FindCodeTaskIn(pair.instruction + " " + pair.input);
    if (task == nullptr) task = &CodeTaskFor(topic);
    for (size_t i = 0; i < richness.explanations && i < task->explanation.size();
         ++i) {
      explanations.push_back(task->explanation[i]);
    }
  } else if (pair.category == Category::kMathProblem) {
    if (richness.explanations > 0) {
      explanations.push_back(
          "Breaking the computation into smaller steps makes it easy to "
          "verify each part of the result.");
    }
  } else {
    explanations =
        ExplanationSentences(topic, rng, richness.explanations, response);
  }
  for (const std::string& sentence : explanations) {
    response += " " + sentence;
  }
  if (richness.closing) {
    response += ' ';
    response += ClosingLine(rng);
  }
  return response;
}

}  // namespace synth
}  // namespace coachlm
