#ifndef COACHLM_PLATFORM_PLATFORM_H_
#define COACHLM_PLATFORM_PLATFORM_H_

#include <string>
#include <vector>

#include "coach/coach_lm.h"
#include "common/clock.h"
#include "common/execution.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "synth/generator.h"

namespace coachlm {
namespace platform {

/// \brief A raw online user case as collected by the LLM serving stack
/// (Fig. 6): the user query and the deployed model's response, wrapped in
/// log noise.
struct UserCase {
  std::string raw_log;
  uint64_t case_id = 0;
};

/// \brief Configuration of the data-management pipeline.
struct PlatformConfig {
  /// Batch size (the paper's production batch is ~40k pairs).
  size_t batch_size = 40000;
  uint64_t seed = 404;
  /// Fixed review cost per pair for a human annotator (person-days).
  /// Calibrated with the edit cost so the pre-CoachLM batch cleans the
  /// paper's ~80 pairs/person-day and the CoachLM-precursor batch ~100.
  double review_cost_pd = 0.0092;
  /// Post-editing cost per character of remaining edit distance
  /// (person-days/char).
  double edit_cost_per_char_pd = 0.0000164;
  /// Proficiency improvement of annotators between consecutive batches
  /// (deducted when reporting the net CoachLM gain, as in Section IV-A).
  double annotator_proficiency_gain = 0.04;
  /// Threads for the platform's execution context: collection, parsing,
  /// CoachLM inference, and annotation all run on it (0 = hardware).
  /// Every stage derives per-case RNG streams, so the batch is
  /// byte-identical at any thread count.
  size_t inference_threads = 0;
  /// Time source for the throughput numbers in BatchReport (non-owning;
  /// nullptr = Clock::System()). Tests inject a FakeClock so
  /// coach_seconds/coach_samples_per_sec are asserted exactly instead of
  /// smoke-checked against the wall clock.
  Clock* clock = nullptr;
};

/// \brief Throughput report for one cleaned batch.
struct BatchReport {
  size_t pairs = 0;
  bool with_coach = false;
  /// Cases lost during collection or parsing (unparseable logs plus
  /// permanently-failed collection records).
  size_t dropped = 0;
  /// Records that exhausted retries somewhere in the batch and were routed
  /// to the runtime's quarantine log instead of aborting the batch.
  size_t quarantined = 0;
  /// Records that recovered via retry after transient faults.
  size_t recovered = 0;
  /// Wall-clock seconds spent in CoachLM inference (0 without coach).
  double coach_seconds = 0.0;
  /// CoachLM inference throughput (samples/second).
  double coach_samples_per_sec = 0.0;
  /// Total annotation effort (person-days).
  double person_days = 0.0;
  /// Cleaning throughput: accepted pairs per person-day.
  double pairs_per_person_day = 0.0;
  /// Mean remaining character edit distance annotators had to close.
  double mean_remaining_edit = 0.0;
};

/// \brief The Fig. 6 data-management system: collection -> rule scripts ->
/// (optional CoachLM precursor) -> human annotation.
class DataPlatform {
 public:
  explicit DataPlatform(PlatformConfig config);

  /// Collects a batch of raw user cases from the deployed LLMs (simulated
  /// online traffic; noisy queries, LLM-generated responses). Collection
  /// runs under \p runtime (nullptr = PipelineRuntime::Default()) at
  /// FaultSite::kCollect: transient faults retry to identical bytes and
  /// permanently-failed cases are dropped + quarantined.
  std::vector<UserCase> CollectUserCases(
      PipelineRuntime* runtime = nullptr) const;

  /// Rule-based scripts: parse logs into raw instruction pairs and drop
  /// unparseable cases. Returns the raw dataset. Under an *active*
  /// \p runtime each parse runs at FaultSite::kParse and every dropped
  /// case — unparseable log or injected permanent fault — lands in the
  /// quarantine log with its ParseError / fault provenance.
  InstructionDataset ParseWithRuleScripts(
      const std::vector<UserCase>& cases, size_t* dropped = nullptr,
      PipelineRuntime* runtime = nullptr) const;

  /// Ingests an already-parsed external corpus (REInstruct-style: raw
  /// instruction data built elsewhere, arriving as JSON/JSONL/sharded
  /// binary) through the same admission bar as the rule scripts: each
  /// record runs under \p runtime at FaultSite::kParse, oversized or
  /// malformed pairs are dropped (counted in \p dropped) and quarantined
  /// by an active runtime, and ingestion never aborts on a bad record.
  [[nodiscard]] Result<InstructionDataset> IngestFromReader(
      RecordReader* reader, size_t* dropped = nullptr,
      PipelineRuntime* runtime = nullptr) const;

  /// Runs a full cleaning batch. When \p coach is non-null the CoachLM
  /// precursor revises raw pairs before human annotation, cutting the
  /// post-editing distance annotators must close.
  ///
  /// \p runtime (nullptr = PipelineRuntime::Default()) threads fault
  /// tolerance through every stage of the batch; the report's
  /// dropped/quarantined/recovered counters summarize what it absorbed.
  /// \p checkpoint (optional) journals the CoachLM revision pass (the
  /// batch's dominant stage) for crash-safe resume.
  BatchReport RunCleaningBatch(const coach::CoachLm* coach,
                               PipelineRuntime* runtime = nullptr,
                               coachlm::StageCheckpointer* checkpoint =
                                   nullptr) const;

  /// Net efficiency improvement of a with-coach batch over a baseline
  /// batch, after deducting the annotator-proficiency effect
  /// (Section IV-A reports 15-20%).
  double NetImprovement(const BatchReport& baseline,
                        const BatchReport& with_coach) const;

  const PlatformConfig& config() const { return config_; }
  const ExecutionContext& exec() const { return exec_; }

 private:
  PlatformConfig config_;
  synth::SynthCorpusGenerator traffic_;
  /// One long-lived context for every corpus-scale stage of the platform
  /// (sized by PlatformConfig::inference_threads).
  ExecutionContext exec_;
};

}  // namespace platform
}  // namespace coachlm

#endif  // COACHLM_PLATFORM_PLATFORM_H_
