#include "platform/platform.h"

#include <chrono>

#include "expert/reviser.h"
#include "lm/pair_text.h"
#include "text/edit_distance.h"
#include "text/string_util.h"

namespace coachlm {
namespace platform {
namespace {

synth::CorpusConfig TrafficConfig(const PlatformConfig& config) {
  synth::CorpusConfig traffic;
  traffic.size = config.batch_size;
  traffic.seed = config.seed;
  // Production traffic is noisier than a curated corpus: user queries are
  // messy and responses come from the deployed (imperfect) LLM.
  traffic.deficiency_rate = 0.55;
  traffic.exclusion_rate = 0.08;
  return traffic;
}

}  // namespace

DataPlatform::DataPlatform(PlatformConfig config)
    : config_(std::move(config)), traffic_(TrafficConfig(config_)) {}

std::vector<UserCase> DataPlatform::CollectUserCases() const {
  std::vector<UserCase> cases;
  cases.reserve(config_.batch_size);
  Rng rng(config_.seed);
  for (size_t i = 0; i < config_.batch_size; ++i) {
    InstructionPair pair;
    std::vector<synth::DefectType> defects;
    traffic_.GeneratePair(static_cast<uint64_t>(i + 1), &rng, &pair,
                          &defects);
    UserCase user_case;
    user_case.case_id = pair.id;
    // Wrap in serving-log noise: session header plus the serialized pair.
    user_case.raw_log = "[session=" + std::to_string(1000 + i) +
                        " model=prod-v2]\n" + lm::SerializePair(pair);
    // A slice of traffic is truncated/garbled in transit.
    if (rng.NextBool(0.015)) {
      user_case.raw_log =
          user_case.raw_log.substr(0, user_case.raw_log.size() / 3);
    }
    cases.push_back(std::move(user_case));
  }
  return cases;
}

InstructionDataset DataPlatform::ParseWithRuleScripts(
    const std::vector<UserCase>& cases, size_t* dropped) const {
  InstructionDataset dataset;
  size_t drop_count = 0;
  for (const UserCase& user_case : cases) {
    // Strip the session header line.
    const size_t newline = user_case.raw_log.find('\n');
    if (newline == std::string::npos) {
      ++drop_count;
      continue;
    }
    const std::string body = user_case.raw_log.substr(newline + 1);
    auto parsed = lm::DeserializePair(body);
    if (!parsed.ok() || strings::Trim(parsed->instruction).empty()) {
      ++drop_count;
      continue;
    }
    InstructionPair pair = std::move(parsed).ValueOrDie();
    pair.id = user_case.case_id;
    dataset.Add(std::move(pair));
  }
  if (dropped != nullptr) *dropped = drop_count;
  return dataset;
}

BatchReport DataPlatform::RunCleaningBatch(const coach::CoachLm* coach) const {
  BatchReport report;
  report.with_coach = coach != nullptr;

  const std::vector<UserCase> cases = CollectUserCases();
  InstructionDataset raw = ParseWithRuleScripts(cases);

  InstructionDataset incoming = raw;
  if (coach != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    coach::RevisionPassStats stats;
    incoming = coach->ReviseDataset(raw, {}, &stats,
                                    config_.inference_threads);
    const auto end = std::chrono::steady_clock::now();
    report.coach_seconds =
        std::chrono::duration<double>(end - start).count();
    if (report.coach_seconds > 0) {
      report.coach_samples_per_sec =
          static_cast<double>(raw.size()) / report.coach_seconds;
    }
  }

  // Human annotation: each pair is post-edited until it meets the
  // acceptance criteria. Effort = fixed review + per-character editing of
  // whatever distance remains between the incoming pair and its accepted
  // form. The accepted form is what an expert annotator would produce.
  synth::ContentEngine engine;
  expert::ExpertReviser annotator(&engine, /*target_score=*/95.0);
  Rng rng(config_.seed ^ 0xA5A5A5A5ULL);
  double total_edit_chars = 0.0;
  for (size_t i = 0; i < incoming.size(); ++i) {
    const expert::RevisionOutcome outcome =
        annotator.Revise(incoming[i], &rng);
    const InstructionPair& accepted =
        outcome.revised ? outcome.revised_pair : incoming[i];
    const size_t remaining =
        editdist::CharDistance(incoming[i].FullInstruction(),
                               accepted.FullInstruction()) +
        editdist::CharDistance(incoming[i].output, accepted.output);
    total_edit_chars += static_cast<double>(remaining);
  }
  report.pairs = incoming.size();
  report.mean_remaining_edit =
      incoming.empty() ? 0.0
                       : total_edit_chars / static_cast<double>(incoming.size());
  report.person_days =
      static_cast<double>(incoming.size()) * config_.review_cost_pd +
      total_edit_chars * config_.edit_cost_per_char_pd;
  if (report.person_days > 0) {
    report.pairs_per_person_day =
        static_cast<double>(incoming.size()) / report.person_days;
  }
  return report;
}

double DataPlatform::NetImprovement(const BatchReport& baseline,
                                    const BatchReport& with_coach) const {
  if (baseline.pairs_per_person_day <= 0) return 0.0;
  const double gross = with_coach.pairs_per_person_day /
                           baseline.pairs_per_person_day - 1.0;
  // Deduct the improvement attributable to annotators getting better at
  // the task between batches (Section IV-A's "enhanced proficiency").
  return gross - config_.annotator_proficiency_gain;
}

}  // namespace platform
}  // namespace coachlm
