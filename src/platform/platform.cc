#include "platform/platform.h"

#include <cstdint>
#include <optional>

#include "common/metrics.h"
#include "common/trace.h"
#include "expert/reviser.h"
#include "json/parse_limits.h"
#include "lm/pair_text.h"
#include "text/edit_distance.h"
#include "text/string_util.h"

namespace coachlm {
namespace platform {
namespace {

synth::CorpusConfig TrafficConfig(const PlatformConfig& config) {
  synth::CorpusConfig traffic;
  traffic.size = config.batch_size;
  traffic.seed = config.seed;
  // Production traffic is noisier than a curated corpus: user queries are
  // messy and responses come from the deployed (imperfect) LLM.
  traffic.deficiency_rate = 0.55;
  traffic.exclusion_rate = 0.08;
  return traffic;
}

}  // namespace

DataPlatform::DataPlatform(PlatformConfig config)
    : config_(std::move(config)),
      traffic_(TrafficConfig(config_)),
      exec_(config_.inference_threads) {}

std::vector<UserCase> DataPlatform::CollectUserCases(
    PipelineRuntime* runtime) const {
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  // Each case runs under its own id-derived stream (generation plus the
  // truncation coin), so collection parallelizes deterministically.
  auto build_case = [&](size_t i) {
    const uint64_t id = static_cast<uint64_t>(i + 1);
    Rng rng = DeriveRng(config_.seed, id);
    InstructionPair pair;
    std::vector<synth::DefectType> defects;
    traffic_.GeneratePair(id, &rng, &pair, &defects);
    UserCase user_case;
    user_case.case_id = pair.id;
    // Wrap in serving-log noise: session header plus the serialized pair.
    user_case.raw_log = "[session=" + std::to_string(1000 + i) +
                        " model=prod-v2]\n" + lm::SerializePair(pair);
    // A slice of traffic is truncated/garbled in transit.
    if (rng.NextBool(0.015)) {
      user_case.raw_log =
          user_case.raw_log.substr(0, user_case.raw_log.size() / 3);
    }
    return user_case;
  };
  if (!runtime->active()) {
    return exec_.ParallelMap(config_.batch_size, build_case);
  }
  // Fault-tolerant path: a case whose collection fails permanently is lost
  // traffic — dropped from the batch, recorded in quarantine by Run().
  struct Slot {
    UserCase user_case;
    bool dropped = false;
  };
  std::vector<Slot> slots =
      exec_.ParallelMap(config_.batch_size, [&](size_t i) {
        Slot slot;
        const Status status =
            runtime->Run(FaultSite::kCollect, static_cast<uint64_t>(i + 1),
                         [&] {
                           slot.user_case = build_case(i);
                           return Status::OK();
                         });
        slot.dropped = !status.ok();
        return slot;
      });
  std::vector<UserCase> cases;
  cases.reserve(slots.size());
  for (Slot& slot : slots) {
    if (!slot.dropped) cases.push_back(std::move(slot.user_case));
  }
  return cases;
}

InstructionDataset DataPlatform::ParseWithRuleScripts(
    const std::vector<UserCase>& cases, size_t* dropped,
    PipelineRuntime* runtime) const {
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  // Parse in parallel; fold in case order so the dataset (and the drop
  // count) is identical to the serial pass. Each parse runs under the
  // runtime at FaultSite::kParse: a genuinely unparseable log fails with a
  // non-transient ParseError, which an active runtime quarantines with
  // provenance (an inactive runtime just drops it, the legacy behavior).
  const std::vector<std::optional<InstructionPair>> parsed_cases =
      exec_.ParallelMap(
          cases.size(), [&](size_t i) -> std::optional<InstructionPair> {
            const UserCase& user_case = cases[i];
            std::optional<InstructionPair> out;
            // Per-item failures are absorbed, not propagated: the runtime
            // quarantines exhausted records and `out` stays empty, which
            // the caller counts as a drop.
            (void)runtime->Run(FaultSite::kParse, user_case.case_id, [&] {
              // Record-size gate first: an oversized raw log is rejected on
              // its length alone (kResourceExhausted, non-transient, so an
              // active runtime quarantines it without burning retries) —
              // never parsed, never copied.
              const size_t record_cap =
                  json::ParseLimits::Default().max_record_bytes;
              if (user_case.raw_log.size() > record_cap) {
                return Status::ResourceExhausted(
                    "raw log record of " +
                    std::to_string(user_case.raw_log.size()) +
                    " bytes exceeds max_record_bytes=" +
                    std::to_string(record_cap));
              }
              // Strip the session header line.
              const size_t newline = user_case.raw_log.find('\n');
              if (newline == std::string::npos) {
                return Status::ParseError("log record has no body");
              }
              const std::string body = user_case.raw_log.substr(newline + 1);
              auto parsed = lm::DeserializePair(body);
              if (!parsed.ok()) return parsed.status();
              if (strings::Trim(parsed->instruction).empty()) {
                return Status::ParseError("parsed pair has empty instruction");
              }
              InstructionPair pair = std::move(parsed).ValueOrDie();
              pair.id = user_case.case_id;
              out = std::move(pair);
              return Status::OK();
            });
            return out;
          });
  InstructionDataset dataset;
  size_t drop_count = 0;
  for (const std::optional<InstructionPair>& pair : parsed_cases) {
    if (!pair.has_value()) {
      ++drop_count;
      continue;
    }
    dataset.Add(*pair);
  }
  if (dropped != nullptr) *dropped = drop_count;
  return dataset;
}

Result<InstructionDataset> DataPlatform::IngestFromReader(
    RecordReader* reader, size_t* dropped, PipelineRuntime* runtime) const {
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  InstructionDataset accepted;
  if (reader->SizeHint() > 0) accepted.pairs().reserve(reader->SizeHint());
  size_t drop_count = 0;
  const size_t record_cap = json::ParseLimits::Default().max_record_bytes;
  InstructionPair pair;
  while (true) {
    COACHLM_ASSIGN_OR_RETURN(const bool more, reader->Next(&pair));
    if (!more) break;
    // Same admission bar as the rule scripts: a rejected record is a drop
    // (quarantined with provenance by an active runtime), never an abort.
    const InstructionPair& candidate = pair;
    const Status status = runtime->Run(FaultSite::kParse, candidate.id, [&] {
      if (candidate.TotalChars() > record_cap) {
        return Status::ResourceExhausted(
            "ingested pair of " + std::to_string(candidate.TotalChars()) +
            " chars exceeds max_record_bytes=" + std::to_string(record_cap));
      }
      if (!candidate.IsWellFormed()) {
        return Status::ParseError("ingested pair " +
                                  std::to_string(candidate.id) +
                                  " lacks an instruction or output");
      }
      return Status::OK();
    });
    if (status.ok()) {
      accepted.Add(pair);
    } else {
      ++drop_count;
    }
  }
  if (dropped != nullptr) *dropped = drop_count;
  return accepted;
}

BatchReport DataPlatform::RunCleaningBatch(
    const coach::CoachLm* coach, PipelineRuntime* runtime,
    coachlm::StageCheckpointer* checkpoint) const {
  const StageSpan span("platform");
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  BatchReport report;
  report.with_coach = coach != nullptr;
  const size_t quarantined_before = runtime->quarantined_records();
  const size_t recovered_before = runtime->recovered_records();

  const std::vector<UserCase> cases = CollectUserCases(runtime);
  CountMetric("platform.cases_collected", cases.size());
  report.dropped += config_.batch_size - cases.size();
  size_t parse_dropped = 0;
  InstructionDataset raw = ParseWithRuleScripts(cases, &parse_dropped, runtime);
  report.dropped += parse_dropped;

  InstructionDataset incoming = raw;
  if (coach != nullptr) {
    Clock* clock = config_.clock != nullptr ? config_.clock : Clock::System();
    const int64_t start_micros = clock->NowMicros();
    coach::RevisionPassStats stats;
    incoming = coach->ReviseDataset(raw, {}, &stats, exec_, runtime,
                                    checkpoint);
    report.coach_seconds =
        static_cast<double>(clock->NowMicros() - start_micros) / 1e6;
    if (report.coach_seconds > 0) {
      report.coach_samples_per_sec =
          static_cast<double>(raw.size()) / report.coach_seconds;
    }
  }

  // Human annotation: each pair is post-edited until it meets the
  // acceptance criteria. Effort = fixed review + per-character editing of
  // whatever distance remains between the incoming pair and its accepted
  // form. The accepted form is what an expert annotator would produce.
  synth::ContentEngine engine;
  expert::ExpertReviser annotator(&engine, /*target_score=*/95.0);
  // One annotator stream per pair (keyed by case id, decoupled from the
  // collection streams by the tag), folded in batch order.
  const uint64_t annotate_seed = config_.seed ^ 0xA5A5A5A5ULL;
  const std::vector<double> edit_chars =
      exec_.ParallelMap(incoming.size(), [&](size_t i) {
        Rng rng = DeriveRng(annotate_seed, incoming[i].id);
        const expert::RevisionOutcome outcome =
            annotator.Revise(incoming[i], &rng);
        const InstructionPair& accepted =
            outcome.revised ? outcome.revised_pair : incoming[i];
        const size_t remaining =
            editdist::CharDistance(incoming[i].FullInstruction(),
                                   accepted.FullInstruction()) +
            editdist::CharDistance(incoming[i].output, accepted.output);
        return static_cast<double>(remaining);
      });
  double total_edit_chars = 0.0;
  for (const double chars : edit_chars) total_edit_chars += chars;
  report.pairs = incoming.size();
  report.mean_remaining_edit =
      incoming.empty() ? 0.0
                       : total_edit_chars / static_cast<double>(incoming.size());
  report.person_days =
      static_cast<double>(incoming.size()) * config_.review_cost_pd +
      total_edit_chars * config_.edit_cost_per_char_pd;
  if (report.person_days > 0) {
    report.pairs_per_person_day =
        static_cast<double>(incoming.size()) / report.person_days;
  }
  report.quarantined = runtime->quarantined_records() - quarantined_before;
  report.recovered = runtime->recovered_records() - recovered_before;
  CountMetric("platform.batches");
  CountMetric("platform.cases_dropped", report.dropped);
  CountMetric("platform.cases_quarantined", report.quarantined);
  return report;
}

double DataPlatform::NetImprovement(const BatchReport& baseline,
                                    const BatchReport& with_coach) const {
  if (baseline.pairs_per_person_day <= 0) return 0.0;
  const double gross = with_coach.pairs_per_person_day /
                           baseline.pairs_per_person_day - 1.0;
  // Deduct the improvement attributable to annotators getting better at
  // the task between batches (Section IV-A's "enhanced proficiency").
  return gross - config_.annotator_proficiency_gain;
}

}  // namespace platform
}  // namespace coachlm
