#include "testsets/testset.h"

#include <set>

#include "common/rng.h"
#include "synth/content_engine.h"
#include "synth/topic_bank.h"

namespace coachlm {
namespace testsets {
namespace {

/// Topic choice mirroring the corpus generator's domain affinities.
const synth::Topic& PickTopic(Category category, Rng* rng) {
  const auto& topics = synth::Topics();
  auto pick_domain = [&](const std::string& domain) -> const synth::Topic& {
    std::vector<const synth::Topic*> matching;
    for (const synth::Topic& t : topics) {
      if (t.domain == domain) matching.push_back(&t);
    }
    if (matching.empty()) return rng->Pick(topics);
    return *matching[rng->NextBelow(matching.size())];
  };
  switch (category) {
    case Category::kScienceQa:
      return pick_domain("science");
    case Category::kHistoryQa:
      return pick_domain("history");
    default:
      return rng->Pick(topics);
  }
}

}  // namespace

TestSet BuildTestSet(const TestSetSpec& spec) {
  TestSet set;
  set.name = spec.name;
  set.reference_source = spec.reference_source;
  set.num_categories = spec.categories.size();
  synth::ContentEngine engine;
  Rng rng(spec.seed);
  for (size_t i = 0; i < spec.size; ++i) {
    const Category category = spec.categories[i % spec.categories.size()];
    const synth::Topic& topic = PickTopic(category, &rng);
    synth::ResponseRichness richness;
    richness.explanations = spec.reference_explanations;
    richness.closing = rng.NextBool(spec.reference_closing_rate);
    // Real-world test instructions carry moderate context.
    richness.context = rng.NextBool(0.4);
    InstructionPair item = engine.BuildCleanPair(
        static_cast<uint64_t>(1000000 + i), category, topic, richness, &rng);
    set.items.Add(std::move(item));
  }
  return set;
}

TestSet CoachLm150() {
  TestSetSpec spec;
  spec.name = "CoachLM150";
  spec.reference_source = "Human";
  spec.size = 150;
  spec.categories = AllCategories();  // all 42 categories
  // Expert-written references are correct and reasonably rich but concise
  // — experts answer well without padding.
  spec.reference_explanations = 2;
  spec.reference_closing_rate = 0.35;
  spec.seed = 1501;
  return BuildTestSet(spec);
}

TestSet PandaLm170() {
  TestSetSpec spec;
  spec.name = "PandaLM170";
  spec.reference_source = "ChatGPT";
  spec.size = 170;
  spec.categories = {
      Category::kGeneralQa,      Category::kSummarization,
      Category::kParaphrasing,   Category::kInformationExtraction,
      Category::kHowToGuide,     Category::kRecommendation,
      Category::kBrainstorming,  Category::kEmailDrafting,
      Category::kOpinion,        Category::kStoryWriting,
      Category::kGrammarCorrection,
  };  // 11 categories, as in Table VI
  spec.reference_explanations = 1;
  spec.reference_closing_rate = 0.15;
  spec.seed = 1701;
  return BuildTestSet(spec);
}

TestSet Vicuna80() {
  TestSetSpec spec;
  spec.name = "Vicuna80";
  spec.reference_source = "Bard";
  spec.size = 80;
  spec.categories = {
      Category::kEssayWriting,  Category::kRoleplay,
      Category::kMathProblem,   Category::kGeneralQa,
      Category::kScienceQa,     Category::kHistoryQa,
      Category::kCoding,        Category::kLogicalReasoning,
      Category::kComparison,
  };  // 9 categories: writing, role-play, math, knowledge, ...
  spec.reference_explanations = 4;
  spec.reference_closing_rate = 0.7;
  spec.seed = 801;
  return BuildTestSet(spec);
}

TestSet SelfInstruct252() {
  TestSetSpec spec;
  spec.name = "Self-instruct252";
  spec.reference_source = "Human";
  spec.size = 252;
  spec.categories = {
      Category::kEmailDrafting,     Category::kSummarization,
      Category::kGeneralQa,         Category::kDataFormatting,
      Category::kInformationExtraction, Category::kCodeExplanation,
      Category::kHowToGuide,        Category::kBrainstorming,
      Category::kSentimentAnalysis, Category::kTextClassification,
      Category::kNaming,            Category::kRecommendation,
      Category::kDialogueCompletion, Category::kTranslation,
      Category::kOrdering,
  };  // 15 application scenarios (Gmail, Twitter, GitHub, ...)
  spec.reference_explanations = 2;
  spec.reference_closing_rate = 0.25;
  spec.seed = 2521;
  return BuildTestSet(spec);
}

std::vector<TestSet> AllTestSets() {
  return {CoachLm150(), PandaLm170(), Vicuna80(), SelfInstruct252()};
}

Result<TestSet> TestSetFromRecords(RecordReader* reader,
                                   const std::string& name,
                                   const std::string& reference_source) {
  TestSet set;
  set.name = name;
  set.reference_source = reference_source;
  COACHLM_ASSIGN_OR_RETURN(set.items, ReadAllRecords(reader));
  std::set<Category> categories;
  for (const InstructionPair& pair : set.items) {
    categories.insert(pair.category);
  }
  set.num_categories = categories.size();
  return set;
}

}  // namespace testsets
}  // namespace coachlm
