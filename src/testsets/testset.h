#ifndef COACHLM_TESTSETS_TESTSET_H_
#define COACHLM_TESTSETS_TESTSET_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/record_stream.h"

namespace coachlm {
namespace testsets {

/// \brief An instruction-following test set (Table VI).
///
/// Each item is an InstructionPair whose `output` holds the *reference
/// response* the candidates are judged against; `instruction`/`input` form
/// the task.
struct TestSet {
  std::string name;
  /// Where the reference responses come from ("Human", "ChatGPT", "Bard").
  std::string reference_source;
  size_t num_categories = 0;
  InstructionDataset items;
};

/// \brief Generation knobs shared by the four test-set builders.
struct TestSetSpec {
  std::string name;
  std::string reference_source;
  size_t size = 150;
  /// Categories included (round-robin over this list).
  std::vector<Category> categories;
  /// Reference richness tier: expected explanation sentences (0-4) and
  /// closing probability. Stronger references depress every candidate's
  /// win rate, which is how the Vicuna80 (Bard) vs PandaLM170 (ChatGPT)
  /// difficulty gap of Table IX arises.
  size_t reference_explanations = 3;
  double reference_closing_rate = 0.5;
  uint64_t seed = 1009;
};

/// Builds a test set from a spec (deterministic).
TestSet BuildTestSet(const TestSetSpec& spec);

/// The CoachLM150 test set: 150 real-world instructions over all 42
/// categories with expert-written references (Section II-G).
TestSet CoachLm150();

/// The PandaLM170 test set: 170 instructions, 11 categories, ChatGPT
/// references [24].
TestSet PandaLm170();

/// The Vicuna80 test set: 80 instructions over 9 categories (writing,
/// role-play, math, knowledge, ...), Bard references [16].
TestSet Vicuna80();

/// The Self-Instruct252 test set: 252 instructions over 15 application
/// scenarios with human references [14].
TestSet SelfInstruct252();

/// All four, in Table VI order.
std::vector<TestSet> AllTestSets();

/// Loads a custom test set from a record stream (any corpus backend): each
/// record's `output` is the reference response the judge scores against.
/// `num_categories` counts the distinct categories present.
[[nodiscard]] Result<TestSet> TestSetFromRecords(
    RecordReader* reader, const std::string& name,
    const std::string& reference_source = "Custom");

}  // namespace testsets
}  // namespace coachlm

#endif  // COACHLM_TESTSETS_TESTSET_H_
