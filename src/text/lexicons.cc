#include "text/lexicons.h"

namespace coachlm {
namespace lexicons {

const std::unordered_set<std::string>& Stopwords() {
  static const std::unordered_set<std::string> kSet = {
      "a",    "an",   "the",  "and",  "or",   "but",  "of",    "to",
      "in",   "on",   "at",   "by",   "for",  "with", "about", "as",
      "is",   "are",  "was",  "were", "be",   "been", "being", "it",
      "its",  "this", "that", "these", "those", "i",   "you",  "he",
      "she",  "we",   "they", "them",  "his",  "her",  "their", "my",
      "your", "our",  "from", "into",  "over", "under", "not",  "no",
      "do",   "does", "did",  "will",  "would", "can",  "could", "should",
      "have", "has",  "had",  "there", "here",  "what", "which", "who",
      "when", "where", "why",  "how",  "all",  "each", "more",  "most",
      "some", "such", "only", "own",  "so",   "than", "too",   "very",
  };
  return kSet;
}

const std::vector<std::string>& PolitenessMarkers() {
  static const std::vector<std::string> kList = {
      "happy to help",   "glad you asked",  "feel free",
      "hope this helps", "great question",  "of course",
      "certainly",       "you might enjoy", "let me know",
      "I'd be glad",     "thanks for",      "wonderful",
  };
  return kList;
}

const std::unordered_set<std::string>& HedgeWords() {
  static const std::unordered_set<std::string> kSet = {
      "thing",  "things", "stuff",   "whatever", "something",
      "someone", "somehow", "maybe",  "possibly", "sorta",
      "kinda",  "etc",    "anything", "somewhere",
  };
  return kSet;
}

const std::vector<std::string>& UnsafeTerms() {
  static const std::vector<std::string> kList = {
      "how to hurt", "steal the password", "without their consent",
      "evade the police", "untraceable poison", "fake prescription",
      "guaranteed stock tip", "insider information",
  };
  return kList;
}

const std::vector<std::string>& ExplanationMarkers() {
  static const std::vector<std::string> kList = {
      "because",      "therefore",  "for example", "for instance",
      "in other words", "as a result", "this means", "specifically",
      "step",         "first",      "second",      "finally",
      "in summary",   "the reason", "consequently", "note that",
  };
  return kList;
}

const std::unordered_map<std::string, std::string>& SpellingCorruptions() {
  // Corruptions are realistic keyboard/phonetic slips. The injector applies
  // correct -> corrupted; experts repair with the inverse.
  static const std::unordered_map<std::string, std::string> kMap = {
      {"the", "teh"},         {"receive", "recieve"},
      {"their", "thier"},     {"separate", "seperate"},
      {"definitely", "definately"}, {"environment", "enviroment"},
      {"government", "goverment"},  {"necessary", "neccessary"},
      {"which", "wich"},      {"because", "becuase"},
      {"beginning", "begining"},    {"occurred", "occured"},
      {"address", "adress"},  {"business", "buisness"},
      {"different", "diffrent"},    {"important", "importent"},
      {"language", "langauge"},     {"probably", "probaly"},
      {"sentence", "sentance"},     {"weather", "wether"},
      {"information", "infomation"}, {"development", "developement"},
      {"experience", "experiance"},  {"knowledge", "knowlege"},
      {"technology", "technolgy"},
  };
  return kMap;
}

const std::unordered_map<std::string, std::string>& SpellingRepairs() {
  static const std::unordered_map<std::string, std::string> kInverse = [] {
    std::unordered_map<std::string, std::string> inv;
    for (const auto& [good, bad] : SpellingCorruptions()) inv[bad] = good;
    return inv;
  }();
  return kInverse;
}

const std::vector<std::string>& AmbiguityFillers() {
  static const std::vector<std::string> kList = {
      "the thing", "that stuff", "it somehow", "something relevant",
      "whatever fits", "some items",
  };
  return kList;
}

const std::vector<std::string>& MechanicalOpeners() {
  static const std::vector<std::string> kList = {
      "As an AI language model,",
      "I am a machine and",
      "Processing request.",
      "OUTPUT:",
  };
  return kList;
}

}  // namespace lexicons
}  // namespace coachlm
