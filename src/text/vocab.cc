#include "text/vocab.h"

namespace coachlm {

Vocab::Vocab() {
  Add("<unk>");
  Add("<s>");
  Add("</s>");
}

uint32_t Vocab::Add(const std::string& token) {
  auto [it, inserted] =
      index_.emplace(token, static_cast<uint32_t>(tokens_.size()));
  if (inserted) tokens_.push_back(token);
  return it->second;
}

uint32_t Vocab::Lookup(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocab::Token(uint32_t id) const {
  if (id >= tokens_.size()) return tokens_[kUnk];
  return tokens_[id];
}

std::vector<uint32_t> Vocab::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(Lookup(t));
  return ids;
}

}  // namespace coachlm
