#ifndef COACHLM_TEXT_EDIT_DISTANCE_H_
#define COACHLM_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace coachlm {

/// \brief Levenshtein edit distances at character and word granularity.
///
/// The paper uses edit distance twice: (1) to rank expert revision pairs
/// by information content for the α-selection of Section II-F2, and (2) to
/// report the word-level revision magnitude in Table VII. Both call into
/// these functions.
namespace editdist {

/// Character-level Levenshtein distance (unit costs).
size_t CharDistance(const std::string& a, const std::string& b);

/// Character-level distance with an early-exit \p bound: returns bound + 1
/// as soon as the true distance provably exceeds it (Ukkonen band).
size_t CharDistanceBounded(const std::string& a, const std::string& b,
                           size_t bound);

/// Word-level Levenshtein distance over the given token sequences.
size_t TokenDistance(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Word-level distance computed after WordTokenize() of both strings.
size_t WordDistance(const std::string& a, const std::string& b);

/// Normalized distance in [0, 1]: distance / max(len(a), len(b)); 0 when
/// both inputs are empty.
double NormalizedCharDistance(const std::string& a, const std::string& b);

}  // namespace editdist
}  // namespace coachlm

#endif  // COACHLM_TEXT_EDIT_DISTANCE_H_
