#ifndef COACHLM_TEXT_SIMILARITY_H_
#define COACHLM_TEXT_SIMILARITY_H_

#include <string>
#include <unordered_set>
#include <vector>

namespace coachlm {

/// \brief Lexical similarity helpers shared by the quality analyzers
/// (relevance scoring) and the backbone knowledge retrieval.
namespace similarity {

/// Lower-cased non-stopword words of length >= 3.
std::unordered_set<std::string> ContentWords(const std::string& text);

/// Jaccard similarity of the content-word sets of \p a and \p b.
double ContentOverlap(const std::string& a, const std::string& b);

/// Overlap of \p query's content words that are covered by \p doc
/// (containment rather than Jaccard; asymmetric, in [0, 1]).
double Containment(const std::string& query, const std::string& doc);

}  // namespace similarity
}  // namespace coachlm

#endif  // COACHLM_TEXT_SIMILARITY_H_
