#ifndef COACHLM_TEXT_REPAIR_H_
#define COACHLM_TEXT_REPAIR_H_

#include <string>

namespace coachlm {

/// \brief Generic surface-repair transformations.
///
/// These encode basic language competence — fixing a known misspelling,
/// re-capitalizing sentences, deduplicating words, reflowing flattened
/// lists. The expert simulator applies them judgment-driven (whenever the
/// criteria flag a readability issue); CoachLM applies them only when the
/// corresponding learned rule has enough support (the backbone *can* do
/// these things, coach tuning teaches it *when to*).
namespace repair {

/// Replaces every known misspelling with its correct form.
std::string FixKnownSpelling(const std::string& text);

/// Upper-cases the first letter of each sentence.
std::string CapitalizeSentences(const std::string& text);

/// Removes immediately repeated words ("the the" -> "the").
std::string RemoveDoubledWords(const std::string& text);

/// Moves flattened list items back onto their own lines
/// (" - x - y" -> "\n- x\n- y", " 2. " -> "\n2. ").
std::string ReflowLists(const std::string& text);

/// Collapses runs of spaces (not newlines) to single spaces.
std::string CollapseSpaces(const std::string& text);

}  // namespace repair
}  // namespace coachlm

#endif  // COACHLM_TEXT_REPAIR_H_
