#include "text/similarity.h"

#include "text/lexicons.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace similarity {

std::unordered_set<std::string> ContentWords(const std::string& text) {
  std::unordered_set<std::string> words;
  for (const std::string& token : tokenizer::WordTokenize(text)) {
    if (tokenizer::IsPunctuation(token)) continue;
    const std::string lower = strings::Lower(token);
    if (lower.size() < 3) continue;
    if (lexicons::Stopwords().count(lower) > 0) continue;
    words.insert(lower);
  }
  return words;
}

double ContentOverlap(const std::string& a, const std::string& b) {
  const auto wa = ContentWords(a);
  const auto wb = ContentWords(b);
  if (wa.empty() || wb.empty()) return 0.0;
  size_t common = 0;
  for (const std::string& w : wa) {
    if (wb.count(w) > 0) ++common;
  }
  const size_t total = wa.size() + wb.size() - common;
  return total == 0 ? 0.0
                    : static_cast<double>(common) / static_cast<double>(total);
}

double Containment(const std::string& query, const std::string& doc) {
  const auto wq = ContentWords(query);
  if (wq.empty()) return 0.0;
  const auto wd = ContentWords(doc);
  size_t covered = 0;
  for (const std::string& w : wq) {
    if (wd.count(w) > 0) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(wq.size());
}

}  // namespace similarity
}  // namespace coachlm
