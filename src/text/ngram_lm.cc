#include "text/ngram_lm.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace coachlm {

namespace {
constexpr double kAlpha = 0.05;  // additive smoothing mass
constexpr double kL1 = 0.2;     // unigram interpolation weight
constexpr double kL2 = 0.35;    // bigram weight
constexpr double kL3 = 0.45;    // trigram weight
}  // namespace

NgramLm::NgramLm(int order) : order_(std::clamp(order, 1, 3)) {}

void NgramLm::AddSentence(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return;
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size() + 3);
  ids.push_back(Vocab::kBos);
  ids.push_back(Vocab::kBos);
  for (const std::string& t : tokens) ids.push_back(vocab_.Add(t));
  ids.push_back(Vocab::kEos);
  for (size_t i = 2; i < ids.size(); ++i) {
    const uint32_t w = ids[i];
    const uint32_t b = ids[i - 1];
    const uint32_t a = ids[i - 2];
    ++unigram_[w];
    ++total_tokens_;
    if (order_ >= 2) {
      ++bigram_[MakeKey(b, w)];
      ++bigram_context_[MakeKey(b, 0)];
    }
    if (order_ >= 3) {
      ++trigram_[MakeKey(a, b)][w];
    }
  }
}

void NgramLm::AddText(const std::string& text) {
  for (const std::string& sentence : tokenizer::SplitSentences(text)) {
    AddSentence(tokenizer::WordTokenize(sentence));
  }
}

double NgramLm::UnigramProb(uint32_t w) const {
  const double v = static_cast<double>(vocab_.size());
  auto it = unigram_.find(w);
  const double count = it == unigram_.end() ? 0.0 : static_cast<double>(it->second);
  return (count + kAlpha) / (static_cast<double>(total_tokens_) + kAlpha * v);
}

double NgramLm::BigramProb(uint32_t a, uint32_t w) const {
  const double v = static_cast<double>(vocab_.size());
  auto ctx = bigram_context_.find(MakeKey(a, 0));
  const double ctx_count =
      ctx == bigram_context_.end() ? 0.0 : static_cast<double>(ctx->second);
  auto it = bigram_.find(MakeKey(a, w));
  const double count = it == bigram_.end() ? 0.0 : static_cast<double>(it->second);
  return (count + kAlpha) / (ctx_count + kAlpha * v);
}

double NgramLm::TrigramProb(uint32_t a, uint32_t b, uint32_t w) const {
  const double v = static_cast<double>(vocab_.size());
  auto ctx = trigram_.find(MakeKey(a, b));
  if (ctx == trigram_.end()) return kAlpha / (kAlpha * v);
  double total = 0.0;
  for (const auto& [word, count] : ctx->second) {
    (void)word;
    total += static_cast<double>(count);
  }
  auto it = ctx->second.find(w);
  const double count = it == ctx->second.end() ? 0.0 : static_cast<double>(it->second);
  return (count + kAlpha) / (total + kAlpha * v);
}

double NgramLm::InterpolatedProb(uint32_t a, uint32_t b, uint32_t w) const {
  double p = kL1 * UnigramProb(w);
  if (order_ >= 2) {
    p += kL2 * BigramProb(b, w);
  } else {
    p += kL2 * UnigramProb(w);
  }
  if (order_ >= 3) {
    p += kL3 * TrigramProb(a, b, w);
  } else {
    p += kL3 * (order_ >= 2 ? BigramProb(b, w) : UnigramProb(w));
  }
  return p;
}

double NgramLm::SentenceLogProb(const std::vector<std::string>& tokens) const {
  if (tokens.empty() || total_tokens_ == 0) return -1e9;
  std::vector<uint32_t> ids;
  ids.push_back(Vocab::kBos);
  ids.push_back(Vocab::kBos);
  for (const std::string& t : tokens) ids.push_back(vocab_.Lookup(t));
  ids.push_back(Vocab::kEos);
  double logp = 0.0;
  for (size_t i = 2; i < ids.size(); ++i) {
    logp += std::log10(InterpolatedProb(ids[i - 2], ids[i - 1], ids[i]));
  }
  return logp;
}

double NgramLm::Perplexity(const std::string& text) const {
  if (total_tokens_ == 0) return 1e9;
  double logp = 0.0;
  size_t n = 0;
  for (const std::string& sentence : tokenizer::SplitSentences(text)) {
    const auto tokens = tokenizer::WordTokenize(sentence);
    if (tokens.empty()) continue;
    logp += SentenceLogProb(tokens);
    n += tokens.size() + 1;  // +1 for </s>
  }
  if (n == 0) return 1e9;
  return std::pow(10.0, -logp / static_cast<double>(n));
}

std::vector<std::string> NgramLm::Sample(
    const std::vector<std::string>& context, size_t max_tokens, Rng* rng,
    double temperature) const {
  std::vector<std::string> out;
  if (total_tokens_ == 0 || max_tokens == 0) return out;
  uint32_t a = Vocab::kBos;
  uint32_t b = Vocab::kBos;
  if (!context.empty()) {
    if (context.size() >= 2) a = vocab_.Lookup(context[context.size() - 2]);
    b = vocab_.Lookup(context.back());
  }
  temperature = std::clamp(temperature, 0.05, 5.0);
  // Candidate pool: words seen after the current bigram context, falling
  // back to the unigram-frequent vocabulary.
  for (size_t step = 0; step < max_tokens; ++step) {
    std::vector<uint32_t> candidates;
    auto ctx = trigram_.find(MakeKey(a, b));
    if (ctx != trigram_.end()) {
      for (const auto& [w, c] : ctx->second) {
        (void)c;
        candidates.push_back(w);
      }
    }
    if (candidates.size() < 3) {
      // Back off: most frequent unigrams.
      // COACHLM_LINT_ALLOW(determinism-unordered-serialization): candidate order is pinned by the golden determinism suite for this stdlib; sorting here would change sampled text and invalidate every golden. Cross-stdlib portability of sampled text is a documented caveat (DESIGN.md §Static guarantees).
      for (const auto& [w, c] : unigram_) {
        if (c >= 2) candidates.push_back(w);
        if (candidates.size() > 200) break;
      }
    }
    if (candidates.empty()) break;
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (uint32_t w : candidates) {
      const double p = InterpolatedProb(a, b, w);
      weights.push_back(std::pow(p, 1.0 / temperature));
    }
    const uint32_t next = candidates[rng->NextCategorical(weights)];
    if (next == Vocab::kEos) break;
    if (next == Vocab::kUnk || next == Vocab::kBos) continue;
    out.push_back(vocab_.Token(next));
    a = b;
    b = next;
  }
  return out;
}

}  // namespace coachlm
