#include "text/match_automaton.h"

#include <algorithm>
#include <deque>
#include <map>

namespace coachlm {
namespace automaton {

int ClassOf(unsigned char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= 'A' && c <= 'Z') return 26 + (c - 'A');
  if (c >= '0' && c <= '9') return 52 + (c - '0');
  if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
      c == '\v') {
    return 62;
  }
  return 63;
}

ClassFingerprint FingerprintOf(const std::string& text) {
  ClassFingerprint fp;
  for (const char ch : text) {
    const int cls = ClassOf(static_cast<unsigned char>(ch));
    fp.mask |= uint64_t{1} << cls;
    if (fp.counts[cls] < 255) ++fp.counts[cls];
  }
  return fp;
}

namespace {

/// Trie node used only during construction; the built automaton keeps
/// none of this.
struct TrieNode {
  // Sparse children keyed by byte; a map keeps construction deterministic
  // and the memory bounded by total pattern bytes.
  std::map<unsigned char, int32_t> next;
  int32_t fail = 0;
  std::vector<uint32_t> outputs;
};

}  // namespace

MatchAutomaton::MatchAutomaton(const std::vector<std::string>& patterns) {
  pattern_lengths_.reserve(patterns.size());
  fingerprints_.reserve(patterns.size());
  std::vector<TrieNode> nodes(1);
  // Insertion: duplicate strings collapse onto one trie terminal but every
  // id is still reported (all duplicates land in that node's outputs).
  for (size_t id = 0; id < patterns.size(); ++id) {
    const std::string& pattern = patterns[id];
    pattern_lengths_.push_back(pattern.size());
    fingerprints_.push_back(FingerprintOf(pattern));
    if (pattern.empty()) continue;  // would match everywhere; never emitted
    int32_t state = 0;
    for (const char ch : pattern) {
      const auto byte = static_cast<unsigned char>(ch);
      auto it = nodes[state].next.find(byte);
      if (it == nodes[state].next.end()) {
        const auto fresh = static_cast<int32_t>(nodes.size());
        nodes[state].next.emplace(byte, fresh);
        nodes.emplace_back();
        state = fresh;
      } else {
        state = it->second;
      }
    }
    nodes[state].outputs.push_back(static_cast<uint32_t>(id));
  }

  // BFS: fail links, then merge fail-target outputs transitively so a
  // scan never follows fail chains. Parents are processed before children,
  // so the fail target's outputs are already complete when copied.
  std::deque<int32_t> queue;
  for (const auto& [byte, child] : nodes[0].next) {
    (void)byte;
    nodes[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const int32_t state = queue.front();
    queue.pop_front();
    for (const auto& [byte, child] : nodes[state].next) {
      int32_t fall = nodes[state].fail;
      while (fall != 0 && nodes[fall].next.count(byte) == 0) {
        fall = nodes[fall].fail;
      }
      const auto hit = nodes[fall].next.find(byte);
      const int32_t target =
          (hit != nodes[fall].next.end() && hit->second != child) ? hit->second
                                                                  : 0;
      nodes[child].fail = target;
      const auto& inherited = nodes[target].outputs;
      nodes[child].outputs.insert(nodes[child].outputs.end(),
                                  inherited.begin(), inherited.end());
      queue.push_back(child);
    }
  }

  // Flatten into the dense DFA. delta(s, b) resolves goto-or-fail at build
  // time: root misses self-loop on 0, and every other miss copies the fail
  // target's (already final) row — BFS order guarantees the fail target's
  // row is complete first.
  state_count_ = nodes.size();
  transitions_.assign(state_count_ * 256, 0);
  for (const auto& [byte, child] : nodes[0].next) {
    transitions_[byte] = child;
  }
  std::deque<int32_t> order;
  for (const auto& [byte, child] : nodes[0].next) {
    (void)byte;
    order.push_back(child);
  }
  while (!order.empty()) {
    const int32_t state = order.front();
    order.pop_front();
    const int32_t fail = nodes[state].fail;
    for (int b = 0; b < 256; ++b) {
      transitions_[static_cast<size_t>(state) * 256 + b] =
          transitions_[static_cast<size_t>(fail) * 256 + b];
    }
    for (const auto& [byte, child] : nodes[state].next) {
      transitions_[static_cast<size_t>(state) * 256 + byte] = child;
      order.push_back(child);
    }
  }

  // Flat output slices.
  output_begin_.assign(state_count_ + 1, 0);
  size_t total = 0;
  for (size_t s = 0; s < state_count_; ++s) {
    output_begin_[s] = static_cast<uint32_t>(total);
    total += nodes[s].outputs.size();
  }
  output_begin_[state_count_] = static_cast<uint32_t>(total);
  output_ids_.reserve(total);
  for (size_t s = 0; s < state_count_; ++s) {
    output_ids_.insert(output_ids_.end(), nodes[s].outputs.begin(),
                       nodes[s].outputs.end());
  }
}

void MatchAutomaton::Scan(const std::string& text,
                          std::vector<size_t>* first_begin) const {
  first_begin->assign(pattern_lengths_.size(), kNotFound);
  int32_t state = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    state = transitions_[static_cast<size_t>(state) * 256 +
                         static_cast<unsigned char>(text[i])];
    for (uint32_t k = output_begin_[state]; k < output_begin_[state + 1];
         ++k) {
      const uint32_t id = output_ids_[k];
      const size_t begin = i + 1 - pattern_lengths_[id];
      if ((*first_begin)[id] == kNotFound) (*first_begin)[id] = begin;
    }
  }
}

}  // namespace automaton
}  // namespace coachlm
