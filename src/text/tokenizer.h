#ifndef COACHLM_TEXT_TOKENIZER_H_
#define COACHLM_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

namespace coachlm {

/// \brief Word-level tokenization used by edit-distance, alignment, and the
/// n-gram language model.
///
/// The tokenizer splits on whitespace and separates trailing/leading ASCII
/// punctuation into standalone tokens, so that the word-level edit distance
/// in Table VII counts "fix a comma" as a one-token edit rather than a word
/// replacement. Detokenize() re-attaches punctuation.
namespace tokenizer {

/// Splits \p text into word and punctuation tokens.
std::vector<std::string> WordTokenize(const std::string& text);

/// Splits \p text on whitespace only (fields keep punctuation).
std::vector<std::string> WhitespaceTokenize(const std::string& text);

/// Reassembles tokens into a string, attaching closing punctuation to the
/// preceding token and opening brackets/quotes to the following one.
std::string Detokenize(const std::vector<std::string>& tokens);

/// Splits \p text into sentences on ., !, ? followed by whitespace, and on
/// newlines. Keeps the terminator with the sentence.
std::vector<std::string> SplitSentences(const std::string& text);

/// True when the token consists solely of ASCII punctuation.
bool IsPunctuation(const std::string& token);

}  // namespace tokenizer
}  // namespace coachlm

#endif  // COACHLM_TEXT_TOKENIZER_H_
