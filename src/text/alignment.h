#ifndef COACHLM_TEXT_ALIGNMENT_H_
#define COACHLM_TEXT_ALIGNMENT_H_

#include <string>
#include <vector>

namespace coachlm {

/// \brief Token-level alignment between an original and a revised sequence.
///
/// CoachLM's rule learner decomposes each expert revision (x, x_r) into an
/// edit script obtained from the Levenshtein backtrace. The script is the
/// raw material from which typed EditOps (lm/edit_op.h) are extracted.
namespace align {

/// One step in the alignment.
enum class OpKind {
  kKeep,    ///< token unchanged
  kSubst,   ///< source token replaced by target token
  kInsert,  ///< target token inserted
  kDelete,  ///< source token removed
};

/// \brief A single alignment step referencing positions in both sequences.
struct AlignOp {
  OpKind kind;
  /// Index into the source sequence (valid except for kInsert).
  size_t src_index = 0;
  /// Index into the target sequence (valid except for kDelete).
  size_t tgt_index = 0;
  /// Source token (empty for kInsert).
  std::string src;
  /// Target token (empty for kDelete).
  std::string tgt;
};

/// Full edit script transforming the source token sequence into the target.
using EditScript = std::vector<AlignOp>;

/// \brief Computes a minimal edit script between two token sequences.
///
/// Ties are broken preferring Keep > Subst > Delete > Insert so scripts are
/// deterministic. Quadratic time/space in sequence lengths.
EditScript Align(const std::vector<std::string>& source,
                 const std::vector<std::string>& target);

/// \brief Applies an edit script to \p source, returning the target tokens.
/// The script must have been produced against a source of identical length
/// (only src lengths are checked; tokens themselves are taken on faith so
/// scripts can be replayed against near-identical inputs).
std::vector<std::string> ApplyScript(const std::vector<std::string>& source,
                                     const EditScript& script);

/// \brief Number of non-Keep operations in the script.
size_t EditCount(const EditScript& script);

/// \brief A maximal run of consecutive non-Keep operations.
///
/// Hunks group character- or token-local changes (a spelling fix) and large
/// structural ones (an appended explanation) into single analyzable units.
struct Hunk {
  /// Operations of this hunk, in order.
  EditScript ops;
  /// First source index touched (or position for pure insertions).
  size_t src_begin = 0;
  /// One-past-last source index touched.
  size_t src_end = 0;
  /// Concatenated source tokens removed/replaced.
  std::vector<std::string> src_tokens;
  /// Concatenated target tokens inserted/replacing.
  std::vector<std::string> tgt_tokens;
};

/// \brief Groups an edit script into hunks of consecutive edits.
std::vector<Hunk> ExtractHunks(const EditScript& script);

}  // namespace align
}  // namespace coachlm

#endif  // COACHLM_TEXT_ALIGNMENT_H_
