#ifndef COACHLM_TEXT_STRING_UTIL_H_
#define COACHLM_TEXT_STRING_UTIL_H_

#include <string>
#include <vector>

namespace coachlm {

/// \brief Plain string helpers used across the text stack.
/// All functions are ASCII-oriented; the corpus generator emits ASCII.
namespace strings {

/// Returns \p s lower-cased (ASCII).
std::string Lower(const std::string& s);

/// Returns \p s with leading/trailing whitespace removed.
std::string Trim(const std::string& s);

/// Splits on \p sep, dropping empty pieces when \p keep_empty is false.
std::vector<std::string> Split(const std::string& s, char sep,
                               bool keep_empty = false);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True when \p s begins with \p prefix.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True when \p s ends with \p suffix.
bool EndsWith(const std::string& s, const std::string& suffix);

/// True when \p s contains \p needle.
bool Contains(const std::string& s, const std::string& needle);

/// Replaces every occurrence of \p from with \p to.
std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to);

/// Collapses runs of whitespace into single spaces and trims the ends.
std::string CollapseWhitespace(const std::string& s);

/// Upper-cases the first alphabetic character.
std::string Capitalize(std::string s);

/// Number of whitespace-separated words.
size_t CountWords(const std::string& s);

}  // namespace strings
}  // namespace coachlm

#endif  // COACHLM_TEXT_STRING_UTIL_H_
