#include "text/alignment.h"

#include <algorithm>

namespace coachlm {
namespace align {

EditScript Align(const std::vector<std::string>& source,
                 const std::vector<std::string>& target) {
  const size_t n = source.size();
  const size_t m = target.size();
  // Full DP matrix for backtrace; sequences here are sentences/paragraphs,
  // short enough that O(n*m) space is acceptable.
  std::vector<std::vector<size_t>> dp(n + 1, std::vector<size_t>(m + 1));
  for (size_t i = 0; i <= n; ++i) dp[i][0] = i;
  for (size_t j = 0; j <= m; ++j) dp[0][j] = j;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub =
          dp[i - 1][j - 1] + (source[i - 1] == target[j - 1] ? 0 : 1);
      dp[i][j] = std::min({sub, dp[i - 1][j] + 1, dp[i][j - 1] + 1});
    }
  }
  // Backtrace from (n, m), preferring Keep/Subst, then Delete, then Insert.
  EditScript reversed;
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[i][j] ==
            dp[i - 1][j - 1] + (source[i - 1] == target[j - 1] ? 0 : 1)) {
      AlignOp op;
      op.kind = source[i - 1] == target[j - 1] ? OpKind::kKeep : OpKind::kSubst;
      op.src_index = i - 1;
      op.tgt_index = j - 1;
      op.src = source[i - 1];
      op.tgt = target[j - 1];
      reversed.push_back(std::move(op));
      --i;
      --j;
    } else if (i > 0 && dp[i][j] == dp[i - 1][j] + 1) {
      AlignOp op;
      op.kind = OpKind::kDelete;
      op.src_index = i - 1;
      op.tgt_index = j;  // position before which deletion happens
      op.src = source[i - 1];
      reversed.push_back(std::move(op));
      --i;
    } else {
      AlignOp op;
      op.kind = OpKind::kInsert;
      op.src_index = i;  // insertion point in source coordinates
      op.tgt_index = j - 1;
      op.tgt = target[j - 1];
      reversed.push_back(std::move(op));
      --j;
    }
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

std::vector<std::string> ApplyScript(const std::vector<std::string>& source,
                                     const EditScript& script) {
  std::vector<std::string> out;
  out.reserve(source.size());
  for (const AlignOp& op : script) {
    switch (op.kind) {
      case OpKind::kKeep:
        if (op.src_index < source.size()) out.push_back(source[op.src_index]);
        break;
      case OpKind::kSubst:
      case OpKind::kInsert:
        out.push_back(op.tgt);
        break;
      case OpKind::kDelete:
        break;
    }
  }
  return out;
}

size_t EditCount(const EditScript& script) {
  size_t count = 0;
  for (const AlignOp& op : script) {
    if (op.kind != OpKind::kKeep) ++count;
  }
  return count;
}

std::vector<Hunk> ExtractHunks(const EditScript& script) {
  std::vector<Hunk> hunks;
  Hunk current;
  bool open = false;
  auto flush = [&] {
    if (open) {
      hunks.push_back(std::move(current));
      current = Hunk();
      open = false;
    }
  };
  for (const AlignOp& op : script) {
    if (op.kind == OpKind::kKeep) {
      flush();
      continue;
    }
    if (!open) {
      open = true;
      current.src_begin =
          op.kind == OpKind::kInsert ? op.src_index : op.src_index;
      current.src_end = current.src_begin;
    }
    if (op.kind != OpKind::kInsert) {
      current.src_end = op.src_index + 1;
      current.src_tokens.push_back(op.src);
    }
    if (op.kind != OpKind::kDelete) {
      current.tgt_tokens.push_back(op.tgt);
    }
    current.ops.push_back(op);
  }
  flush();
  return hunks;
}

}  // namespace align
}  // namespace coachlm
