#ifndef COACHLM_TEXT_VOCAB_H_
#define COACHLM_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace coachlm {

/// \brief Bidirectional token <-> id map for the n-gram language model.
///
/// Id 0 is reserved for the unknown token, 1 for begin-of-sequence, and 2
/// for end-of-sequence.
class Vocab {
 public:
  static constexpr uint32_t kUnk = 0;
  static constexpr uint32_t kBos = 1;
  static constexpr uint32_t kEos = 2;

  Vocab();

  /// Adds \p token if absent and returns its id.
  uint32_t Add(const std::string& token);

  /// Returns the id of \p token, or kUnk when unseen.
  uint32_t Lookup(const std::string& token) const;

  /// Returns the token for \p id ("<unk>" for out-of-range ids).
  const std::string& Token(uint32_t id) const;

  /// Number of entries including the three reserved ids.
  size_t size() const { return tokens_.size(); }

  /// Encodes a token sequence (unknowns map to kUnk).
  std::vector<uint32_t> Encode(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> tokens_;
};

}  // namespace coachlm

#endif  // COACHLM_TEXT_VOCAB_H_
