#ifndef COACHLM_TEXT_MATCH_AUTOMATON_H_
#define COACHLM_TEXT_MATCH_AUTOMATON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace coachlm {

/// \brief Multi-pattern substring search compiled to flat tables.
///
/// An Aho-Corasick automaton whose goto/fail structure is flattened into a
/// dense DFA: one `state_count × 256` transition table plus per-state
/// output slices into a single flat pattern-id array (fail-chain outputs
/// are merged transitively at build time, so scanning never walks fail
/// links). No per-node allocation survives construction — the whole
/// automaton is four `std::vector`s, cheap to share immutably across
/// threads. Alongside it, 64-bit character-class fingerprints give an O(1)
/// "cannot possibly match" rejection before any automaton or string work.
namespace automaton {

/// \brief Character-class summary of a string: a presence mask and
/// saturating per-class counts over 64 classes.
///
/// Classes: `a–z` → 0..25, `A–Z` → 26..51, `0–9` → 52..61, any ASCII
/// whitespace → 62, everything else → 63. All whitespace folds into ONE
/// class on purpose: the revision pipeline rewrites whitespace kinds into
/// each other (CollapseWhitespace turns tabs and newlines into spaces), so
/// distinguishing them would make the prefilter unsound after mutations.
struct ClassFingerprint {
  /// Bit `c` set when the string contains at least one char of class `c`.
  uint64_t mask = 0;
  /// Per-class occurrence counts, saturating at 255.
  uint8_t counts[64] = {};

  /// True when a string with this fingerprint could contain a pattern
  /// with fingerprint \p needle: every class the pattern needs is present
  /// with at least the needed count. Exact counts are only meaningful
  /// against unmutated text; against a mask-only superset use
  /// `MaskCovers`.
  bool Covers(const ClassFingerprint& needle) const {
    if ((needle.mask & ~mask) != 0) return false;
    for (int c = 0; c < 64; ++c) {
      if (counts[c] < needle.counts[c]) return false;
    }
    return true;
  }

  /// Mask-only containment: every class \p needle uses appears here.
  bool MaskCovers(const ClassFingerprint& needle) const {
    return (needle.mask & ~mask) == 0;
  }
};

/// Classifies one byte into its fingerprint class (0..63).
int ClassOf(unsigned char c);

/// Computes the fingerprint of \p text.
ClassFingerprint FingerprintOf(const std::string& text);

/// Sentinel for "pattern not found" positions.
inline constexpr size_t kNotFound = static_cast<size_t>(-1);

/// \brief The compiled multi-pattern matcher.
///
/// Patterns keep the ids they were added with; duplicate pattern strings
/// collapse onto one trie terminal but every duplicate id is still
/// reported. Empty patterns never match (they would match everywhere and
/// the revision rules never produce them).
class MatchAutomaton {
 public:
  /// Builds the automaton over \p patterns; pattern `i` gets id `i`.
  explicit MatchAutomaton(const std::vector<std::string>& patterns);

  MatchAutomaton(const MatchAutomaton&) = delete;
  MatchAutomaton& operator=(const MatchAutomaton&) = delete;
  MatchAutomaton(MatchAutomaton&&) = default;
  MatchAutomaton& operator=(MatchAutomaton&&) = default;

  /// One pass over \p text; writes the byte offset of the FIRST occurrence
  /// of each pattern into \p first_begin (sized to pattern count,
  /// `kNotFound` where absent). Equivalent to calling `text.find(p)` per
  /// pattern, in O(text + matches) total.
  void Scan(const std::string& text, std::vector<size_t>* first_begin) const;

  size_t num_patterns() const { return pattern_lengths_.size(); }
  size_t num_states() const { return state_count_; }
  size_t pattern_length(size_t id) const { return pattern_lengths_[id]; }
  const ClassFingerprint& fingerprint(size_t id) const {
    return fingerprints_[id];
  }

 private:
  // Dense DFA: transitions_[state * 256 + byte] is the next state.
  std::vector<int32_t> transitions_;
  // Per-state slice [output_begin_[s], output_begin_[s + 1]) into
  // output_ids_: the ids of every pattern ending at state s, including
  // those inherited along the fail chain (merged at build time).
  std::vector<uint32_t> output_begin_;
  std::vector<uint32_t> output_ids_;
  std::vector<size_t> pattern_lengths_;
  std::vector<ClassFingerprint> fingerprints_;
  size_t state_count_ = 0;
};

}  // namespace automaton
}  // namespace coachlm

#endif  // COACHLM_TEXT_MATCH_AUTOMATON_H_
