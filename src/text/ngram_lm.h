#ifndef COACHLM_TEXT_NGRAM_LM_H_
#define COACHLM_TEXT_NGRAM_LM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "text/vocab.h"

namespace coachlm {

/// \brief Interpolated trigram language model with additive smoothing.
///
/// Stands in for the backbone LLM's generative fluency. The expansion
/// component of CoachLM (lm/expansion_model.h) samples continuation text
/// from this model, and the quality analyzers use its perplexity as a
/// fluency signal. Small and exact — no GPU, fully deterministic.
class NgramLm {
 public:
  /// \param order n-gram order in {1, 2, 3}.
  explicit NgramLm(int order = 3);

  /// Accumulates counts from one sentence (word tokens).
  void AddSentence(const std::vector<std::string>& tokens);

  /// Accumulates counts from raw text (tokenized per sentence).
  void AddText(const std::string& text);

  /// Log10 probability of the sentence under the interpolated model.
  double SentenceLogProb(const std::vector<std::string>& tokens) const;

  /// Per-token perplexity of the text; lower is more fluent. Returns a
  /// large sentinel (1e9) for empty input or an untrained model.
  double Perplexity(const std::string& text) const;

  /// Samples up to \p max_tokens continuing \p context, stopping at
  /// end-of-sentence. Temperature < 1 sharpens toward high-probability
  /// words (a "stronger backbone" generates more fluent text).
  std::vector<std::string> Sample(const std::vector<std::string>& context,
                                  size_t max_tokens, Rng* rng,
                                  double temperature = 1.0) const;

  /// Total tokens observed in training.
  size_t train_tokens() const { return total_tokens_; }

  /// Vocabulary reference.
  const Vocab& vocab() const { return vocab_; }

 private:
  using Key = uint64_t;
  static Key MakeKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  double UnigramProb(uint32_t w) const;
  double BigramProb(uint32_t a, uint32_t w) const;
  double TrigramProb(uint32_t a, uint32_t b, uint32_t w) const;
  double InterpolatedProb(uint32_t a, uint32_t b, uint32_t w) const;

  int order_;
  Vocab vocab_;
  std::unordered_map<uint32_t, uint64_t> unigram_;
  std::unordered_map<Key, uint64_t> bigram_;
  std::unordered_map<Key, uint64_t> bigram_context_;  // (a) -> count via key(a,0)
  std::unordered_map<Key, std::unordered_map<uint32_t, uint64_t>> trigram_;
  size_t total_tokens_ = 0;
};

}  // namespace coachlm

#endif  // COACHLM_TEXT_NGRAM_LM_H_
