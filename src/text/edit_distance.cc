#include "text/edit_distance.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace coachlm {
namespace editdist {
namespace {

/// Two-row dynamic program shared by the char and token variants.
template <typename Seq>
size_t Levenshtein(const Seq& a, const Seq& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace

size_t CharDistance(const std::string& a, const std::string& b) {
  return Levenshtein(a, b);
}

size_t CharDistanceBounded(const std::string& a, const std::string& b,
                           size_t bound) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t diff = n > m ? n - m : m - n;
  if (diff > bound) return bound + 1;
  if (n == 0) return m;
  if (m == 0) return n;
  const size_t kInf = bound + 1;
  std::vector<size_t> prev(m + 1, kInf);
  std::vector<size_t> curr(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, bound); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    // Only cells within the diagonal band |i - j| <= bound can stay <= bound.
    const size_t j_lo = i > bound ? i - bound : 1;
    const size_t j_hi = std::min(m, i + bound);
    if (j_lo > j_hi) return bound + 1;
    std::fill(curr.begin(), curr.end(), kInf);
    if (j_lo == 1) curr[0] = i <= bound ? i : kInf;
    size_t row_min = kInf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t best = sub;
      if (prev[j] + 1 < best) best = prev[j] + 1;
      if (curr[j - 1] + 1 < best) best = curr[j - 1] + 1;
      curr[j] = std::min(best, kInf);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(prev, curr);
  }
  return std::min(prev[m], kInf);
}

size_t TokenDistance(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  return Levenshtein(a, b);
}

size_t WordDistance(const std::string& a, const std::string& b) {
  return TokenDistance(tokenizer::WordTokenize(a), tokenizer::WordTokenize(b));
}

double NormalizedCharDistance(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(CharDistance(a, b)) /
         static_cast<double>(longest);
}

}  // namespace editdist
}  // namespace coachlm
