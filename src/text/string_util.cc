#include "text/string_util.h"

#include <cctype>

namespace coachlm {
namespace strings {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char sep,
                               bool keep_empty) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    std::string piece = s.substr(pos, next - pos);
    if (keep_empty || !piece.empty()) parts.push_back(std::move(piece));
    if (next == s.size()) break;
    pos = next + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string CollapseWhitespace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

std::string Capitalize(std::string s) {
  for (char& c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      break;
    }
    // Skip whitespace and opening quotes/brackets; stop at anything else
    // (digits start list items, which keep their own casing).
    if (!std::isspace(static_cast<unsigned char>(c)) && c != '"' &&
        c != '\'' && c != '(') {
      break;
    }
  }
  return s;
}

size_t CountWords(const std::string& s) {
  size_t count = 0;
  bool in_word = false;
  for (char c : s) {
    const bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (!space && !in_word) ++count;
    in_word = !space;
  }
  return count;
}

}  // namespace strings
}  // namespace coachlm
