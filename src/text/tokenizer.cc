#include "text/tokenizer.h"

#include <cctype>

namespace coachlm {
namespace tokenizer {
namespace {

bool IsPunctChar(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

bool IsOpening(const std::string& tok) {
  return tok == "(" || tok == "[" || tok == "{" || tok == "\"" || tok == "'";
}

}  // namespace

bool IsPunctuation(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!IsPunctChar(c)) return false;
  }
  return true;
}

std::vector<std::string> WhitespaceTokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> WordTokenize(const std::string& text) {
  std::vector<std::string> tokens;
  for (std::string& field : WhitespaceTokenize(text)) {
    // Peel leading punctuation.
    size_t begin = 0;
    while (begin < field.size() && IsPunctChar(field[begin]) &&
           field[begin] != '-') {
      tokens.push_back(std::string(1, field[begin]));
      ++begin;
    }
    // Peel trailing punctuation (preserve order after the word).
    size_t end = field.size();
    std::vector<std::string> trailing;
    while (end > begin && IsPunctChar(field[end - 1]) &&
           // Keep in-word characters such as the period in "3.14" intact by
           // only peeling when the remainder is not numeric-ish.
           !(end >= 2 && std::isdigit(static_cast<unsigned char>(field[end - 2])) &&
             field[end - 1] == '.' && end != field.size())) {
      trailing.push_back(std::string(1, field[end - 1]));
      --end;
    }
    if (end > begin) tokens.push_back(field.substr(begin, end - begin));
    for (auto it = trailing.rbegin(); it != trailing.rend(); ++it) {
      tokens.push_back(std::move(*it));
    }
  }
  return tokens;
}

std::string Detokenize(const std::vector<std::string>& tokens) {
  std::string out;
  bool suppress_space = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const bool punct = IsPunctuation(tok);
    const bool closing = punct && !IsOpening(tok);
    if (!out.empty() && !suppress_space && !closing) out += ' ';
    out += tok;
    suppress_space = punct && IsOpening(tok);
  }
  return out;
}

std::vector<std::string> SplitSentences(const std::string& text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (!current.empty()) {
        sentences.push_back(current);
        current.clear();
      }
      continue;
    }
    current += c;
    if ((c == '.' || c == '!' || c == '?') &&
        (i + 1 == text.size() ||
         std::isspace(static_cast<unsigned char>(text[i + 1])))) {
      // Avoid splitting decimal numbers like "3. 5" is fine; "3.5" has no
      // following space so it is not split.
      std::string trimmed;
      size_t b = current.find_first_not_of(' ');
      if (b != std::string::npos) trimmed = current.substr(b);
      if (!trimmed.empty()) sentences.push_back(trimmed);
      current.clear();
      if (i + 1 < text.size()) ++i;  // consume one following space
    }
  }
  std::string tail;
  size_t b = current.find_first_not_of(' ');
  if (b != std::string::npos) tail = current.substr(b);
  if (!tail.empty()) sentences.push_back(tail);
  return sentences;
}

}  // namespace tokenizer
}  // namespace coachlm
