#include "text/repair.h"

#include <cctype>

#include "text/lexicons.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace repair {

std::string FixKnownSpelling(const std::string& text) {
  std::string out = text;
  for (const auto& [bad, good] : lexicons::SpellingRepairs()) {
    out = strings::ReplaceAll(out, bad, good);
  }
  return out;
}

std::string CapitalizeSentences(const std::string& text) {
  std::string out = text;
  bool at_start = true;
  bool in_code_fence = false;
  for (size_t i = 0; i < out.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(out[i]);
    if (c == '`' && i + 2 < out.size() && out[i + 1] == '`' &&
        out[i + 2] == '`') {
      // Code blocks keep their own casing.
      in_code_fence = !in_code_fence;
      i += 2;
      at_start = false;
      continue;
    }
    if (in_code_fence) continue;
    if (at_start && std::isalpha(c)) {
      out[i] = static_cast<char>(std::toupper(c));
      at_start = false;
    } else if (std::isdigit(c)) {
      // List markers like "1." keep the following text as-is; a period
      // right after a digit does not start a new sentence.
      at_start = false;
      if (i + 1 < out.size() && out[i + 1] == '.') ++i;
    } else if (c == '.' || c == '!' || c == '?' || c == '\n') {
      at_start = true;
    } else if (!std::isspace(c) && c != '"' && c != '\'' && c != '(' &&
               c != '-') {
      at_start = false;
    }
  }
  return out;
}

std::string RemoveDoubledWords(const std::string& text) {
  const auto words = tokenizer::WhitespaceTokenize(text);
  std::string out;
  const std::string* prev = nullptr;
  for (const std::string& word : words) {
    if (prev != nullptr && word.size() > 1 && word == *prev) continue;
    if (!out.empty()) out += ' ';
    out += word;
    prev = &word;
  }
  // Preserve leading/trailing newlines coarsely: whitespace tokenization
  // flattens newlines, so only apply this repair to prose (the callers
  // check for list structure first).
  return out;
}

std::string ReflowLists(const std::string& text) {
  std::string out = text;
  out = strings::ReplaceAll(out, " - ", "\n- ");
  for (char digit = '1'; digit <= '9'; ++digit) {
    const std::string flat = std::string(" ") + digit + ". ";
    const std::string lined = std::string("\n") + digit + ". ";
    out = strings::ReplaceAll(out, flat, lined);
  }
  return out;
}

std::string CollapseSpaces(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool prev_space = false;
  for (char c : text) {
    if (c == ' ') {
      if (prev_space) continue;
      prev_space = true;
    } else {
      prev_space = false;
    }
    out += c;
  }
  return out;
}

}  // namespace repair
}  // namespace coachlm
