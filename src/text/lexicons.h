#ifndef COACHLM_TEXT_LEXICONS_H_
#define COACHLM_TEXT_LEXICONS_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace coachlm {

/// \brief Shared word lists used by the corpus generator, the quality
/// analyzers, and the expert revision simulator.
///
/// Only the generator and the expert oracle consult these tables directly;
/// CoachLM must *learn* e.g. the spelling-correction map from expert
/// revision pairs (see lm/rule_extractor.h), keeping the learning problem
/// honest.
namespace lexicons {

/// Common English stopwords (lower-case).
const std::unordered_set<std::string>& Stopwords();

/// Words/phrases signalling a humanized, empathetic tone.
const std::vector<std::string>& PolitenessMarkers();

/// Hedge/vague words that reduce instruction feasibility ("maybe", "stuff").
const std::unordered_set<std::string>& HedgeWords();

/// Terms that trip the safety red line of Table II.
const std::vector<std::string>& UnsafeTerms();

/// Discourse connectives that indicate explanatory depth ("because",
/// "therefore", "for example").
const std::vector<std::string>& ExplanationMarkers();

/// Map from a correctly spelled word to its corrupted form, used by the
/// defect injector; the expert repairs via the inverse map.
const std::unordered_map<std::string, std::string>& SpellingCorruptions();

/// Inverse of SpellingCorruptions(): corrupted form -> correct form.
const std::unordered_map<std::string, std::string>& SpellingRepairs();

/// Ambiguity fillers used by the AmbiguousInstruction defect ("the thing",
/// "it", "some stuff").
const std::vector<std::string>& AmbiguityFillers();

/// Mechanical-tone boilerplate openers that the Humanization dimension
/// penalizes ("As an AI language model , ...").
const std::vector<std::string>& MechanicalOpeners();

}  // namespace lexicons
}  // namespace coachlm

#endif  // COACHLM_TEXT_LEXICONS_H_
