#ifndef COACHLM_SERVE_ADMISSION_H_
#define COACHLM_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/annotations.h"

namespace coachlm {
namespace serve {

/// \brief Bounded MPMC admission queue — the server's overload valve.
///
/// The accept loop TryPush()es every connection it admits; workers Pop().
/// The bound is the whole point: when the queue is full TryPush returns
/// false *immediately* and the caller sheds the connection with an explicit
/// 429, so memory stays O(queue_depth) no matter how hard clients push
/// (graceful degradation, never silent queueing).
///
/// Shutdown() starts the drain: producers are refused from then on, but
/// consumers keep Pop()ing until the queue is empty — every admitted
/// request gets an answer — and only then does Pop return false.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits \p item unless the queue is full or closed. Never blocks.
  [[nodiscard]] bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > peak_) peak_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false). Opted out of clang's thread-safety analysis: the
  /// cv wait goes through an unannotated std::unique_lock; the lint rule
  /// still checks the lexical scope.
  [[nodiscard]] bool Pop(T* out) COACHLM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Refuses new producers; consumers drain what was already admitted.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of queued items (the serve.queue_depth_peak gauge).
  size_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_ COACHLM_GUARDED_BY(mutex_);
  size_t peak_ COACHLM_GUARDED_BY(mutex_) = 0;
  bool closed_ COACHLM_GUARDED_BY(mutex_) = false;
};

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_ADMISSION_H_
