#include "serve/chaos.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/execution.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace coachlm {
namespace serve {
namespace {

/// Chaos stream-family tag: distinct from FaultInjector's site tags so a
/// plan covering both serve.* and chaos.* sites never replays one stream
/// as the other for the same connection id.
constexpr uint64_t ChaosTag(FaultSite site) {
  return 0xC4A05000ULL + static_cast<uint64_t>(site);
}

}  // namespace

ChaosSocket::ChaosSocket(int fd, const FaultPlan& plan,
                         uint64_t connection_id, Clock* clock)
    : fd_(fd),
      plan_(plan),
      connection_id_(connection_id),
      clock_(clock != nullptr ? clock : Clock::System()) {
  read_ops_ = ArmOps(FaultSite::kChaosRead);
  write_ops_ = ArmOps(FaultSite::kChaosWrite);
  eintr_ops_ = ArmOps(FaultSite::kChaosEintr);
  stall_ops_ = ArmOps(FaultSite::kChaosStall);
  rst_armed_ = ArmOps(FaultSite::kChaosRst) > 0;
}

ChaosSocket::ChaosSocket(int fd)
    : fd_(fd), plan_(), connection_id_(0), clock_(Clock::System()) {}

int ChaosSocket::ArmOps(FaultSite site) const {
  if (!plan_.active()) return 0;
  if ((plan_.site_mask & FaultSiteBit(site)) == 0) return 0;
  // Same keying as FaultInjector::Inject: the connection's chaos destiny
  // is a pure function of (seed, site, connection_id), independent of
  // which thread or process serves it.
  Rng rng = DeriveRng(MixSeed(plan_.seed, ChaosTag(site)), connection_id_);
  if (!rng.NextBool(plan_.transient_rate)) return 0;
  int ops = 1;
  while (ops < kMaxChaosOpsPerSite && rng.NextBool(plan_.burst_continuation)) {
    ++ops;
  }
  return ops;
}

void ChaosSocket::MaybeStall() {
  if (stall_ops_ <= 0) return;
  --stall_ops_;
  ++stats_.stalls_injected;
  CountMetric("serve.chaos.stalls_injected");
  const int64_t stall =
      plan_.latency_us > 0 ? plan_.latency_us : kDefaultChaosStallMicros;
  clock_->SleepMicros(std::min(stall, kMaxChaosStallMicros));
}

bool ChaosSocket::MaybeEintr() {
  if (eintr_ops_ <= 0) return false;
  --eintr_ops_;
  ++stats_.eintr_injected;
  CountMetric("serve.chaos.eintr_injected");
  errno = EINTR;
  return true;
}

ssize_t ChaosSocket::Recv(char* buffer, size_t length) {
  if (MaybeEintr()) return -1;
  MaybeStall();
  size_t want = length;
  if (read_ops_ > 0 && length > 1) {
    // Slowloris in reverse: surface the stream one byte at a time so the
    // caller's framing loop must cope with arbitrarily fine fragmentation.
    --read_ops_;
    ++stats_.reads_disturbed;
    CountMetric("serve.chaos.reads_disturbed");
    want = 1;
  }
  return ::recv(fd_, buffer, want, 0);
}

ssize_t ChaosSocket::Send(const char* buffer, size_t length) {
  if (MaybeEintr()) return -1;
  MaybeStall();
  size_t want = length;
  if (write_ops_ > 0 && length > 1) {
    // A torn write: a real prefix goes out, the caller must loop for the
    // rest.
    --write_ops_;
    ++stats_.writes_torn;
    CountMetric("serve.chaos.writes_torn");
    want = std::max<size_t>(1, length / 4);
  }
  return ::send(fd_, buffer, want, MSG_NOSIGNAL);
}

Status ChaosSocket::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = Send(bytes.data() + sent, bytes.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;  // Interrupted, not failed: retry.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "chaos: send timed out after " + std::to_string(sent) + " of " +
            std::to_string(bytes.size()) + " bytes");
      }
      return Status::IoError("chaos: send(): " +
                             std::string(std::strerror(errno)));
    }
    if (wrote == 0) {
      return Status::IoError("chaos: send() wrote nothing");
    }
    sent += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

void ChaosSocket::Close() {
  if (rst_armed_) {
    // SO_LINGER{on, 0}: close() discards the send queue and fires RST —
    // the adversarial hangup the server's robust paths must absorb.
    linger hard = {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    (void)setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    CountMetric("serve.chaos.rst_closes");
  }
  (void)::close(fd_);
}

}  // namespace serve
}  // namespace coachlm
