#include "serve/supervisor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "serve/server.h"

namespace coachlm {
namespace serve {

Status SupervisorConfig::Validate() const {
  if (processes < 1 || processes > 256) {
    return Status::InvalidArgument(
        "serve: --serve-processes must be in 1..256, got " +
        std::to_string(processes));
  }
  if (restart_initial_backoff_ms < 0) {
    return Status::InvalidArgument(
        "serve: restart_initial_backoff_ms must be >= 0, got " +
        std::to_string(restart_initial_backoff_ms));
  }
  if (restart_backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "serve: restart_backoff_multiplier must be >= 1.0");
  }
  if (restart_max_backoff_ms < restart_initial_backoff_ms) {
    return Status::InvalidArgument(
        "serve: restart_max_backoff_ms must be >= the initial backoff");
  }
  if (restart_limit < 1) {
    return Status::InvalidArgument("serve: restart_limit must be >= 1, got " +
                                   std::to_string(restart_limit));
  }
  if (restart_window_ms < 1) {
    return Status::InvalidArgument(
        "serve: restart_window_ms must be >= 1, got " +
        std::to_string(restart_window_ms));
  }
  if (poll_interval_ms < 1) {
    return Status::InvalidArgument(
        "serve: poll_interval_ms must be >= 1, got " +
        std::to_string(poll_interval_ms));
  }
  return Status::OK();
}

int64_t RestartBackoffMicros(const SupervisorConfig& config, int failures,
                             int worker_index) {
  // The respawn ladder IS a retry schedule: reuse the deterministic
  // exponential-backoff-with-jitter the record-level retries already use,
  // keyed on the worker slot so two crashing slots decorrelate.
  RetryPolicy policy;
  policy.initial_backoff_us = config.restart_initial_backoff_ms * 1000;
  policy.backoff_multiplier = config.restart_backoff_multiplier;
  policy.max_backoff_us = config.restart_max_backoff_ms * 1000;
  policy.max_attempts = failures + 1;
  return policy.BackoffMicros(failures + 1,
                              static_cast<uint64_t>(worker_index));
}

WorkerSupervisor::WorkerSupervisor(const SupervisorConfig& config,
                                   WorkerBody body, Clock* clock)
    : config_(config),
      body_(std::move(body)),
      clock_(clock != nullptr ? clock : Clock::System()) {}

pid_t WorkerSupervisor::Spawn(int index) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Worker child: run the body, then exit without parent-side atexit
    // hooks (the body is responsible for its own flushes).
    std::_Exit(body_(index));
  }
  if (pid > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[static_cast<size_t>(index)].pid = pid;
    }
    ++stats_.spawned;
    CountMetric("serve.supervisor.workers_spawned");
  }
  return pid;
}

Status WorkerSupervisor::Start() {
  COACHLM_RETURN_NOT_OK(config_.Validate());
  if (started_) {
    return Status::FailedPrecondition("serve: supervisor already started");
  }
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.assign(static_cast<size_t>(config_.processes), WorkerSlot{});
  }
  for (int i = 0; i < config_.processes; ++i) {
    if (Spawn(i) < 0) {
      const Status status = Status::IoError(
          "serve: fork() failed for worker " + std::to_string(i));
      SignalAll(SIGTERM);
      ReapAll();
      return status;
    }
  }
  COACHLM_LOG_INFO << "serve: supervisor started " << config_.processes
                   << " worker processes";
  return Status::OK();
}

void WorkerSupervisor::SignalAll(int signum) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const WorkerSlot& slot : slots_) {
    if (slot.pid > 0) (void)::kill(slot.pid, signum);
  }
}

void WorkerSupervisor::ReapAll() {
  while (true) {
    std::vector<pid_t> live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const WorkerSlot& slot : slots_) {
        if (slot.pid > 0) live.push_back(slot.pid);
      }
    }
    if (live.empty()) return;
    for (const pid_t pid : live) {
      int status = 0;
      // A failure (ECHILD: already reaped) still empties the slot below.
      (void)::waitpid(pid, &status, 0);
      std::lock_guard<std::mutex> lock(mu_);
      for (WorkerSlot& slot : slots_) {
        if (slot.pid == pid) slot.pid = -1;
      }
    }
  }
}

void WorkerSupervisor::RequestDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  SignalAll(SIGTERM);
}

void WorkerSupervisor::RequestReload() { SignalAll(SIGHUP); }

std::vector<pid_t> WorkerSupervisor::WorkerPids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  pids.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) pids.push_back(slot.pid);
  return pids;
}

int WorkerSupervisor::Run() {
  while (true) {
    if (!draining_.load(std::memory_order_acquire) && ServeDrainSignalled()) {
      RequestDrain();
    }
    if (ConsumeReloadSignal()) RequestReload();

    // Reap every child that died since the last tick.
    while (true) {
      int wait_status = 0;
      const pid_t pid = ::waitpid(-1, &wait_status, WNOHANG);
      if (pid <= 0) break;
      int index = -1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i].pid == pid) {
            slots_[i].pid = -1;
            index = static_cast<int>(i);
            break;
          }
        }
      }
      if (index < 0) continue;  // Not ours (cannot happen in practice).
      if (draining_.load(std::memory_order_acquire)) continue;

      // A death outside drain is a crash, whatever the exit status —
      // crash-only design makes no distinction worth acting on beyond the
      // log line. Schedule the respawn on the deterministic ladder.
      const int64_t now = clock_->NowMicros();
      int failures = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        failures = ++slots_[static_cast<size_t>(index)].failures;
      }
      ++stats_.crashed;
      CountMetric("serve.supervisor.workers_crashed");
      if (WIFSIGNALED(wait_status)) {
        COACHLM_LOG_WARN << "serve: worker " << index << " (pid " << pid
                         << ") killed by signal " << WTERMSIG(wait_status);
      } else {
        COACHLM_LOG_WARN << "serve: worker " << index << " (pid " << pid
                         << ") exited with status "
                         << WEXITSTATUS(wait_status);
      }

      // Circuit breaker: too many deaths inside the window means the fleet
      // is crash-looping (bad checkpoint, poisoned config) and respawning
      // harder will not fix it.
      const int64_t window_micros = config_.restart_window_ms * 1000;
      crash_times_micros_.push_back(now);
      crash_times_micros_.erase(
          std::remove_if(crash_times_micros_.begin(),
                         crash_times_micros_.end(),
                         [&](int64_t t) { return now - t > window_micros; }),
          crash_times_micros_.end());
      if (static_cast<int>(crash_times_micros_.size()) >
          config_.restart_limit) {
        stats_.circuit_opened = true;
        CountMetric("serve.supervisor.circuit_opened");
        COACHLM_LOG_WARN << "serve: restart circuit breaker opened ("
                         << crash_times_micros_.size() << " crashes in "
                         << config_.restart_window_ms
                         << " ms); terminating the fleet";
        SignalAll(SIGTERM);
        ReapAll();
        return kSupervisorCircuitExitCode;
      }

      const int64_t backoff = RestartBackoffMicros(config_, failures, index);
      {
        std::lock_guard<std::mutex> lock(mu_);
        slots_[static_cast<size_t>(index)].respawn_at_micros = now + backoff;
      }
      CountMetric("serve.supervisor.restart_backoff_micros",
                  static_cast<uint64_t>(backoff));
    }

    // Respawn every slot whose backoff has elapsed. The due list is
    // snapshotted under the lock, then the forks happen outside it so a
    // slow fork never blocks WorkerPids() readers.
    if (!draining_.load(std::memory_order_acquire)) {
      const int64_t now = clock_->NowMicros();
      struct DueSlot {
        int index;
        int failures;
      };
      std::vector<DueSlot> due;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i].pid < 0 && slots_[i].failures > 0 &&
              now >= slots_[i].respawn_at_micros) {
            due.push_back(DueSlot{static_cast<int>(i), slots_[i].failures});
          }
        }
      }
      for (const DueSlot& slot : due) {
        if (Spawn(slot.index) > 0) {
          ++stats_.respawned;
          CountMetric("serve.supervisor.workers_respawned");
          COACHLM_LOG_INFO << "serve: worker " << slot.index
                           << " respawned (failure " << slot.failures << ")";
        }
      }
    }

    // Drained: every slot empty and no respawns pending.
    if (draining_.load(std::memory_order_acquire)) {
      bool all_gone = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const WorkerSlot& slot : slots_) {
          if (slot.pid > 0) {
            all_gone = false;
            break;
          }
        }
      }
      if (all_gone) return 0;
    }
    clock_->SleepMicros(config_.poll_interval_ms * 1000);
  }
}

}  // namespace serve
}  // namespace coachlm
