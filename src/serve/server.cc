#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "serve/chaos.h"
#include "serve/handler.h"
#include "serve/http.h"

namespace coachlm {
namespace serve {
namespace {

// Signal handlers may only touch lock-free sig_atomic_t flags; everything
// else happens on the accept loop's poll tick.
volatile std::sig_atomic_t g_drain_signalled = 0;
volatile std::sig_atomic_t g_reload_signalled = 0;

void OnDrainSignal(int /*signum*/) { g_drain_signalled = 1; }
void OnReloadSignal(int /*signum*/) { g_reload_signalled = 1; }

timeval TimevalFromMillis(int64_t millis) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  return tv;
}

/// Bounds recv/send on a worker's socket independently, so a dripping
/// reader (slowloris) hits the read timeout and a peer that stopped
/// consuming its response hits the write timeout — neither can pin a
/// worker thread forever.
void SetSocketTimeouts(int fd, int64_t read_ms, int64_t write_ms) {
  const timeval read_tv = TimevalFromMillis(read_ms);
  const timeval write_tv = TimevalFromMillis(write_ms);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &read_tv, sizeof(read_tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &write_tv, sizeof(write_tv));
}

/// Sends a canned response on a connection whose request was never read
/// (shed / accept-fault paths), then drains what the client sent before
/// close(). Closing with unread bytes in the receive buffer turns into a
/// TCP RST that can destroy the response in flight — the client would see
/// "connection reset" instead of the typed 429/503 we just wrote. The
/// drain is bounded (byte cap + the socket's recv timeout) so a hostile
/// flood cannot pin the accept loop.
void SendResponseAndDiscard(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
    if (wrote < 0 && errno == EINTR) continue;  // Interrupted: retry.
    if (wrote <= 0) return;  // Timeout or peer gone: give up.
    sent += static_cast<size_t>(wrote);
  }
  (void)::shutdown(fd, SHUT_WR);
  char sink[4096];
  size_t drained = 0;
  while (drained < (1u << 20)) {
    const ssize_t got = ::recv(fd, sink, sizeof(sink), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // EOF, error, or recv timeout: safe to close.
    drained += static_cast<size_t>(got);
  }
}

}  // namespace

void InstallServeSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnDrainSignal;
  sigemptyset(&action.sa_mask);
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
  action.sa_handler = OnReloadSignal;
  (void)sigaction(SIGHUP, &action, nullptr);
  // A peer closing mid-write must surface as a send error, not SIGPIPE.
  (void)signal(SIGPIPE, SIG_IGN);
}

bool ServeDrainSignalled() { return g_drain_signalled != 0; }

bool ConsumeReloadSignal() {
  if (g_reload_signalled == 0) return false;
  g_reload_signalled = 0;
  return true;
}

void ResetServeSignalsForTest() {
  g_drain_signalled = 0;
  g_reload_signalled = 0;
}

RevisionServer::RevisionServer(const ServeConfig& config, ModelHost* models,
                               Clock* clock)
    : config_(config),
      models_(models),
      clock_(clock != nullptr ? clock : Clock::System()),
      queue_(static_cast<size_t>(config.queue_depth)) {}

RevisionServer::~RevisionServer() {
  RequestDrain();
  AwaitDrain();
}

Status RevisionServer::StartServing() {
  COACHLM_RETURN_NOT_OK(config_.Validate());
  if (models_->Snapshot() == nullptr) {
    return Status::FailedPrecondition(
        "serve: start requires a loaded model (ModelHost::Load first)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("serve: socket(): " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.reuse_port) {
    // Supervised multi-process mode: every worker process binds the same
    // port and the kernel balances incoming connections across listeners.
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      const Status status = Status::IoError(
          "serve: setsockopt(SO_REUSEPORT): " +
          std::string(std::strerror(errno)));
      ::close(fd);
      return status;
    }
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(
        "serve: bind(127.0.0.1:" + std::to_string(config_.port) +
        "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, config_.queue_depth) < 0) {
    const Status status =
        Status::IoError("serve: listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const Status status = Status::IoError("serve: getsockname(): " +
                                          std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  COACHLM_LOG_INFO << "serve: listening on 127.0.0.1:" << port_ << " ("
                   << config_.workers << " workers, queue depth "
                   << config_.queue_depth << ")";
  return Status::OK();
}

void RevisionServer::CloseListener() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a blocked accept/poll before close.
    (void)::shutdown(fd, SHUT_RDWR);
    (void)::close(fd);
  }
}

void RevisionServer::RequestDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Drain order is the contract: listener first (no new admissions), then
  // the queue (workers answer everything already admitted, then exit).
  CloseListener();
  queue_.Shutdown();
}

ModelHost::ReloadResult RevisionServer::RequestReload() {
  const ModelHost::ReloadResult result = models_->Reload();
  if (result.status.ok()) {
    stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
    COACHLM_LOG_INFO << "serve: model reloaded, version " << result.version;
  } else {
    stats_.reloads_rejected.fetch_add(1, std::memory_order_relaxed);
    CountMetric("serve.reloads_rejected");
    COACHLM_LOG_WARN << "serve: reload rejected, keeping version "
                     << result.version << ": " << result.status.ToString();
  }
  return result;
}

void RevisionServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    if (ServeDrainSignalled()) {
      RequestDrain();
      break;
    }
    if (ConsumeReloadSignal()) {
      if (RequestReload().status.ok()) {
        CountMetric("serve.reloads_ok");
      }
    }
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(config_.poll_interval_ms));
    if (ready <= 0) continue;  // Timeout (signal-poll tick) or EINTR.
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;  // Listener closed under us or transient.

    const uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    CountMetric("serve.connections_accepted");
    SetSocketTimeouts(conn, config_.EffectiveReadTimeoutMs(),
                      config_.EffectiveWriteTimeoutMs());

    // The connection-level fault site: a plan targeting serve.accept turns
    // admission itself into a typed 503, exercising client retry paths.
    const FaultInjector injector(config_.fault_plan);
    const Status injected =
        injector.Inject(FaultSite::kServeAccept, request_id, 1, nullptr);
    if (!injected.ok()) {
      HttpResponse response;
      response.status = HttpStatusFromStatus(injected);
      response.body = HttpErrorBody(injected);
      SendResponseAndDiscard(conn, response.Serialize());
      (void)::close(conn);
      RecordRequestMetrics(response, "/", 0);
      stats_.requests_server_error.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (!queue_.TryPush(conn)) {
      // Admission control: full queue -> explicit shed, bounded memory.
      HttpResponse response;
      response.status = 429;
      response.headers["Retry-After"] =
          std::to_string(config_.retry_after_seconds);
      response.body = HttpErrorBody(Status::ResourceExhausted(
          "serve: admission queue full (depth " +
          std::to_string(config_.queue_depth) + "); retry after " +
          std::to_string(config_.retry_after_seconds) + "s"));
      SendResponseAndDiscard(conn, response.Serialize());
      (void)::close(conn);
      RecordRequestMetrics(response, "/", 0);
      stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SetGaugeMetric("serve.queue_depth_peak",
                   static_cast<int64_t>(queue_.peak()));
  }
}

void RevisionServer::WorkerLoop() {
  int fd = -1;
  while (queue_.Pop(&fd)) {
    const uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(fd, request_id);
    (void)::close(fd);
  }
}

void RevisionServer::ServeConnection(int fd, uint64_t request_id) {
  const int64_t started_micros = clock_->NowMicros();
  HttpRequestParser parser(config_.http_limits);
  char buffer[16 * 1024];
  Status parse_status = Status::OK();
  // Server-side chaos disturbs this worker's own syscalls (short reads,
  // torn writes, EINTR, stalls) to prove the loops below are robust; the
  // RST site stays client-only — the server must never tear down an
  // admitted connection on purpose.
  FaultPlan server_chaos = config_.fault_plan;
  server_chaos.site_mask &=
      ~FaultSiteBit(FaultSite::kChaosRst);
  ChaosSocket socket(fd, server_chaos, request_id, clock_);
  while (!parser.complete()) {
    const ssize_t got = socket.Recv(buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;  // Interrupted (real or injected).
      parse_status = (errno == EAGAIN || errno == EWOULDBLOCK)
                         ? Status::DeadlineExceeded(
                               "serve: timed out reading the request")
                         : Status::IoError("serve: recv(): " +
                                           std::string(std::strerror(errno)));
      break;
    }
    if (got == 0) {
      parse_status =
          Status::InvalidArgument("serve: client closed before a full request");
      break;
    }
    parse_status = parser.Feed(buffer, static_cast<size_t>(got));
    if (!parse_status.ok()) break;
  }

  HttpResponse response;
  std::string target = "/";
  if (!parse_status.ok()) {
    response.status = HttpStatusFromStatus(parse_status);
    // A read timeout is the *client's* slowness, not an upstream's: 408.
    if (parse_status.code() == StatusCode::kDeadlineExceeded) {
      response.status = 408;
    }
    response.body = HttpErrorBody(parse_status);
  } else {
    ServeContext context;
    context.config = &config_;
    context.models = models_;
    context.clock = clock_;
    context.draining = draining_.load(std::memory_order_acquire);
    target = parser.request().target;
    response = HandleRequest(context, request_id, parser.request());
    if (target == "/admin/reload") {
      if (response.status == 200) {
        stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.reloads_rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Robust full-write: loops through partial writes and EINTR. A peer
  // that vanished or stopped reading is their loss — the request was
  // still answered as far as the drain contract is concerned.
  (void)socket.SendAll(response.Serialize());
  RecordRequestMetrics(response, target,
                       clock_->NowMicros() - started_micros);
  if (response.status < 400) {
    stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status == 504 || response.status == 408) {
    stats_.requests_deadline.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status >= 500) {
    stats_.requests_server_error.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.requests_client_error.fetch_add(1, std::memory_order_relaxed);
  }
}

void RevisionServer::AwaitDrain() {
  if (joined_.exchange(true, std::memory_order_acq_rel)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  SetGaugeMetric("serve.queue_depth_peak",
                 static_cast<int64_t>(queue_.peak()));
  COACHLM_LOG_INFO << "serve: drained ("
                   << stats_.requests_ok.load(std::memory_order_relaxed)
                   << " ok, "
                   << stats_.requests_shed.load(std::memory_order_relaxed)
                   << " shed)";
}

}  // namespace serve
}  // namespace coachlm
