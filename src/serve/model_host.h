#ifndef COACHLM_SERVE_MODEL_HOST_H_
#define COACHLM_SERVE_MODEL_HOST_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "coach/coach_lm.h"
#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"

namespace coachlm {
namespace serve {

/// \brief Owner of the served coach model, with hot reload.
///
/// The live model is an immutable `shared_ptr<const CoachLm>` snapshot:
/// every request Snapshot()s at admission and keeps revising on that
/// object even if a reload lands mid-request — in-flight work always
/// finishes on the model it started with, and the old model is freed when
/// its last request drops the reference.
///
/// Reload() re-reads the checkpoint path and swaps atomically on success
/// only. A torn or invalid artifact (the checkpoint writer's atomic
/// rename makes this rare, but operators can still point the server at
/// garbage) returns the loader's typed error and leaves the old snapshot
/// live — a failed reload is observable, never destructive.
class ModelHost {
 public:
  ModelHost(std::string checkpoint_path, coach::CoachConfig config)
      : checkpoint_path_(std::move(checkpoint_path)), config_(config) {}

  /// Initial load; the server refuses to start without a valid model.
  [[nodiscard]] Status Load() { return ReloadLocked().status; }

  /// Outcome of one reload attempt.
  struct ReloadResult {
    Status status;
    /// Model version now live (increments only on success).
    uint64_t version = 0;
  };

  /// Atomically swaps in a fresh checkpoint read; on failure the previous
  /// model stays live. Safe to call concurrently from the signal-polling
  /// accept loop and a /admin/reload worker.
  ReloadResult Reload() { return ReloadLocked(); }

  /// The current immutable model snapshot (nullptr before first Load()).
  std::shared_ptr<const coach::CoachLm> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return model_;
  }

  /// Monotone version of the live snapshot: 1 after the initial load,
  /// +1 per successful reload.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return version_;
  }

  const std::string& checkpoint_path() const { return checkpoint_path_; }
  const coach::CoachConfig& config() const { return config_; }

 private:
  ReloadResult ReloadLocked() {
    // The checkpoint read happens outside the swap lock on purpose: a slow
    // disk must not stall Snapshot() calls on the request path.
    Result<coach::CoachLm> loaded =
        coach::CoachLm::LoadCheckpoint(checkpoint_path_, config_);
    ReloadResult result;
    if (!loaded.ok()) {
      result.status = loaded.status();
      std::lock_guard<std::mutex> lock(mutex_);
      result.version = version_;
      return result;
    }
    auto fresh =
        std::make_shared<const coach::CoachLm>(std::move(loaded).ValueOrDie());
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(fresh);
    ++version_;
    result.version = version_;
    return result;
  }

  const std::string checkpoint_path_;
  const coach::CoachConfig config_;
  mutable std::mutex mutex_;
  std::shared_ptr<const coach::CoachLm> model_ COACHLM_GUARDED_BY(mutex_);
  uint64_t version_ COACHLM_GUARDED_BY(mutex_) = 0;
};

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_MODEL_HOST_H_
