#include "serve/handler.h"

#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/execution.h"
#include "common/metrics.h"
#include "common/runtime.h"
#include "data/instruction_pair.h"
#include "json/json.h"
#include "json/jsonl.h"

namespace coachlm {
namespace serve {
namespace {

HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status = HttpStatusFromStatus(status);
  response.body = HttpErrorBody(status);
  return response;
}

HttpResponse JsonResponse(json::Object object) {
  HttpResponse response;
  response.body = json::Value(std::move(object)).Dump();
  return response;
}

HttpResponse HandleHealth(const ServeContext& context) {
  json::Object body;
  body["model_version"] = json::Value(context.models->version());
  body["status"] = json::Value(context.draining ? "draining" : "ok");
  return JsonResponse(std::move(body));
}

HttpResponse HandleModelInfo(const ServeContext& context) {
  const std::shared_ptr<const coach::CoachLm> model =
      context.models->Snapshot();
  if (model == nullptr) {
    return ErrorResponse(Status::Unavailable("serve: no model loaded"));
  }
  json::Object body;
  body["backbone"] = json::Value(model->config().backbone.name);
  body["checkpoint"] = json::Value(context.models->checkpoint_path());
  body["rules_trained"] = json::Value(model->rules().train_pairs);
  body["seed"] = json::Value(static_cast<int64_t>(model->config().seed));
  body["version"] = json::Value(context.models->version());
  return JsonResponse(std::move(body));
}

HttpResponse HandleReload(const ServeContext& context) {
  const ModelHost::ReloadResult result = context.models->Reload();
  if (!result.status.ok()) {
    // A torn/invalid artifact is the *operator's* asset failing, not the
    // client's request: always 503 (the old model is still serving), with
    // the loader's typed code preserved in the body for the runbook.
    CountMetric("serve.reloads_rejected");
    HttpResponse response = ErrorResponse(result.status);
    response.status = 503;
    return response;
  }
  CountMetric("serve.reloads_ok");
  json::Object body;
  body["status"] = json::Value("reloaded");
  body["version"] = json::Value(result.version);
  return JsonResponse(std::move(body));
}

HttpResponse HandleRevise(const ServeContext& context, uint64_t request_id,
                          const HttpRequest& request) {
  const ServeConfig& config = *context.config;
  // The request-envelope fault site: a plan targeting serve.parse makes
  // body handling itself fail (typed 5xx/4xx), exercising the client-visible
  // degraded path deterministically.
  const FaultInjector injector(config.fault_plan);
  {
    const Status injected = injector.Inject(FaultSite::kServeParse,
                                            request_id, 1, context.clock);
    if (!injected.ok()) return ErrorResponse(injected);
  }

  Result<std::vector<json::Value>> parsed =
      json::ParseLines(request.body, config.parse_limits);
  if (!parsed.ok()) {
    // Hostile or over-budget JSONL: typed 4xx, never a crash. The limits
    // carry byte offsets in the message so the client can find the line.
    return ErrorResponse(parsed.status());
  }
  const std::vector<json::Value>& lines = parsed.ValueOrDie();
  CountMetric("serve.records_in", lines.size());

  const std::shared_ptr<const coach::CoachLm> model =
      context.models->Snapshot();
  if (model == nullptr) {
    return ErrorResponse(Status::Unavailable("serve: no model loaded"));
  }

  // Per-request budget + fault envelope: the same machinery batch stages
  // run under, scoped to this one request. Transient revise faults retry
  // under config.retry; permanent ones degrade per record (original pair
  // kept); a blown deadline fails the whole request as a typed 504.
  CancelToken cancel = CancelToken::AfterMicros(
      context.clock, config.request_deadline_ms * 1000);
  PipelineRuntime runtime(FaultInjector(config.fault_plan), config.retry,
                          context.clock);
  runtime.set_cancel_token(&cancel);

  std::string out;
  size_t quarantined = 0;
  for (const json::Value& line : lines) {
    Result<InstructionPair> pair_result = InstructionPair::FromJson(line);
    if (!pair_result.ok()) return ErrorResponse(pair_result.status());
    const InstructionPair& pair = pair_result.ValueOrDie();

    InstructionPair revised;
    const Status status = runtime.Run(FaultSite::kServeRevise, pair.id, [&] {
      // Same derivation as the batch pass (seed x pair id, position-free),
      // which is what makes a served revision byte-identical to
      // `coachlm revise` for the same record.
      Rng rng = DeriveRng(model->config().seed, pair.id);
      revised = model->Revise(pair, &rng);
      return Status::OK();
    });
    if (cancel.cancelled()) {
      // Deadline or external cancel: the whole request gets one typed
      // failure instead of a silently truncated body.
      return ErrorResponse(cancel.status());
    }
    if (!status.ok()) {
      // Permanent per-record failure: degrade exactly like the batch pass —
      // the original pair is returned and the record counts as quarantined.
      revised = pair;
      ++quarantined;
    }
    out += revised.ToJson().Dump();
    out += '\n';
  }
  CountMetric("serve.records_revised", lines.size() - quarantined);
  if (quarantined > 0) CountMetric("serve.records_quarantined", quarantined);

  HttpResponse response;
  response.content_type = "application/x-ndjson";
  response.body = std::move(out);
  return response;
}

HttpResponse MethodNotAllowed(const std::string& method,
                              const std::string& target) {
  HttpResponse response = ErrorResponse(Status::InvalidArgument(
      "serve: method " + method + " not allowed on " + target));
  response.status = 405;
  return response;
}

}  // namespace

HttpResponse HandleRequest(const ServeContext& context, uint64_t request_id,
                           const HttpRequest& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return MethodNotAllowed(request.method, request.target);
    }
    return HandleHealth(context);
  }
  if (request.target == "/v1/model") {
    if (request.method != "GET") {
      return MethodNotAllowed(request.method, request.target);
    }
    return HandleModelInfo(context);
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return MethodNotAllowed(request.method, request.target);
    }
    HttpResponse response;
    response.body = MetricsRegistry::Default().ToJson().Dump();
    return response;
  }
  if (request.target == "/admin/reload") {
    if (request.method != "POST") {
      return MethodNotAllowed(request.method, request.target);
    }
    return HandleReload(context);
  }
  if (request.target == "/v1/revise") {
    if (request.method != "POST") {
      return MethodNotAllowed(request.method, request.target);
    }
    return HandleRevise(context, request_id, request);
  }
  return ErrorResponse(
      Status::NotFound("serve: no endpoint at " + request.target));
}

void RecordRequestMetrics(const HttpResponse& response,
                          const std::string& target, int64_t latency_micros) {
  if (response.status == 429) {
    CountMetric("serve.requests_shed");
  } else if (response.status == 504 || response.status == 408) {
    CountMetric("serve.requests_deadline_exceeded");
  } else if (response.status >= 500) {
    CountMetric("serve.requests_server_error");
  } else if (response.status >= 400) {
    CountMetric("serve.requests_client_error");
  } else {
    CountMetric("serve.requests_ok");
  }
  if (target == "/v1/revise") {
    ObserveMetric("serve.latency_revise_micros", latency_micros);
  } else if (target == "/admin/reload") {
    ObserveMetric("serve.latency_admin_micros", latency_micros);
  } else {
    ObserveMetric("serve.latency_health_micros", latency_micros);
  }
}

}  // namespace serve
}  // namespace coachlm
