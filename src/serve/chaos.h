#ifndef COACHLM_SERVE_CHAOS_H_
#define COACHLM_SERVE_CHAOS_H_

#include <sys/types.h>

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/fault.h"
#include "common/status.h"

namespace coachlm {
namespace serve {

/// Upper bound on how many socket operations one chaos site disturbs per
/// connection. Mirrors kMaxTransientBurst: robust I/O loops that survive
/// this many consecutive disturbances survive any plan.
inline constexpr int kMaxChaosOpsPerSite = 4;

/// Stall sleep applied per disturbed operation when the plan carries no
/// explicit latency_us, and the hard cap on any single injected stall.
inline constexpr int64_t kDefaultChaosStallMicros = 20000;
inline constexpr int64_t kMaxChaosStallMicros = 1000000;

/// \brief Per-connection tally of what the chaos wrapper injected.
struct ChaosStats {
  uint64_t reads_disturbed = 0;
  uint64_t writes_torn = 0;
  uint64_t eintr_injected = 0;
  uint64_t stalls_injected = 0;
};

/// \brief Deterministic socket-fault wrapper over one connection FD.
///
/// Driven by the same FaultPlan grammar as the stage-level FaultInjector,
/// through five dedicated sites: chaos.read drips reads one byte at a time
/// (slowloris), chaos.write tears writes into short chunks, chaos.eintr
/// interrupts syscalls with EINTR, chaos.stall sleeps before an operation
/// (a silent peer), and chaos.rst arms a hard TCP reset on close. Every
/// decision is a pure function of (plan.seed, site, connection_id) keyed
/// exactly like FaultInjector::Inject — equal plans against equal
/// connection ids disturb the same operations no matter which thread or
/// process carries the connection. A default plan (or one whose mask
/// carries no chaos sites) makes every call a thin passthrough plus the
/// robust-I/O semantics of SendAll/RecvSome.
///
/// The wrapper does not own the FD; callers close it (Close() is offered
/// for the RST-aware path). Injected disturbances still move real bytes —
/// a torn write writes a prefix, a dripped read reads one byte — so the
/// wrapper never forges data, only adversarial scheduling.
class ChaosSocket {
 public:
  /// Wraps \p fd. \p clock serves injected stalls (nullptr = system clock).
  ChaosSocket(int fd, const FaultPlan& plan, uint64_t connection_id,
              Clock* clock = nullptr);

  /// Inert wrapper: no plan, passthrough I/O only.
  explicit ChaosSocket(int fd);

  ChaosSocket(const ChaosSocket&) = delete;
  ChaosSocket& operator=(const ChaosSocket&) = delete;

  /// recv() with chaos applied: may return -1/EINTR (injected storm),
  /// sleep (injected stall), or read a single byte (injected drip). Real
  /// errno values pass through untouched.
  ssize_t Recv(char* buffer, size_t length);

  /// send(MSG_NOSIGNAL) with chaos applied: may return -1/EINTR, sleep, or
  /// write a short prefix. Callers must loop — exactly the discipline the
  /// production write paths need anyway.
  ssize_t Send(const char* buffer, size_t length);

  /// Robust full-write loop over Send(): retries EINTR (real or injected)
  /// and partial writes until every byte is out. DeadlineExceeded when the
  /// socket's send timeout expires (EAGAIN), IoError when the peer is gone.
  [[nodiscard]] Status SendAll(const std::string& bytes);

  /// True when the plan elected this connection for a mid-stream RST.
  bool rst_armed() const { return rst_armed_; }

  /// Closes the FD; when rst_armed(), SO_LINGER{1,0} first so the peer
  /// observes a hard RST instead of an orderly FIN.
  void Close();

  int fd() const { return fd_; }
  const ChaosStats& stats() const { return stats_; }

 private:
  /// Remaining disturbed operations for one site on this connection.
  int ArmOps(FaultSite site) const;
  /// Serves a pending stall for one operation, if armed.
  void MaybeStall();
  /// Serves a pending EINTR, if armed. True when the caller must return
  /// -1/EINTR.
  bool MaybeEintr();

  const int fd_;
  const FaultPlan plan_;
  const uint64_t connection_id_;
  Clock* const clock_;
  int read_ops_ = 0;
  int write_ops_ = 0;
  int eintr_ops_ = 0;
  int stall_ops_ = 0;
  bool rst_armed_ = false;
  ChaosStats stats_;
};

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_CHAOS_H_
