#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "json/json.h"

namespace coachlm {
namespace serve {
namespace {

const std::string kEmpty;

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool IsToken(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 127) return false;
  }
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(
    const std::string& lowercase_name) const {
  const auto it = headers.find(lowercase_name);
  return it == headers.end() ? kEmpty : it->second;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 413;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kCancelled:
      return 503;
    default:
      return 500;
  }
}

std::string HttpErrorBody(const Status& status) {
  json::Object error;
  error["code"] = json::Value(StatusCodeToString(status.code()));
  error["message"] = json::Value(status.message());
  json::Object root;
  root["error"] = json::Value(std::move(error));
  return json::Value(std::move(root)).Dump();
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

HttpRequestParser::HttpRequestParser(HttpLimits limits) : limits_(limits) {}

size_t HttpRequestParser::remaining_body_bytes() const {
  if (!head_complete_ || complete_) return 0;
  return body_expected_ - request_.body.size();
}

Status HttpRequestParser::Feed(const char* data, size_t len) {
  if (!error_.ok()) return error_;
  if (complete_) {
    error_ = Status::InvalidArgument(
        "http: bytes after a complete request (one request per connection)");
    return error_;
  }
  size_t pos = 0;
  if (!head_complete_) {
    buffer_.append(data, len);
    // Budget the raw head: request line + all header bytes, pre-parse, so a
    // peer streaming an endless header line cannot grow the buffer.
    if (buffer_.size() > limits_.max_request_line_bytes +
                             limits_.max_header_bytes) {
      error_ = Status::ResourceExhausted(
          "http: request head exceeds " +
          std::to_string(limits_.max_request_line_bytes +
                         limits_.max_header_bytes) +
          " bytes");
      return error_;
    }
    error_ = ParseHead();
    if (!error_.ok()) return error_;
    if (!head_complete_) return Status::OK();
    // ParseHead consumed the head in-place; what is left is body prefix.
    pos = 0;
    len = buffer_.size();
    data = buffer_.data();
  }
  const size_t want = body_expected_ - request_.body.size();
  const size_t take = std::min(want, len - pos);
  request_.body.append(data + pos, take);
  if (pos + take < len) {
    error_ = Status::InvalidArgument(
        "http: " + std::to_string(len - pos - take) +
        " bytes past declared Content-Length");
    return error_;
  }
  buffer_.clear();
  if (request_.body.size() == body_expected_) complete_ = true;
  return Status::OK();
}

Status HttpRequestParser::ParseHead() {
  size_t line_start = 0;
  while (true) {
    const size_t nl = buffer_.find('\n', line_start);
    if (nl == std::string::npos) {
      // Partial line; keep only the unconsumed tail and wait for bytes.
      buffer_.erase(0, line_start);
      if (request_.method.empty() &&
          buffer_.size() > limits_.max_request_line_bytes) {
        return Status::ResourceExhausted(
            "http: request line exceeds " +
            std::to_string(limits_.max_request_line_bytes) + " bytes");
      }
      return Status::OK();
    }
    std::string line = buffer_.substr(line_start, nl - line_start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    line_start = nl + 1;
    if (request_.method.empty()) {
      if (line.size() > limits_.max_request_line_bytes) {
        return Status::ResourceExhausted(
            "http: request line exceeds " +
            std::to_string(limits_.max_request_line_bytes) + " bytes");
      }
      COACHLM_RETURN_NOT_OK(ParseRequestLine(line));
      continue;
    }
    if (line.empty()) {
      // Blank line ends the head; the remainder of buffer_ is body prefix.
      buffer_.erase(0, line_start);
      COACHLM_RETURN_NOT_OK(FinishHead());
      head_complete_ = true;
      return Status::OK();
    }
    COACHLM_RETURN_NOT_OK(ParseHeaderLine(line));
  }
}

Status HttpRequestParser::ParseRequestLine(const std::string& line) {
  const size_t first = line.find(' ');
  const size_t second =
      first == std::string::npos ? std::string::npos
                                 : line.find(' ', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    return Status::InvalidArgument("http: malformed request line '" +
                                   line.substr(0, 64) + "'");
  }
  request_.method = line.substr(0, first);
  request_.target = line.substr(first + 1, second - first - 1);
  const std::string version = line.substr(second + 1);
  if (!IsToken(request_.method) || !IsToken(request_.target)) {
    return Status::InvalidArgument("http: malformed request line '" +
                                   line.substr(0, 64) + "'");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported version '" + version +
                                   "'");
  }
  return Status::OK();
}

Status HttpRequestParser::ParseHeaderLine(const std::string& line) {
  if (request_.headers.size() >= limits_.max_headers) {
    return Status::ResourceExhausted(
        "http: more than " + std::to_string(limits_.max_headers) +
        " headers");
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("http: malformed header '" +
                                   line.substr(0, 64) + "'");
  }
  const std::string name = ToLower(Trim(line.substr(0, colon)));
  if (!IsToken(name)) {
    return Status::InvalidArgument("http: malformed header name '" +
                                   name.substr(0, 64) + "'");
  }
  // Last occurrence wins; the endpoints here never rely on repeated headers.
  request_.headers[name] = Trim(line.substr(colon + 1));
  return Status::OK();
}

Status HttpRequestParser::FinishHead() {
  if (request_.headers.count("transfer-encoding") != 0) {
    return Status::NotImplemented(
        "http: Transfer-Encoding is not supported; send Content-Length");
  }
  const std::string& length = request_.Header("content-length");
  if (length.empty()) {
    body_expected_ = 0;
  } else {
    char* end = nullptr;
    const unsigned long long parsed =  // NOLINT(runtime/int)
        std::strtoull(length.c_str(), &end, 10);
    if (end == length.c_str() || *end != '\0' ||
        length.find('-') != std::string::npos) {
      return Status::InvalidArgument("http: malformed Content-Length '" +
                                     length.substr(0, 64) + "'");
    }
    if (parsed > limits_.max_body_bytes) {
      return Status::ResourceExhausted(
          "http: body of " + std::to_string(parsed) + " bytes exceeds " +
          std::to_string(limits_.max_body_bytes) + " byte limit");
    }
    body_expected_ = static_cast<size_t>(parsed);
  }
  if (complete_) return Status::OK();
  if (body_expected_ == 0) complete_ = true;
  return Status::OK();
}

Result<HttpRequest> ParseHttpRequest(const std::string& raw,
                                     const HttpLimits& limits) {
  HttpRequestParser parser(limits);
  COACHLM_RETURN_NOT_OK(parser.Feed(raw.data(), raw.size()));
  if (!parser.complete()) {
    return Status::InvalidArgument("http: truncated request");
  }
  return parser.request();
}

Result<ParsedHttpResponse> ParseHttpResponse(const std::string& raw) {
  ParsedHttpResponse response;
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::InvalidArgument("http: truncated response head");
  }
  size_t line_start = 0;
  bool first = true;
  while (line_start < head_end) {
    size_t nl = raw.find("\r\n", line_start);
    if (nl == std::string::npos || nl > head_end) nl = head_end;
    const std::string line = raw.substr(line_start, nl - line_start);
    line_start = nl + 2;
    if (first) {
      first = false;
      // "HTTP/1.1 <code> <reason>"
      const size_t space = line.find(' ');
      if (space == std::string::npos) {
        return Status::InvalidArgument("http: malformed status line '" +
                                       line.substr(0, 64) + "'");
      }
      char* end = nullptr;
      response.status =
          static_cast<int>(std::strtol(line.c_str() + space + 1, &end, 10));
      if (end == line.c_str() + space + 1 || response.status < 100 ||
          response.status > 599) {
        return Status::InvalidArgument("http: malformed status code in '" +
                                       line.substr(0, 64) + "'");
      }
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    response.headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  response.body = raw.substr(head_end + 4);
  const auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    const size_t declared =
        static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
    if (response.body.size() < declared) {
      return Status::InvalidArgument("http: truncated response body");
    }
    response.body.resize(declared);
  }
  return response;
}

}  // namespace serve
}  // namespace coachlm
