#ifndef COACHLM_SERVE_SERVE_CONFIG_H_
#define COACHLM_SERVE_SERVE_CONFIG_H_

#include <cstdint>
#include <string>

#include "coach/coach_config.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/status.h"
#include "json/parse_limits.h"
#include "serve/http.h"

namespace coachlm {
namespace serve {

/// \brief Static configuration of one `coachlm serve` daemon.
///
/// Everything here is fixed for the server's lifetime; the only mutable
/// piece of server state is the model snapshot inside ModelHost. The CLI
/// maps its flags onto this struct and Validate() is the single authority
/// on what is acceptable — the CLI's exit-2 flag validation and the
/// library tests both go through it.
struct ServeConfig {
  /// TCP port on 127.0.0.1. The CLI requires 1..65535; the library also
  /// accepts 0 (kernel-assigned ephemeral port) so tests and the in-process
  /// bench never race for a fixed port.
  int port = 8080;
  /// Fixed worker pool size; each worker owns one request at a time.
  int workers = 4;
  /// Admission-control bound: accepted connections waiting for a worker.
  /// A full queue sheds new arrivals with 429 + Retry-After instead of
  /// queueing silently.
  int queue_depth = 64;
  /// Per-request budget. Each request gets a CancelToken deadline of this
  /// many milliseconds; a blown deadline is a typed 504, never a hang.
  int64_t request_deadline_ms = 2000;
  /// Seconds advertised in the Retry-After header of a 429 shed response.
  int retry_after_seconds = 1;
  /// Socket read timeout (SO_RCVTIMEO): how long a worker waits for the
  /// peer's next request bytes before answering 408. 0 inherits the
  /// request deadline, so a dripping slowloris peer can never hold a
  /// worker past the per-request budget unless explicitly allowed to.
  int64_t read_timeout_ms = 0;
  /// Socket write timeout (SO_SNDTIMEO): how long a worker waits for a
  /// peer that stopped reading its response before dropping it. 0 inherits
  /// the request deadline.
  int64_t write_timeout_ms = 0;
  /// Bind with SO_REUSEPORT so N supervised worker processes can share one
  /// listening port; the kernel load-balances accepts across them.
  bool reuse_port = false;
  /// Trained coach checkpoint to serve (also the reload source).
  std::string checkpoint = "coach.json";
  /// Inference configuration applied to the loaded checkpoint.
  coach::CoachConfig coach;
  /// Bounds on the HTTP envelope of every request.
  HttpLimits http_limits;
  /// Bounds on the JSONL payload inside a /v1/revise body.
  json::ParseLimits parse_limits;
  /// Retry policy applied to transient per-record revise failures.
  RetryPolicy retry;
  /// Fault plan driven through serve.accept / serve.parse / serve.revise.
  FaultPlan fault_plan;
  /// Accept-loop poll interval: the latency bound on noticing a drain or
  /// reload signal.
  int64_t poll_interval_ms = 20;

  [[nodiscard]] Status Validate() const {
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("serve: --port must be in 1..65535, got " +
                                     std::to_string(port));
    }
    if (workers < 1 || workers > 1024) {
      return Status::InvalidArgument(
          "serve: --serve-workers must be in 1..1024, got " +
          std::to_string(workers));
    }
    if (queue_depth < 1 || queue_depth > 1000000) {
      return Status::InvalidArgument(
          "serve: --queue-depth must be in 1..1000000, got " +
          std::to_string(queue_depth));
    }
    if (request_deadline_ms < 1) {
      return Status::InvalidArgument(
          "serve: --request-deadline-ms must be >= 1, got " +
          std::to_string(request_deadline_ms));
    }
    if (read_timeout_ms < 0) {
      return Status::InvalidArgument(
          "serve: --read-timeout-ms must be >= 1, got " +
          std::to_string(read_timeout_ms));
    }
    if (write_timeout_ms < 0) {
      return Status::InvalidArgument(
          "serve: --write-timeout-ms must be >= 1, got " +
          std::to_string(write_timeout_ms));
    }
    if (checkpoint.empty()) {
      return Status::InvalidArgument("serve: checkpoint path must be set");
    }
    return Status::OK();
  }

  /// Effective socket read timeout: the explicit flag, else the request
  /// deadline.
  int64_t EffectiveReadTimeoutMs() const {
    return read_timeout_ms > 0 ? read_timeout_ms : request_deadline_ms;
  }
  /// Effective socket write timeout: the explicit flag, else the request
  /// deadline.
  int64_t EffectiveWriteTimeoutMs() const {
    return write_timeout_ms > 0 ? write_timeout_ms : request_deadline_ms;
  }
};

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_SERVE_CONFIG_H_
