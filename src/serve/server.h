#ifndef COACHLM_SERVE_SERVER_H_
#define COACHLM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "serve/admission.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"

namespace coachlm {
namespace serve {

/// \brief Lifetime counters of one server instance.
///
/// All atomics: the accept loop and every worker update them concurrently,
/// and tests/the bench read them after AwaitDrain() joins everything.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_ok{0};          ///< 2xx responses.
  std::atomic<uint64_t> requests_shed{0};        ///< 429 at admission.
  std::atomic<uint64_t> requests_client_error{0};  ///< other 4xx + 501.
  std::atomic<uint64_t> requests_server_error{0};  ///< 5xx except 504.
  std::atomic<uint64_t> requests_deadline{0};    ///< 504 / 408.
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_rejected{0};
};

/// \brief The `coachlm serve` daemon: listener, admission queue, fixed
/// worker pool, signal-driven drain and reload.
///
/// Lifecycle: StartServing() binds 127.0.0.1:port, spawns the accept loop and
/// `workers` worker threads, and returns. RequestDrain() (or SIGTERM /
/// SIGINT via InstallServeSignalHandlers) begins graceful shutdown in a
/// fixed order: the listener closes FIRST (no new work can arrive), then
/// the admission queue closes (workers answer everything already
/// admitted), then workers exit. AwaitDrain() joins all of it. SIGHUP (or
/// RequestReload / POST /admin/reload) hot-swaps the model; in-flight
/// requests finish on the snapshot they started with.
///
/// One request per connection, Connection: close — the protocol stays
/// trivially correct under drain: every admitted connection gets exactly
/// one response before its socket closes.
class RevisionServer {
 public:
  /// \p clock times requests and deadlines (tests may inject, though the
  /// wire path is usually driven with the system clock).
  RevisionServer(const ServeConfig& config, ModelHost* models,
                 Clock* clock = nullptr);
  ~RevisionServer();

  RevisionServer(const RevisionServer&) = delete;
  RevisionServer& operator=(const RevisionServer&) = delete;

  /// Binds, listens, and spawns the accept loop + worker pool. Fails with
  /// a typed error if the port is taken or the model is not loaded.
  [[nodiscard]] Status StartServing();

  /// The bound port (resolves port 0 to the kernel's pick).
  int port() const { return port_; }

  /// Begins graceful drain (idempotent, callable from any thread or from
  /// the signal-flag poll): listener closes first, admitted work drains.
  void RequestDrain();

  /// Hot model reload; returns the outcome (old model stays on failure).
  ModelHost::ReloadResult RequestReload();

  /// True once RequestDrain() has been observed.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Blocks until the accept loop and all workers have exited (requires a
  /// prior RequestDrain, or an armed signal arriving). Flushes final
  /// gauges. Idempotent.
  void AwaitDrain();

  const ServerStats& stats() const { return stats_; }
  const AdmissionQueue<int>& queue() const { return queue_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Reads one request off \p fd, handles it, writes the response. Every
  /// admitted fd gets a response — even parse failures and timeouts.
  void ServeConnection(int fd, uint64_t request_id);
  void CloseListener();

  const ServeConfig config_;
  ModelHost* const models_;
  Clock* const clock_;
  ServerStats stats_;
  AdmissionQueue<int> queue_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};
  std::atomic<uint64_t> next_request_id_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// \name Signal integration
///
/// Handlers only flip `volatile sig_atomic_t` flags; the accept loop polls
/// them every poll_interval_ms and translates SIGTERM/SIGINT into
/// RequestDrain() and SIGHUP into RequestReload(). SIGPIPE is ignored
/// (sends also pass MSG_NOSIGNAL) so a client hanging up mid-response is
/// an error return, not process death.
/// @{
void InstallServeSignalHandlers();
/// True when SIGTERM/SIGINT arrived since the handlers were installed.
bool ServeDrainSignalled();
/// Consumes a pending SIGHUP (returns true at most once per signal).
bool ConsumeReloadSignal();
/// Test hook: clears both pending-signal flags.
void ResetServeSignalsForTest();
/// @}

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_SERVER_H_
