#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/execution.h"
#include "common/metrics.h"
#include "serve/chaos.h"

namespace coachlm {
namespace serve {
namespace {

/// Stream-family tag deriving one chaos connection id per attempt, so a
/// retry never replays the exact fault schedule that killed the previous
/// attempt.
constexpr uint64_t kAttemptTag = 0xA77E3970ULL;

/// One wire exchange with client-side chaos applied. \p sent_any reports
/// whether any request bytes went out before the failure — the fact the
/// idempotency guard needs.
Result<ParsedHttpResponse> FetchOnce(int port, const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const FetchOptions& options, int attempt,
                                     bool* sent_any) {
  *sent_any = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("client: socket(): " +
                           std::string(std::strerror(errno)));
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(options.timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((options.timeout_ms % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const uint64_t connection_id =
      MixSeed(options.request_id, kAttemptTag + static_cast<uint64_t>(attempt));
  ChaosSocket socket(fd, options.chaos, connection_id, options.clock);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::Unavailable("client: connect(127.0.0.1:" +
                            std::to_string(port) +
                            "): " + std::strerror(errno));
    socket.Close();
    return status;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t wrote =
        socket.Send(request.data() + sent, request.size() - sent);
    if (wrote < 0 && errno == EINTR) continue;  // Interrupted: retry.
    if (wrote <= 0) {
      const Status status =
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? Status::DeadlineExceeded("client: send timed out")
              : Status::IoError("client: send(): " +
                                std::string(std::strerror(errno)));
      socket.Close();
      return status;
    }
    sent += static_cast<size_t>(wrote);
    *sent_any = true;
  }

  if (socket.rst_armed()) {
    // The chaos plan elected this attempt for a mid-exchange reset: the
    // full request went out, then the connection dies hard before the
    // response is read. The server must absorb the RST; this client sees
    // a transient transport error and (if idempotent) retries.
    socket.Close();
    return Status::IoError("client: injected RST after request (chaos.rst)");
  }

  std::string raw;
  char buffer[16 * 1024];
  while (true) {
    const ssize_t got = socket.Recv(buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;  // Interrupted: retry.
      const Status status =
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? Status::DeadlineExceeded("client: response timed out")
              : Status::IoError("client: recv(): " +
                                std::string(std::strerror(errno)));
      socket.Close();
      return status;
    }
    if (got == 0) break;  // Server closed: the response is complete.
    raw.append(buffer, static_cast<size_t>(got));
  }
  socket.Close();
  return ParseHttpResponse(raw);
}

/// True for HTTP statuses the server answers when it wants the client to
/// come back later: admission shed (429) and drain/unavailable (503).
bool RetryableHttpStatus(int status) {
  return status == 429 || status == 503;
}

}  // namespace

Result<ParsedHttpResponse> HttpFetch(int port, const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     int64_t timeout_ms) {
  FetchOptions options;
  options.timeout_ms = timeout_ms;
  options.retry.max_attempts = 1;
  return FetchWithRetry(port, method, target, body, options).response;
}

FetchOutcome FetchWithRetry(int port, const std::string& method,
                            const std::string& target,
                            const std::string& body,
                            const FetchOptions& options) {
  Clock* clock = options.clock != nullptr ? options.clock : Clock::System();
  const int max_attempts = std::max(1, options.retry.max_attempts);
  const int64_t start_micros = clock->NowMicros();
  FetchOutcome outcome;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.attempts = attempt;
    bool sent_any = false;
    Result<ParsedHttpResponse> response =
        FetchOnce(port, method, target, body, options, attempt, &sent_any);
    bool retryable = false;
    if (response.ok()) {
      retryable = RetryableHttpStatus(response->status);
      outcome.response = std::move(response);
      if (!retryable) {
        if (attempt > 1 && outcome.response->status < 400) {
          CountMetric("serve.client.recovered");
        }
        return outcome;
      }
    } else {
      retryable = response.status().IsTransient() &&
                  (options.idempotent || !sent_any);
      outcome.response = std::move(response);
      if (!retryable) return outcome;
    }
    if (attempt == max_attempts) return outcome;
    const int64_t backoff =
        options.retry.BackoffMicros(attempt + 1, options.request_id);
    if (options.retry.deadline_us > 0 &&
        clock->NowMicros() - start_micros + backoff >=
            options.retry.deadline_us) {
      return outcome;  // Out of budget: the last answer stands.
    }
    outcome.backoff_micros += backoff;
    CountMetric("serve.client.retries");
    clock->SleepMicros(backoff);
  }
  return outcome;
}

}  // namespace serve
}  // namespace coachlm
