#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coachlm {
namespace serve {

Result<ParsedHttpResponse> HttpFetch(int port, const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     int64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("client: socket(): " +
                           std::string(std::strerror(errno)));
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::Unavailable("client: connect(127.0.0.1:" +
                            std::to_string(port) +
                            "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t wrote = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      const Status status = Status::IoError(
          "client: send(): " + std::string(std::strerror(errno)));
      ::close(fd);
      return status;
    }
    sent += static_cast<size_t>(wrote);
  }

  std::string raw;
  char buffer[16 * 1024];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got < 0) {
      const Status status =
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? Status::DeadlineExceeded("client: response timed out")
              : Status::IoError("client: recv(): " +
                                std::string(std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (got == 0) break;  // Server closed: the response is complete.
    raw.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  return ParseHttpResponse(raw);
}

}  // namespace serve
}  // namespace coachlm
