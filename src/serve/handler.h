#ifndef COACHLM_SERVE_HANDLER_H_
#define COACHLM_SERVE_HANDLER_H_

#include <cstdint>

#include "common/clock.h"
#include "serve/http.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"

namespace coachlm {
namespace serve {

/// \brief Everything a request handler needs, transport-free.
///
/// The handler is deliberately decoupled from sockets: tests and the
/// in-process bench call HandleRequest directly with a fabricated
/// HttpRequest and an injected clock, which is how deadline expiry,
/// hostile bodies, and fault plans get deterministic coverage without a
/// network in the loop.
struct ServeContext {
  const ServeConfig* config = nullptr;
  ModelHost* models = nullptr;
  /// Clock for deadlines + latency metrics (tests inject FakeClock).
  Clock* clock = nullptr;
  /// True once the server began draining; new requests get 503.
  bool draining = false;
};

/// \brief Routes one parsed request to its endpoint and returns the
/// response. Never throws; every failure mode — unknown route, wrong
/// method, hostile JSONL, blown deadline, torn reload artifact — maps to
/// a typed HTTP status with a JSON error body.
///
/// Endpoints:
///   GET  /healthz       liveness + live model version
///   GET  /v1/model      model metadata (version, checkpoint, backbone)
///   POST /v1/revise     JSONL of instruction pairs in, revised JSONL out
///   POST /admin/reload  hot model reload (typed failure keeps old model)
///   GET  /metrics       MetricsRegistry snapshot as JSON
///
/// \p request_id keys the deterministic fault/RNG streams for this
/// request (the accept sequence number on the wire path).
HttpResponse HandleRequest(const ServeContext& context, uint64_t request_id,
                           const HttpRequest& request);

/// Counts the response into the serve.requests_* metric family and its
/// endpoint latency histogram. Split from HandleRequest so the socket
/// server can time the full wire round-trip, while direct callers (tests)
/// time just the handler.
void RecordRequestMetrics(const HttpResponse& response,
                          const std::string& target, int64_t latency_micros);

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_HANDLER_H_
