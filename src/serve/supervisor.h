#ifndef COACHLM_SERVE_SUPERVISOR_H_
#define COACHLM_SERVE_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/status.h"

namespace coachlm {
namespace serve {

/// Exit code of a supervisor whose restart circuit breaker opened: the
/// fleet is crash-looping, so the parent stops burning restarts and exits
/// distinguishably (0 = drained, 1 = error, 2 = usage, 3 = circuit).
inline constexpr int kSupervisorCircuitExitCode = 3;

/// \brief Static configuration of one worker supervisor.
struct SupervisorConfig {
  /// Worker processes to keep alive (`coachlm serve --serve-processes N`).
  int processes = 2;
  /// Backoff before the first respawn of a worker slot; doubles (times
  /// multiplier, with deterministic jitter) per consecutive failure of
  /// that slot, capped at restart_max_backoff_ms. Schedule and jitter
  /// reuse RetryPolicy::BackoffMicros on the injectable Clock, so the
  /// respawn times of a crashing slot are reproducible.
  int64_t restart_initial_backoff_ms = 100;
  double restart_backoff_multiplier = 2.0;
  int64_t restart_max_backoff_ms = 5000;
  /// Circuit breaker: more than this many worker deaths inside
  /// restart_window_ms trips the breaker — the supervisor SIGTERMs the
  /// fleet, reaps it, and Run() returns kSupervisorCircuitExitCode.
  int restart_limit = 8;
  int64_t restart_window_ms = 60000;
  /// Supervision loop tick: reap/respawn/signal latency bound.
  int64_t poll_interval_ms = 20;

  [[nodiscard]] Status Validate() const;
};

/// The deterministic backoff before the next respawn of \p worker_index
/// after its \p failures-th consecutive death (failures >= 1). Exposed so
/// tests can assert the exact respawn schedule the supervisor will follow.
int64_t RestartBackoffMicros(const SupervisorConfig& config, int failures,
                             int worker_index);

/// \brief Lifetime counters of one supervisor (parent-process side).
struct SupervisorStats {
  uint64_t spawned = 0;    ///< forks, initial fleet + respawns
  uint64_t crashed = 0;    ///< deaths outside drain (signal or exit != 0)
  uint64_t respawned = 0;  ///< crashed workers brought back
  bool circuit_opened = false;
};

/// \brief Crash-only process supervisor for `coachlm serve`.
///
/// Forks `processes` workers, each running the caller-provided body (which
/// binds the shared port via SO_REUSEPORT and serves until drained). The
/// parent's only jobs are crash-only supervision: reap dead workers
/// (SIGSEGV, abort, nonzero exit), respawn them on a deterministic
/// exponential backoff, trip a circuit breaker when the fleet is
/// crash-looping, and forward SIGTERM (drain) / SIGHUP (reload) to every
/// child. It deliberately holds no request state — a worker crash loses
/// only the connections that worker held, and the resilient client retries
/// those against the survivors.
class WorkerSupervisor {
 public:
  /// A worker body: runs in the forked child, returns its exit code.
  /// Index identifies the slot (stable across respawns of that slot).
  using WorkerBody = std::function<int(int worker_index)>;

  /// \p clock drives backoff scheduling and the poll tick (tests inject).
  WorkerSupervisor(const SupervisorConfig& config, WorkerBody body,
                   Clock* clock = nullptr);

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Forks the initial fleet. Fails without forking anything on a bad
  /// config; a failed fork mid-fleet tears the started workers down.
  [[nodiscard]] Status Start();

  /// Supervises until the fleet drains (returns 0) or the circuit breaker
  /// opens (returns kSupervisorCircuitExitCode). Reacts to the process's
  /// SIGTERM/SIGINT/SIGHUP flags (InstallServeSignalHandlers) as well as
  /// RequestDrain() from another thread.
  int Run();

  /// Begins drain: SIGTERM to every live worker, no further respawns.
  /// Idempotent, callable from any thread.
  void RequestDrain();

  /// Forwards SIGHUP (hot reload) to every live worker.
  void RequestReload();

  const SupervisorStats& stats() const { return stats_; }

  /// Live worker pids (respawns change entries; -1 = slot empty). Exposed
  /// for tests and the CI drill, which SIGSEGVs specific workers.
  std::vector<pid_t> WorkerPids() const;

 private:
  struct WorkerSlot {
    pid_t pid = -1;
    /// Deaths of this slot so far: rung on the backoff ladder.
    int failures = 0;
    int64_t respawn_at_micros = 0;
  };

  /// Forks slot \p index; returns the child pid (or -1 on fork failure).
  pid_t Spawn(int index);
  void SignalAll(int signum);
  /// Blocks until every child is reaped (used by drain and circuit exit).
  void ReapAll();

  const SupervisorConfig config_;
  const WorkerBody body_;
  Clock* const clock_;
  SupervisorStats stats_;
  /// Guards slots_ against WorkerPids() readers on other threads; every
  /// mutation happens on the Run() thread.
  mutable std::mutex mu_;
  std::vector<WorkerSlot> slots_ COACHLM_GUARDED_BY(mu_);
  std::vector<int64_t> crash_times_micros_;  ///< circuit-breaker window
  std::atomic<bool> draining_{false};
  bool started_ = false;
};

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_SUPERVISOR_H_
