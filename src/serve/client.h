#ifndef COACHLM_SERVE_CLIENT_H_
#define COACHLM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "serve/http.h"

namespace coachlm {
namespace serve {

/// \brief One blocking HTTP exchange against a local server.
///
/// The load bench and the serve tests are the callers: connect to
/// 127.0.0.1:\p port, send \p method \p target with \p body, read until
/// the server closes (Connection: close framing), parse. \p timeout_ms
/// bounds connect and each socket wait so a wedged server fails the
/// client with a typed error instead of hanging the bench.
[[nodiscard]] Result<ParsedHttpResponse> HttpFetch(int port,
                                                   const std::string& method,
                                                   const std::string& target,
                                                   const std::string& body,
                                                   int64_t timeout_ms = 5000);

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_CLIENT_H_
