#ifndef COACHLM_SERVE_CLIENT_H_
#define COACHLM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/fault.h"
#include "common/result.h"
#include "common/retry.h"
#include "serve/http.h"

namespace coachlm {
namespace serve {

/// \brief Knobs of one resilient fetch.
struct FetchOptions {
  /// Per-attempt socket budget: bounds connect and each recv/send wait.
  int64_t timeout_ms = 5000;
  /// Retry schedule across attempts. max_attempts includes the first;
  /// deadline_us (when set) bounds the whole call including backoff.
  RetryPolicy retry;
  /// Whether a failed-after-send attempt may be replayed. The CoachLM
  /// revision endpoint is deterministic (same body, same answer), so
  /// replay is safe by default; callers doing non-idempotent work set
  /// false and a mid-flight transport failure becomes final.
  bool idempotent = true;
  /// Client-side socket chaos plan (chaos.* sites): the fetch disturbs its
  /// OWN socket — slow drips, torn writes, EINTR storms, stalls, and
  /// mid-exchange RST — so the server opposite and this client's retry
  /// loop are both exercised. Inactive by default.
  FaultPlan chaos;
  /// Stable id of this logical request: keys the deterministic backoff
  /// jitter and the per-attempt chaos streams.
  uint64_t request_id = 0;
  /// Sleeps backoff and serves injected stalls (nullptr = system clock).
  Clock* clock = nullptr;
};

/// \brief What a resilient fetch produced.
struct FetchOutcome {
  /// The final parsed response, or the last attempt's typed error.
  Result<ParsedHttpResponse> response =
      Result<ParsedHttpResponse>(Status::Unavailable("client: no attempt ran"));
  /// Attempts consumed (>= 1 once the call returns).
  int attempts = 0;
  /// Total deterministic backoff scheduled between attempts.
  int64_t backoff_micros = 0;

  /// True when the exchange ended with a parsed 2xx/3xx response.
  bool answered() const { return response.ok() && response->status < 400; }
};

/// \brief One blocking HTTP exchange against a local server.
///
/// Single attempt, no chaos: connect to 127.0.0.1:\p port, send \p method
/// \p target with \p body, read until the server closes (Connection:
/// close framing), parse. \p timeout_ms bounds connect and each socket
/// wait so a wedged server fails the client with a typed error instead of
/// hanging the bench.
[[nodiscard]] Result<ParsedHttpResponse> HttpFetch(int port,
                                                   const std::string& method,
                                                   const std::string& target,
                                                   const std::string& body,
                                                   int64_t timeout_ms = 5000);

/// \brief Resilient fetch: HttpFetch plus retry-with-backoff on transient
/// failures and shed responses.
///
/// Retries (up to retry.max_attempts, exponential deterministic backoff
/// keyed on request_id) when an attempt fails with a transient status —
/// connect refused while a crashed worker respawns, a read cut by a mid-
/// exchange RST, a timeout — or is answered 429/503 (the server asked for
/// exactly this). Non-transient errors and every other HTTP status return
/// immediately. When options.idempotent is false, an attempt that failed
/// after request bytes were sent is final: replaying it could double-apply
/// work. Each attempt derives its own chaos stream, so an injected fault
/// on attempt 1 does not deterministically recur on attempt 2 — which is
/// what lets availability under the default chaos plan approach 100%.
[[nodiscard]] FetchOutcome FetchWithRetry(int port, const std::string& method,
                                          const std::string& target,
                                          const std::string& body,
                                          const FetchOptions& options);

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_CLIENT_H_
