#ifndef COACHLM_SERVE_HTTP_H_
#define COACHLM_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace coachlm {
namespace serve {

/// \brief Bounds the HTTP parser enforces on untrusted request bytes.
///
/// Mirrors json::ParseLimits in spirit: every bound turns a hostile
/// envelope — an unbounded request line, a header bomb, a multi-GB body —
/// into a typed Status the server maps to a 4xx, never into unbounded
/// buffering or a crash. The body cap is checked against Content-Length
/// *before* any body byte is buffered.
struct HttpLimits {
  size_t max_request_line_bytes = 8u << 10;
  size_t max_header_bytes = 64u << 10;
  size_t max_headers = 64;
  /// Whole-body byte budget (JSONL revision payloads); the per-record cap
  /// stays with json::ParseLimits::max_record_bytes at parse time.
  size_t max_body_bytes = 32u << 20;
};

/// \brief One parsed HTTP/1.1 request.
///
/// Header names are lowercased at parse time; values keep their bytes
/// (leading/trailing whitespace trimmed). std::map keeps iteration
/// deterministic wherever headers are serialized back out.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent).
  std::string target;  ///< Request target, e.g. "/v1/revise".
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lowercase name; empty string when absent.
  const std::string& Header(const std::string& lowercase_name) const;
};

/// \brief One HTTP/1.1 response; Serialize() emits the wire bytes with
/// Content-Length and Connection: close (the server speaks one request per
/// connection).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra headers beyond Content-Type/Content-Length/Connection, in map
  /// (name) order so the wire bytes are deterministic.
  std::map<std::string, std::string> headers;
  std::string body;

  std::string Serialize() const;
};

/// Canonical reason phrase for the status codes the server emits.
const char* HttpReasonPhrase(int status);

/// Maps a typed Status onto the HTTP status code of its failure class:
/// invalid/parse/out-of-range -> 400, resource-exhausted -> 413,
/// not-found -> 404, deadline -> 504, unavailable -> 503,
/// not-implemented -> 501, everything else -> 500.
int HttpStatusFromStatus(const Status& status);

/// A JSON error body `{"error": {"code", "message"}}` for \p status.
std::string HttpErrorBody(const Status& status);

/// \brief Incremental HTTP/1.1 request parser (push model).
///
/// Feed() consumes raw socket bytes; once the head (request line +
/// headers) is complete the parser knows the declared body length and
/// keeps consuming until the body is complete. Violations of HttpLimits
/// and malformed syntax surface as sticky typed errors:
///   kInvalidArgument   malformed request line / header / Content-Length
///   kResourceExhausted request line, header block, or body over budget
///   kNotImplemented    Transfer-Encoding (chunked bodies unsupported)
/// The parser never buffers past the first violation, so a hostile peer
/// cannot make the server hold more than the configured bounds.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {});

  /// Consumes \p len bytes. Returns the first violation (sticky) or OK.
  [[nodiscard]] Status Feed(const char* data, size_t len);

  /// True once the request (head + declared body) is fully parsed.
  bool complete() const { return complete_; }

  /// The parsed request; valid once complete().
  const HttpRequest& request() const { return request_; }

  /// Bytes of body still expected (0 when complete or head not done).
  size_t remaining_body_bytes() const;

 private:
  [[nodiscard]] Status ParseHead();
  [[nodiscard]] Status ParseRequestLine(const std::string& line);
  [[nodiscard]] Status ParseHeaderLine(const std::string& line);
  [[nodiscard]] Status FinishHead();

  HttpLimits limits_;
  std::string buffer_;      ///< Unconsumed head bytes.
  bool head_complete_ = false;
  bool complete_ = false;
  size_t body_expected_ = 0;
  Status error_;
  HttpRequest request_;
};

/// Parses a complete serialized request in one call (tests and the
/// in-process handler harness).
[[nodiscard]] Result<HttpRequest> ParseHttpRequest(const std::string& raw,
                                                   const HttpLimits& limits = {});

/// \brief Minimal response parser for the load-generator client: status
/// code, headers, and a Content-Length body.
struct ParsedHttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< Lowercased names.
  std::string body;
};

[[nodiscard]] Result<ParsedHttpResponse> ParseHttpResponse(
    const std::string& raw);

}  // namespace serve
}  // namespace coachlm

#endif  // COACHLM_SERVE_HTTP_H_
