#include "quality/quality_report.h"

#include "common/metrics.h"
#include "common/table_writer.h"
#include "common/trace.h"
#include "quality/criteria.h"

namespace coachlm {
namespace quality {
namespace {

const std::vector<Dimension>& AllDimensions() {
  static const std::vector<Dimension> kAll = {
      Dimension::kContextualization,  Dimension::kFeasibility,
      Dimension::kInstructionReadability,
      Dimension::kHumanization,       Dimension::kRichness,
      Dimension::kResponseReadability, Dimension::kComprehensiveness,
      Dimension::kRelevance,          Dimension::kCorrectness,
      Dimension::kSafety,
  };
  return kAll;
}

}  // namespace

QualityReport AnalyzeDataset(const InstructionDataset& dataset,
                             const ExecutionContext& exec) {
  const StageSpan span("rate");
  CountMetric("rate.items_analyzed", dataset.size());
  QualityReport report;
  report.dataset_size = dataset.size();
  if (dataset.empty()) return report;
  // Criteria scoring dominates the cost; score in parallel and fold the
  // per-dimension sums serially in dataset order (bit-identical at any
  // thread count).
  const std::vector<PairQuality> qualities = exec.ParallelMap(
      dataset.size(), [&](size_t i) { return ScorePair(dataset[i]); });
  std::map<Dimension, double> satisfaction_sum;
  std::map<Dimension, size_t> flaw_count;
  double instruction_sum = 0.0;
  double response_sum = 0.0;
  for (const PairQuality& quality : qualities) {
    instruction_sum += quality.instruction.score;
    response_sum += quality.response.score;
    auto absorb = [&](const QualityScore& score) {
      for (const DimensionFinding& finding : score.findings) {
        satisfaction_sum[finding.dimension] += finding.satisfaction;
        if (finding.satisfaction < 0.999) ++flaw_count[finding.dimension];
      }
    };
    absorb(quality.instruction);
    absorb(quality.response);
  }
  const double n = static_cast<double>(dataset.size());
  report.mean_instruction_score = instruction_sum / n;
  report.mean_response_score = response_sum / n;
  for (Dimension dimension : AllDimensions()) {
    QualityReport::DimensionStats stats;
    stats.mean_satisfaction = satisfaction_sum[dimension] / n;
    stats.flaw_rate = static_cast<double>(flaw_count[dimension]) / n;
    report.dimensions[dimension] = stats;
  }
  return report;
}

std::string QualityReport::ToAscii() const {
  TableWriter table({"Dimension", "Level", "Mean satisfaction",
                     "Flaw rate"});
  for (const auto& [dimension, stats] : dimensions) {
    const char* level =
        LevelOf(dimension) == DimensionLevel::kRedLine   ? "red line"
        : LevelOf(dimension) == DimensionLevel::kBasic   ? "basic"
                                                         : "advanced";
    table.AddRow({DimensionName(dimension), level,
                  TableWriter::Num(stats.mean_satisfaction, 3),
                  TableWriter::Pct(stats.flaw_rate)});
  }
  std::string out = table.ToAscii();
  out += "mean scores: instruction " +
         TableWriter::Num(mean_instruction_score) + ", response " +
         TableWriter::Num(mean_response_score) + " (n=" +
         std::to_string(dataset_size) + ")\n";
  return out;
}

std::string QualityReport::Compare(const QualityReport& before,
                                   const QualityReport& after) {
  TableWriter table({"Dimension", "Level", "Flaw rate before",
                     "Flaw rate after", "Delta"});
  for (const auto& [dimension, before_stats] : before.dimensions) {
    auto it = after.dimensions.find(dimension);
    if (it == after.dimensions.end()) continue;
    const char* level =
        LevelOf(dimension) == DimensionLevel::kRedLine   ? "red line"
        : LevelOf(dimension) == DimensionLevel::kBasic   ? "basic"
                                                         : "advanced";
    const double delta = it->second.flaw_rate - before_stats.flaw_rate;
    table.AddRow({DimensionName(dimension), level,
                  TableWriter::Pct(before_stats.flaw_rate),
                  TableWriter::Pct(it->second.flaw_rate),
                  (delta <= 0 ? "" : "+") + TableWriter::Pct(delta)});
  }
  std::string out = table.ToAscii();
  out += "mean response score: " +
         TableWriter::Num(before.mean_response_score) + " -> " +
         TableWriter::Num(after.mean_response_score) + "\n";
  return out;
}

}  // namespace quality
}  // namespace coachlm
