#ifndef COACHLM_QUALITY_DIMENSION_H_
#define COACHLM_QUALITY_DIMENSION_H_

#include <cstdint>
#include <string>

namespace coachlm {
namespace quality {

/// \brief The nine evaluation dimensions of Table II.
///
/// INSTRUCTION dimensions: Contextualization (advanced), Feasibility and
/// Readability (basic). RESPONSE dimensions: Humanization and Richness
/// (advanced), Readability / Comprehensiveness / Relevance / Correctness
/// (basic), Safety (red line).
enum class Dimension : uint8_t {
  // Instruction side
  kContextualization = 0,
  kFeasibility,
  kInstructionReadability,
  // Response side
  kHumanization,
  kRichness,
  kResponseReadability,
  kComprehensiveness,
  kRelevance,
  kCorrectness,
  kSafety,
};

/// \brief Importance levels of Table II. Violations cap the final score:
/// red line <= 40, basic flaw <= 80, advanced accounts for the top 20.
enum class DimensionLevel : uint8_t {
  kRedLine = 0,
  kBasic,
  kAdvanced,
};

/// Stable display name ("contextualization").
const std::string& DimensionName(Dimension dimension);

/// The importance level of a dimension.
DimensionLevel LevelOf(Dimension dimension);

/// True for the three INSTRUCTION-side dimensions.
bool IsInstructionDimension(Dimension dimension);

}  // namespace quality
}  // namespace coachlm

#endif  // COACHLM_QUALITY_DIMENSION_H_
