#include "quality/accuracy_rater.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"
#include "quality/criteria.h"

namespace coachlm {
namespace quality {

double AccuracyRater::Rate(const InstructionPair& pair) const {
  const QualityScore score = ResponseScorer().Score(pair);
  // The 0-100 rubric maps linearly onto the 0-5 LLM-judge scale: a
  // flaw-free basic response (80) earns 4.0; advanced quality fills the
  // 4.0-5.0 band, exactly as "accurate and detailed" responses do for
  // ChatGPT in the AlpaGasus protocol.
  return std::clamp(score.score / 20.0, 0.0, 5.0);
}

AccuracyRater::DatasetRating AccuracyRater::RateDataset(
    const InstructionDataset& dataset, const ExecutionContext& exec) const {
  const StageSpan span("rate");
  DatasetRating rating;
  rating.ratings =
      exec.ParallelMap(dataset.size(), [&](size_t i) { return Rate(dataset[i]); });
  // Serial fold in dataset order keeps the mean bit-identical to the
  // single-threaded pass.
  size_t above = 0;
  double sum = 0.0;
  MetricHistogram* rating_hist =
      MetricsRegistry::Default().FindHistogram("rate.rating_x100");
  for (const double r : rating.ratings) {
    sum += r;
    if (r > 4.5) ++above;
    if (rating_hist != nullptr) {
      rating_hist->Observe(static_cast<int64_t>(std::llround(r * 100.0)));
    }
  }
  CountMetric("rate.items_in", rating.ratings.size());
  if (!dataset.empty()) {
    rating.mean = sum / static_cast<double>(dataset.size());
    rating.fraction_above_45 =
        static_cast<double>(above) / static_cast<double>(dataset.size());
  }
  return rating;
}

Result<AccuracyRater::DatasetRating> AccuracyRater::RateRecords(
    RecordReader* reader, const ExecutionContext& exec) const {
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset,
                           ReadAllRecords(reader));
  return RateDataset(dataset, exec);
}

}  // namespace quality
}  // namespace coachlm
