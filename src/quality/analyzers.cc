#include "quality/analyzers.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>

#include "synth/arith.h"
#include "synth/code_bank.h"
#include "synth/topic_bank.h"
#include "text/lexicons.h"
#include "text/similarity.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace quality {
namespace analyzers {
namespace {

/// Counts known misspellings in \p text. Substring matching catches
/// corruptions inside hyphenated compounds ("one-sentance") that word
/// tokenization would hide; misspelled forms are distinctive enough not to
/// occur inside correctly spelled words.
size_t CountMisspellings(const std::string& text) {
  const std::string lower = strings::Lower(text);
  auto is_alpha = [&lower](size_t i) {
    return i < lower.size() &&
           std::isalpha(static_cast<unsigned char>(lower[i])) != 0;
  };
  size_t count = 0;
  // COACHLM_LINT_ALLOW(determinism-unordered-serialization): order-insensitive count; the '+=' only advances this iteration's scan cursor.
  for (const auto& [bad, good] : lexicons::SpellingRepairs()) {
    (void)good;
    size_t pos = 0;
    while ((pos = lower.find(bad, pos)) != std::string::npos) {
      // Word-boundary guard: "wich" must not fire inside "sandwich".
      const bool left_ok = pos == 0 || !is_alpha(pos - 1);
      const bool right_ok = !is_alpha(pos + bad.size());
      if (left_ok && right_ok) ++count;
      pos += bad.size();
    }
  }
  return count;
}

/// True when a sentence starts with a lower-case letter.
size_t CountDecapitalizedSentences(const std::string& text) {
  size_t count = 0;
  for (const std::string& sentence : tokenizer::SplitSentences(text)) {
    for (char c : sentence) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        if (std::islower(static_cast<unsigned char>(c))) ++count;
        break;
      }
      if (!std::isspace(static_cast<unsigned char>(c)) && c != '"' &&
          c != '\'' && c != '(' && c != '-' && c != '[' &&
          !std::isdigit(static_cast<unsigned char>(c))) {
        break;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) break;  // list items
    }
  }
  return count;
}

/// Counts immediately repeated words ("the the").
size_t CountDoubledWords(const std::string& text) {
  const auto words = tokenizer::WhitespaceTokenize(text);
  size_t count = 0;
  for (size_t i = 1; i < words.size(); ++i) {
    if (words[i].size() > 1 && words[i] == words[i - 1]) ++count;
  }
  return count;
}

/// Expected response form of a category: short answers (a slogan, a
/// sentiment label) are not judged by long-form standards.
enum class Form { kShort, kMid, kLong };

Form FormOf(Category category) {
  switch (category) {
    case Category::kSloganWriting:
    case Category::kNaming:
    case Category::kJokeWriting:
    case Category::kSentimentAnalysis:
    case Category::kTextClassification:
    case Category::kKeywordExtraction:
    case Category::kEntityRecognition:
    case Category::kTranslation:
    case Category::kSentenceCompletion:
    case Category::kParaphrasing:
    case Category::kTextSimplification:
    case Category::kTableToText:
    case Category::kSpellingCorrection:
    case Category::kGrammarCorrection:
    case Category::kMathProblem:
    case Category::kPoemWriting:
      return Form::kShort;
    case Category::kEssayWriting:
    case Category::kSpeechWriting:
    case Category::kStoryWriting:
    case Category::kHowToGuide:
    case Category::kRecommendation:
    case Category::kComparison:
    case Category::kCopywriting:
    case Category::kEmailDrafting:
    case Category::kRoleplay:
    case Category::kBrainstorming:
      return Form::kLong;
    default:
      return Form::kMid;
  }
}

/// Word-count target for full marks on the length component of Richness.
double LengthTarget(Category category) {
  switch (FormOf(category)) {
    case Form::kShort:
      return 35.0;
    case Form::kMid:
      return 85.0;
    case Form::kLong:
      return 120.0;
  }
  return 85.0;
}

/// Removes fenced code blocks so prose-level checks (spacing, casing) do
/// not penalize code indentation.
std::string StripCodeFences(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_fence = false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (i + 2 < text.size() && text[i] == '`' && text[i + 1] == '`' &&
        text[i + 2] == '`') {
      in_fence = !in_fence;
      i += 2;
      continue;
    }
    if (!in_fence) out += text[i];
  }
  return out;
}

/// Patterns that make an instruction logically impossible for a text model.
const std::vector<std::string>& InfeasiblePatterns() {
  static const std::vector<std::string> kPatterns = {
      "exactly zero words", "shorter than one word",
      "without any words containing vowels",
      "not use any words containing vowels",
      "before reading this instruction",
  };
  return kPatterns;
}

/// Requests a pure text model cannot satisfy (multi-modal payloads).
const std::vector<std::string>& MultiModalPatterns() {
  static const std::vector<std::string> kPatterns = {
      "in the photo", "this video", "audio recording", "(binary attachment)",
  };
  return kPatterns;
}

/// Dead-reference placeholders that invalidate the task input.
const std::vector<std::string>& DeadInputPatterns() {
  static const std::vector<std::string> kPatterns = {
      "[Link to an article]", "<noinput>", "(see the attachment)",
      "[DOCUMENT REMOVED]",
  };
  return kPatterns;
}

}  // namespace

double ContentOverlap(const std::string& a, const std::string& b) {
  return similarity::ContentOverlap(a, b);
}

bool IsShortFormCategory(Category category) {
  return FormOf(category) == Form::kShort;
}

double InstructionReadability(const InstructionPair& pair) {
  const std::string& text = pair.instruction;
  if (strings::Trim(text).empty()) return 0.0;
  double score = 1.0;
  score -= 0.30 * static_cast<double>(CountMisspellings(text));
  score -= 0.25 * static_cast<double>(CountDecapitalizedSentences(text));
  score -= 0.20 * static_cast<double>(CountDoubledWords(text));
  return std::clamp(score, 0.0, 1.0);
}

double Feasibility(const InstructionPair& pair) {
  const std::string full = pair.FullInstruction();
  double score = 1.0;
  const std::string lower = strings::Lower(full);
  for (const std::string& filler : lexicons::AmbiguityFillers()) {
    if (strings::Contains(lower, filler)) score -= 0.5;
  }
  // Vague hedge density.
  size_t hedges = 0;
  for (const std::string& token : tokenizer::WordTokenize(lower)) {
    if (lexicons::HedgeWords().count(token) > 0) ++hedges;
  }
  if (hedges >= 2) score -= 0.3;
  for (const std::string& pattern : InfeasiblePatterns()) {
    if (strings::Contains(lower, strings::Lower(pattern))) score -= 0.7;
  }
  for (const std::string& pattern : MultiModalPatterns()) {
    if (strings::Contains(full, pattern)) score -= 0.7;
  }
  for (const std::string& pattern : DeadInputPatterns()) {
    if (strings::Contains(full, pattern)) score -= 0.7;
  }
  return std::clamp(score, 0.0, 1.0);
}

double Contextualization(const InstructionPair& pair) {
  const std::string full = pair.FullInstruction();
  const std::string lower = strings::Lower(full);
  double score = 0.0;
  static const std::vector<std::string> kContextCues = {
      "assume",      "imagine",     "you are",     "for example",
      "include at least", "step by step", "under",  "structure the answer",
      "plain language",   "concrete example", "builds on",
      "think through",
  };
  for (const std::string& cue : kContextCues) {
    if (strings::Contains(lower, cue)) score += 0.45;
  }
  // A meaningful input payload itself provides context.
  if (strings::CountWords(pair.input) >= 8) score += 0.35;
  // Longer, specific instructions carry more context than bare requests.
  const size_t words = strings::CountWords(pair.instruction);
  if (words >= 18) score += 0.3;
  else if (words >= 12) score += 0.15;
  return std::clamp(score, 0.0, 1.0);
}

double Safety(const InstructionPair& pair) {
  const std::string all = pair.FullInstruction() + " " + pair.output;
  const std::string lower = strings::Lower(all);
  for (const std::string& term : lexicons::UnsafeTerms()) {
    if (strings::Contains(lower, strings::Lower(term))) return 0.0;
  }
  return 1.0;
}

double Correctness(const InstructionPair& pair) {
  if (strings::Trim(pair.output).empty()) return 0.0;
  double score = 1.0;
  // Knowledge check: a corrupted fact in the response is a factual error.
  for (const synth::Topic& topic : synth::Topics()) {
    if (strings::Contains(pair.output, topic.wrong_fact)) {
      score -= 0.8;
      break;
    }
  }
  // Arithmetic check (math tasks only — digits inside code or data are not
  // an arithmetic question): recompute any stated result.
  if (pair.category == Category::kMathProblem) {
    const auto problem = synth::ParseArithProblem(pair.FullInstruction());
    if (problem) {
      const auto stated = synth::ParseStatedResult(pair.output);
      if (stated && *stated != problem->Answer()) score -= 0.8;
      if (!stated) score -= 0.2;  // a math answer should state the result
    }
  }
  return std::clamp(score, 0.0, 1.0);
}

double Relevance(const InstructionPair& pair) {
  if (strings::Trim(pair.output).empty()) return 0.0;
  const std::string full = pair.FullInstruction();
  // Subject check: a knowledgeable rater recognizes whether the response
  // speaks about the subject the instruction names — even when the
  // response never repeats the name itself.
  const synth::Topic* asked = synth::FindTopicIn(full);
  if (asked != nullptr) {
    if (synth::TopicOwnsText(*asked, pair.output)) return 1.0;
    const synth::Topic* answered = synth::FindOwningTopic(pair.output);
    if (answered != nullptr && answered->name != asked->name) return 0.1;
  }
  // Code tasks: the response should carry the requested function (or its
  // description).
  const synth::CodeTask* task = synth::FindCodeTaskIn(full);
  if (task != nullptr) {
    if (strings::Contains(pair.output, task->name) ||
        strings::Contains(pair.output, task->description) ||
        strings::Contains(pair.output, task->code)) {
      return 1.0;
    }
  }
  // Math tasks: stating a result for the asked expression is on-topic.
  if (synth::ParseArithProblem(full) &&
      synth::ParseStatedResult(pair.output)) {
    return 1.0;
  }
  const double overlap = ContentOverlap(full, pair.output);
  if (overlap >= 0.08) return 1.0;
  if (overlap >= 0.04) return 0.8;
  if (overlap >= 0.015) return 0.6;
  return 0.35;
}

double Comprehensiveness(const InstructionPair& pair) {
  const std::string trimmed = strings::Trim(pair.output);
  if (trimmed.empty()) return 0.0;
  double score = 1.0;
  // Truncation: a response should end with terminal punctuation (or a code
  // fence / list item).
  const char last = trimmed.back();
  const bool terminal = last == '.' || last == '!' || last == '?' ||
                        last == '"' || last == '`' || last == ')';
  if (!terminal) score -= 0.5;
  const size_t words = strings::CountWords(trimmed);
  const size_t min_words = FormOf(pair.category) == Form::kShort ? 3
                           : FormOf(pair.category) == Form::kMid ? 12
                                                                 : 16;
  if (words < min_words / 2) score -= 0.5;
  else if (words < min_words) score -= 0.25;
  // Extraction/formatting tasks should cover every input sentence.
  if (!pair.input.empty() &&
      (pair.category == Category::kInformationExtraction ||
       pair.category == Category::kDataFormatting)) {
    const auto inputs = tokenizer::SplitSentences(pair.input);
    size_t covered = 0;
    for (const std::string& sentence : inputs) {
      if (similarity::Containment(sentence, pair.output) > 0.7) ++covered;
    }
    if (!inputs.empty() && covered < inputs.size()) {
      score -= 0.4 * (1.0 - static_cast<double>(covered) /
                                static_cast<double>(inputs.size()));
    }
  }
  return std::clamp(score, 0.0, 1.0);
}

double ResponseReadability(const InstructionPair& pair) {
  if (strings::Trim(pair.output).empty()) return 0.0;
  // Code keeps its own spacing and casing; judge the prose around it.
  const std::string text = StripCodeFences(pair.output);
  if (strings::Trim(text).empty()) return 1.0;  // pure code block
  double score = 1.0;
  score -= 0.25 * static_cast<double>(CountMisspellings(text));
  // Verse and code legitimately start lines in lower case.
  const bool free_case = pair.category == Category::kPoemWriting ||
                         pair.category == Category::kLyricsWriting ||
                         pair.category == Category::kCoding ||
                         pair.category == Category::kCodeExplanation ||
                         pair.category == Category::kDebuggingHelp;
  if (!free_case) {
    score -= 0.20 * static_cast<double>(CountDecapitalizedSentences(text));
  }
  score -= 0.20 * static_cast<double>(CountDoubledWords(text));
  // Layout damage: flattened list markers or stray machine markers.
  if (strings::Contains(text, " - ") && !strings::Contains(text, "\n- ")) {
    score -= 0.3;
  }
  if (strings::Contains(text, " 2. ") && !strings::Contains(text, "\n2. ")) {
    score -= 0.3;
  }
  if (strings::Contains(text, "OUTPUT:")) score -= 0.4;
  if (strings::Contains(text, "  ")) score -= 0.15;
  return std::clamp(score, 0.0, 1.0);
}

double Richness(const InstructionPair& pair) {
  const std::string& text = pair.output;
  const size_t words = strings::CountWords(text);
  if (words == 0) return 0.0;
  double score = 0.0;
  // Depth: explanation markers used (less expected of short-form answers).
  const std::string lower = strings::Lower(text);
  size_t markers = 0;
  for (const std::string& marker : lexicons::ExplanationMarkers()) {
    if (strings::Contains(lower, marker)) ++markers;
  }
  const double marker_weight =
      FormOf(pair.category) == Form::kShort ? 0.10 : 0.15;
  score += marker_weight * static_cast<double>(std::min<size_t>(markers, 3));
  // Breadth: supporting sentences beyond the first.
  const size_t sentences = tokenizer::SplitSentences(text).size();
  if (sentences >= 2) score += 0.12;
  if (sentences >= 4) score += 0.10;
  // Length contributes the rest, saturating at the category's target.
  score += 0.48 * std::min(1.0, static_cast<double>(words) /
                                    LengthTarget(pair.category));
  return std::clamp(score, 0.0, 1.0);
}

double Humanization(const InstructionPair& pair) {
  const std::string lower = strings::Lower(pair.output);
  if (lower.empty()) return 0.0;
  for (const std::string& opener : lexicons::MechanicalOpeners()) {
    if (strings::Contains(pair.output, opener)) return 0.05;
  }
  double score = 0.4;  // neutral, competent tone
  for (const std::string& marker : lexicons::PolitenessMarkers()) {
    if (strings::Contains(lower, strings::Lower(marker))) {
      score += 0.35;
      break;
    }
  }
  // First/second person address reads warmer than detached prose.
  if (strings::Contains(lower, "you")) score += 0.15;
  if (strings::Contains(lower, " i ") || strings::StartsWith(lower, "i ")) {
    score += 0.1;
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace analyzers
}  // namespace quality
}  // namespace coachlm
