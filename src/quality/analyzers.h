#ifndef COACHLM_QUALITY_ANALYZERS_H_
#define COACHLM_QUALITY_ANALYZERS_H_

#include <string>

#include "data/instruction_pair.h"

namespace coachlm {
namespace quality {

/// \brief Per-dimension text analyzers behind the Table II criteria.
///
/// Each analyzer returns a satisfaction degree in [0, 1] (1 = no issues).
/// The analyzers model a *knowledgeable rater*: like the paper's human
/// experts and ChatGPT judge, they may consult world knowledge (the topic,
/// code, and lexicon banks). CoachLM never calls them — it only sees expert
/// (x, x_r) text pairs.
namespace analyzers {

// -- INSTRUCTION side --

/// Grammar/spelling/convention quality of the instruction text.
double InstructionReadability(const InstructionPair& pair);

/// Clarity/feasibility: penalizes vague fillers, logical impossibilities,
/// requests beyond a text model's ability, and dead references.
double Feasibility(const InstructionPair& pair);

/// Rich context: scenarios, roles, requirements, examples, step-by-step
/// cues. 0 for a bare one-clause request.
double Contextualization(const InstructionPair& pair);

// -- RESPONSE side --

/// Harmlessness of the exchange. 0 when unsafe content is present.
double Safety(const InstructionPair& pair);

/// Factual/logical/arithmetic correctness of the response.
double Correctness(const InstructionPair& pair);

/// On-topic effectiveness: the response addresses the instruction.
double Relevance(const InstructionPair& pair);

/// Coverage: complete sentences, no obvious truncation or omissions.
double Comprehensiveness(const InstructionPair& pair);

/// Language and layout quality of the response.
double ResponseReadability(const InstructionPair& pair);

/// Depth and breadth: explanation markers, supporting detail, length.
double Richness(const InstructionPair& pair);

/// Warm, engaging, personalized tone; penalizes robotic boilerplate.
double Humanization(const InstructionPair& pair);

/// Lexical overlap helper (Jaccard over non-stopword lower-cased words).
double ContentOverlap(const std::string& a, const std::string& b);

/// True for categories whose natural answers are short (a slogan, a
/// sentiment label); richness expectations scale down for these.
bool IsShortFormCategory(Category category);

}  // namespace analyzers
}  // namespace quality
}  // namespace coachlm

#endif  // COACHLM_QUALITY_ANALYZERS_H_
