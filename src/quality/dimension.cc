#include "quality/dimension.h"

#include <array>

namespace coachlm {
namespace quality {

const std::string& DimensionName(Dimension dimension) {
  static const std::array<std::string, 10> kNames = {
      "contextualization", "feasibility",        "instruction_readability",
      "humanization",      "richness",           "response_readability",
      "comprehensiveness", "relevance",          "correctness",
      "safety",
  };
  return kNames[static_cast<uint8_t>(dimension)];
}

DimensionLevel LevelOf(Dimension dimension) {
  switch (dimension) {
    case Dimension::kSafety:
      return DimensionLevel::kRedLine;
    case Dimension::kContextualization:
    case Dimension::kHumanization:
    case Dimension::kRichness:
      return DimensionLevel::kAdvanced;
    default:
      return DimensionLevel::kBasic;
  }
}

bool IsInstructionDimension(Dimension dimension) {
  return static_cast<uint8_t>(dimension) <=
         static_cast<uint8_t>(Dimension::kInstructionReadability);
}

}  // namespace quality
}  // namespace coachlm
