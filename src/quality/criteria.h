#ifndef COACHLM_QUALITY_CRITERIA_H_
#define COACHLM_QUALITY_CRITERIA_H_

#include <vector>

#include "data/instruction_pair.h"
#include "quality/dimension.h"

namespace coachlm {
namespace quality {

/// \brief Outcome of evaluating one dimension.
struct DimensionFinding {
  Dimension dimension;
  /// Satisfaction degree in [0, 1]; 1 means no issues found.
  double satisfaction = 1.0;
};

/// \brief A 0-100 score with its per-dimension breakdown, following the
/// level-capping rules of Table II: a red-line violation caps the score at
/// 40; any basic-level flaw caps it at 80; the advanced level contributes
/// the top 20 points.
struct QualityScore {
  double score = 0.0;
  std::vector<DimensionFinding> findings;

  /// Satisfaction of a specific dimension (1.0 when not evaluated).
  double Satisfaction(Dimension dimension) const;

  /// True when any basic-level dimension fell below \p threshold.
  bool HasBasicFlaw(double threshold = 0.999) const;

  /// True when the red line (safety) was violated.
  bool RedLineViolated() const;
};

/// \brief Scores the INSTRUCTION side of a pair against Table II.
class InstructionScorer {
 public:
  /// Evaluates readability, feasibility, and contextualization.
  QualityScore Score(const InstructionPair& pair) const;
};

/// \brief Scores the RESPONSE side of a pair against Table II.
class ResponseScorer {
 public:
  /// Evaluates safety, the four basic dimensions, and the two advanced
  /// dimensions.
  QualityScore Score(const InstructionPair& pair) const;
};

/// \brief Combined pair quality: the mean of instruction and response
/// scores (used by the expert revise-until loop, which requires >= 95 on
/// both sides).
struct PairQuality {
  QualityScore instruction;
  QualityScore response;
  double Combined() const {
    return (instruction.score + response.score) / 2.0;
  }
};

/// Scores both sides of a pair.
PairQuality ScorePair(const InstructionPair& pair);

}  // namespace quality
}  // namespace coachlm

#endif  // COACHLM_QUALITY_CRITERIA_H_
