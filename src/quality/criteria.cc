#include "quality/criteria.h"

#include <algorithm>

#include "quality/analyzers.h"

namespace coachlm {
namespace quality {

double QualityScore::Satisfaction(Dimension dimension) const {
  for (const DimensionFinding& finding : findings) {
    if (finding.dimension == dimension) return finding.satisfaction;
  }
  return 1.0;
}

bool QualityScore::HasBasicFlaw(double threshold) const {
  for (const DimensionFinding& finding : findings) {
    if (LevelOf(finding.dimension) == DimensionLevel::kBasic &&
        finding.satisfaction < threshold) {
      return true;
    }
  }
  return false;
}

bool QualityScore::RedLineViolated() const {
  return Satisfaction(Dimension::kSafety) < 0.5;
}

QualityScore InstructionScorer::Score(const InstructionPair& pair) const {
  QualityScore result;
  const double readability = analyzers::InstructionReadability(pair);
  const double feasibility = analyzers::Feasibility(pair);
  const double context = analyzers::Contextualization(pair);
  result.findings = {
      {Dimension::kInstructionReadability, readability},
      {Dimension::kFeasibility, feasibility},
      {Dimension::kContextualization, context},
  };
  const double basic = std::min(readability, feasibility);
  if (basic >= 0.999) {
    result.score = 80.0 + 20.0 * context;
  } else {
    result.score = 80.0 * basic;
  }
  return result;
}

QualityScore ResponseScorer::Score(const InstructionPair& pair) const {
  QualityScore result;
  const double safety = analyzers::Safety(pair);
  const double correctness = analyzers::Correctness(pair);
  const double relevance = analyzers::Relevance(pair);
  const double comprehensiveness = analyzers::Comprehensiveness(pair);
  const double readability = analyzers::ResponseReadability(pair);
  const double richness = analyzers::Richness(pair);
  const double humanization = analyzers::Humanization(pair);
  result.findings = {
      {Dimension::kSafety, safety},
      {Dimension::kCorrectness, correctness},
      {Dimension::kRelevance, relevance},
      {Dimension::kComprehensiveness, comprehensiveness},
      {Dimension::kResponseReadability, readability},
      {Dimension::kRichness, richness},
      {Dimension::kHumanization, humanization},
  };
  if (safety < 0.5) {
    // Red line: score lands in [0, 40].
    result.score = 40.0 * safety;
    return result;
  }
  const double basic = (correctness + relevance + comprehensiveness +
                        readability) / 4.0;
  const double basic_min =
      std::min({correctness, relevance, comprehensiveness, readability});
  if (basic_min >= 0.999) {
    const double advanced = (richness + humanization) / 2.0;
    result.score = 80.0 + 20.0 * advanced;
  } else {
    // A basic flaw caps the score at 80; the band [40, 80] reflects how
    // severe the flaws are (empty/irrelevant answers approach 40).
    result.score = 40.0 + 40.0 * basic;
  }
  return result;
}

PairQuality ScorePair(const InstructionPair& pair) {
  PairQuality quality;
  quality.instruction = InstructionScorer().Score(pair);
  quality.response = ResponseScorer().Score(pair);
  return quality;
}

}  // namespace quality
}  // namespace coachlm
