#ifndef COACHLM_QUALITY_QUALITY_REPORT_H_
#define COACHLM_QUALITY_QUALITY_REPORT_H_

#include <map>
#include <string>

#include "common/execution.h"
#include "data/dataset.h"
#include "quality/dimension.h"

namespace coachlm {
namespace quality {

/// \brief Per-dimension diagnostic profile of a dataset.
///
/// The Fig. 4 rating tells *that* a dataset improved; this report tells
/// *where*: mean satisfaction and flaw rate for each of the nine Table II
/// dimensions, so a data engineer can see which deficiency classes a
/// revision pass (or a filtering baseline) actually addressed.
struct QualityReport {
  struct DimensionStats {
    /// Mean satisfaction in [0, 1] across the dataset.
    double mean_satisfaction = 0.0;
    /// Share of pairs whose satisfaction fell below 0.999 (flawed).
    double flaw_rate = 0.0;
  };

  size_t dataset_size = 0;
  /// Mean 0-100 scores of the two sides.
  double mean_instruction_score = 0.0;
  double mean_response_score = 0.0;
  std::map<Dimension, DimensionStats> dimensions;

  /// Renders an aligned ASCII table of the report.
  std::string ToAscii() const;

  /// Renders a comparison table of two reports ("before" vs "after").
  static std::string Compare(const QualityReport& before,
                             const QualityReport& after);
};

/// \brief Scores every pair of \p dataset against the Table II criteria
/// and aggregates the per-dimension statistics. Scoring parallelizes over
/// \p exec; sums fold in dataset order, so the report is bit-identical at
/// any thread count.
QualityReport AnalyzeDataset(
    const InstructionDataset& dataset,
    const ExecutionContext& exec = ExecutionContext::Default());

}  // namespace quality
}  // namespace coachlm

#endif  // COACHLM_QUALITY_QUALITY_REPORT_H_
