#ifndef COACHLM_QUALITY_ACCURACY_RATER_H_
#define COACHLM_QUALITY_ACCURACY_RATER_H_

#include "common/execution.h"
#include "data/dataset.h"
#include "data/instruction_pair.h"
#include "data/record_stream.h"

namespace coachlm {
namespace quality {

/// \brief Simulated ChatGPT dataset rater (the AlpaGasus protocol).
///
/// AlpaGasus prompts ChatGPT to rate the accuracy of each RESPONSE on a
/// 0-5 scale; the paper reuses that protocol for Fig. 4 (mean 3.95 -> 4.31,
/// share above 4.5 from 17.7% -> 78.9%). This rater maps the Table II
/// response score onto the same 0-5 scale, making it a monotone function
/// of response quality exactly as the LLM judge is assumed to be.
class AccuracyRater {
 public:
  /// Rates one pair's response on the 0-5 scale.
  double Rate(const InstructionPair& pair) const;

  /// Summary of a whole-dataset rating pass.
  struct DatasetRating {
    double mean = 0.0;
    /// Share of pairs rated above 4.5 (the paper's headline metric).
    double fraction_above_45 = 0.0;
    /// All individual ratings, aligned with the dataset order.
    std::vector<double> ratings;
  };

  /// Rates every pair in \p dataset. Scoring parallelizes over \p exec;
  /// the aggregation folds in dataset order, so the result (including the
  /// floating-point mean) is bit-identical at any thread count.
  DatasetRating RateDataset(
      const InstructionDataset& dataset,
      const ExecutionContext& exec = ExecutionContext::Default()) const;

  /// Record-stream form of RateDataset: drains \p reader and rates the
  /// materialized corpus — same bytes regardless of the on-disk backend.
  [[nodiscard]] Result<DatasetRating> RateRecords(
      RecordReader* reader,
      const ExecutionContext& exec = ExecutionContext::Default()) const;
};

}  // namespace quality
}  // namespace coachlm

#endif  // COACHLM_QUALITY_ACCURACY_RATER_H_
