#include "lm/rule_extractor.h"

#include <algorithm>
#include <cctype>

#include "text/alignment.h"
#include "text/edit_distance.h"
#include "text/lexicons.h"
#include "text/similarity.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace lm {
namespace {

bool IsCaseOnlyChange(const std::string& a, const std::string& b) {
  return a != b && strings::Lower(a) == strings::Lower(b);
}

bool IsSpellingLikeChange(const std::string& a, const std::string& b) {
  if (a == b || a.size() < 3 || b.size() < 3) return false;
  if (tokenizer::IsPunctuation(a) || tokenizer::IsPunctuation(b)) return false;
  const size_t distance = editdist::CharDistanceBounded(a, b, 2);
  return distance <= 2;
}

/// Joins tokens back into a phrase with simple spacing (learning-side only;
/// inference uses string replacement of these exact phrases).
std::string JoinPhrase(const std::vector<std::string>& tokens) {
  return tokenizer::Detokenize(tokens);
}

/// Splits a token sequence into sentence-sized chunks at ./!/? tokens.
std::vector<std::vector<std::string>> SplitTokenSentences(
    const std::vector<std::string>& tokens) {
  std::vector<std::vector<std::string>> sentences;
  std::vector<std::string> current;
  for (const std::string& token : tokens) {
    if (token == kLayoutNewline) {
      if (!current.empty()) {
        sentences.push_back(current);
        current.clear();
      }
      continue;
    }
    current.push_back(token);
    if (token == "." || token == "!" || token == "?") {
      sentences.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) sentences.push_back(current);
  return sentences;
}

bool LooksLikeListToken(const std::string& token) {
  if (token == "-") return true;
  if (token.empty()) return false;
  // "1.", "2.", ... or bare digits preceding a "." token.
  return std::isdigit(static_cast<unsigned char>(token.front())) != 0 &&
         token.size() <= 2;
}

}  // namespace

std::vector<std::string> TokenizeWithLayout(const std::string& text) {
  const std::string marked =
      strings::ReplaceAll(text, "\n", " " + std::string(kLayoutNewline) + " ");
  return tokenizer::WordTokenize(marked);
}

bool LooksLikeClosing(const std::string& sentence) {
  const std::string lower = strings::Lower(sentence);
  if (sentence.find('!') != std::string::npos) return true;
  for (const std::string& marker : lexicons::PolitenessMarkers()) {
    if (strings::Contains(lower, strings::Lower(marker))) return true;
  }
  return false;
}

size_t MechanicalOpenerLength(const std::string& text) {
  for (const std::string& opener : lexicons::MechanicalOpeners()) {
    if (strings::StartsWith(text, opener)) return opener.size();
  }
  return 0;
}

RuleExtractor::RuleExtractor(RelatednessFn relatedness)
    : relatedness_(std::move(relatedness)) {
  if (!relatedness_) {
    relatedness_ = [](const InstructionPair& pair) {
      return similarity::ContentOverlap(pair.FullInstruction(), pair.output);
    };
  }
}

void RuleExtractor::Consume(const RevisionRecord& record) {
  ++consumed_;
  LearnInstructionSide(record);
  LearnResponseSide(record);
  total_target_words_ +=
      static_cast<double>(strings::CountWords(record.revised.output));
}

void RuleExtractor::LearnInstructionSide(const RevisionRecord& record) {
  const std::string& src_text = record.original.instruction;
  const std::string& tgt_text = record.revised.instruction;
  if (src_text == tgt_text) return;
  const auto src = TokenizeWithLayout(src_text);
  const auto tgt = TokenizeWithLayout(tgt_text);
  const auto script = align::Align(src, tgt);
  const auto hunks = align::ExtractHunks(script);
  bool context_added = false;
  for (const align::Hunk& hunk : hunks) {
    const bool pure_insert = hunk.src_tokens.empty();
    const bool pure_delete = hunk.tgt_tokens.empty();
    if (hunk.src_tokens.size() == 1 && hunk.tgt_tokens.size() == 1) {
      const std::string& from = hunk.src_tokens[0];
      const std::string& to = hunk.tgt_tokens[0];
      if (IsCaseOnlyChange(from, to)) {
        ++store_.capitalize_support;
      } else if (IsSpellingLikeChange(from, to)) {
        ++store_.token_subs[from][to];
      } else if (from.size() >= 4) {
        // A content replacement: candidate vague-filler substitution.
        store_.filler_replacements[from].insert(to);
      }
      continue;
    }
    if (pure_insert && hunk.src_begin >= src.size() &&
        hunk.tgt_tokens.size() >= 4) {
      // Trailing insertion: an added context scaffold sentence.
      for (const auto& sentence : SplitTokenSentences(hunk.tgt_tokens)) {
        if (sentence.size() >= 4) {
          ++store_.context_exemplars[JoinPhrase(sentence)];
          context_added = true;
        }
      }
      continue;
    }
    if (pure_delete && hunk.src_tokens.size() >= 3) {
      // Deleted clause (infeasible requirement removed by the expert).
      ++store_.strip_phrases[JoinPhrase(hunk.src_tokens)];
      continue;
    }
    if (!pure_insert && !pure_delete && hunk.src_tokens.size() <= 3 &&
        hunk.tgt_tokens.size() <= 6) {
      // Short phrase replaced by other content: filler candidate.
      store_.filler_replacements[JoinPhrase(hunk.src_tokens)].insert(
          JoinPhrase(hunk.tgt_tokens));
    }
  }
  if (context_added) ++contexts_added_;
}

void RuleExtractor::LearnResponseSide(const RevisionRecord& record) {
  const std::string& src_text = record.original.output;
  const std::string& tgt_text = record.revised.output;
  if (src_text == tgt_text) return;
  // Wholesale rewrites teach "replace, don't patch". Detection uses
  // containment of the original's content in the revision: an *expansion*
  // preserves the original text (containment stays high even though the
  // revision is much longer), a rewrite discards it.
  const double preserved = similarity::Containment(src_text, tgt_text);
  const bool rewrite = preserved < 0.45 || src_text.empty();
  const double original_relatedness = relatedness_(record.original);
  if (rewrite) {
    ++rewrites_;
    rewritten_overlap_sum_ += original_relatedness;
  } else {
    ++patched_count_;
    patched_overlap_sum_ += original_relatedness;
  }
  if (rewrite && src_text.empty()) return;  // nothing to align against

  const auto src = TokenizeWithLayout(src_text);
  const auto tgt = TokenizeWithLayout(tgt_text);
  const auto script = align::Align(src, tgt);
  const auto hunks = align::ExtractHunks(script);
  size_t appended_sentences = 0;
  bool closing_added = false;
  for (const align::Hunk& hunk : hunks) {
    const bool pure_insert = hunk.src_tokens.empty();
    const bool pure_delete = hunk.tgt_tokens.empty();
    // Leading deletion: a removed mechanical opener. Learned from rewrite
    // records too — even a full rewrite demonstrates that the leading
    // boilerplate had to go (pure leading deletions stay cleanly separated
    // from the replacement hunks of a rewrite).
    if (pure_delete && hunk.src_begin == 0 && hunk.src_tokens.size() >= 2) {
      ++store_.opener_removals[JoinPhrase(hunk.src_tokens)];
      continue;
    }
    if (hunk.src_tokens.size() == 1 && hunk.tgt_tokens.size() == 1) {
      const std::string& from = hunk.src_tokens[0];
      const std::string& to = hunk.tgt_tokens[0];
      if (IsCaseOnlyChange(from, to)) {
        ++store_.capitalize_support;
      } else if (IsSpellingLikeChange(from, to)) {
        ++store_.token_subs[from][to];
      }
      continue;
    }
    // Doubled-word removal: single deleted token equal to its neighbour.
    if (pure_delete && hunk.src_tokens.size() == 1) {
      const size_t at = hunk.src_begin;
      const std::string& tok = hunk.src_tokens[0];
      const bool doubled =
          (at > 0 && src[at - 1] == tok) ||
          (at + 1 < src.size() && src[at + 1] == tok);
      if (doubled) {
        ++store_.doubled_removal_support;
        continue;
      }
      if (tok.size() >= 3) ++store_.strip_tokens[tok];
      continue;
    }
    // Layout reflow: newline tokens inserted next to list markers.
    if (pure_insert) {
      size_t newline_inserts = 0;
      for (const std::string& tok : hunk.tgt_tokens) {
        if (tok == kLayoutNewline) ++newline_inserts;
      }
      if (newline_inserts > 0 &&
          newline_inserts * 2 >= hunk.tgt_tokens.size()) {
        const size_t at = hunk.src_begin;
        if (at < src.size() && LooksLikeListToken(src[at])) {
          ++store_.reflow_support;
          continue;
        }
        ++store_.reflow_support;  // layout-only insertion elsewhere
        continue;
      }
      // Content insertion: appended explanation sentences (at the tail) or
      // inline enrichment. Count whole sentences; from *patch-style*
      // revisions also learn stock phrases — repeated final sentences with
      // terminal punctuation are closing candidates, and comma-terminated
      // two-token prefixes are discourse-marker candidates. Rewrite hunks
      // teach "replace", not "append these phrases", so they are excluded
      // from phrase learning.
      const auto sentences = SplitTokenSentences(hunk.tgt_tokens);
      for (const auto& sentence : sentences) {
        if (sentence.size() < 3) continue;
        ++appended_sentences;
        {
          const std::string joined = JoinPhrase(sentence);
          if (joined.find('!') != std::string::npos ||
              strings::Contains(strings::Lower(joined), "hope") ||
              strings::Contains(strings::Lower(joined), "let me know")) {
            closing_added = true;
          }
        }
        if (rewrite) continue;  // rewrites teach "replace", not phrases
        const std::string joined = JoinPhrase(sentence);
        const char last = joined.empty() ? ' ' : joined.back();
        if ((last == '.' || last == '!' || last == '?') &&
            LooksLikeClosing(joined)) {
          ++store_.closings[joined];
        }
        if (sentence.size() > 3 && sentence[2] == ",") {
          std::vector<std::string> prefix(sentence.begin(),
                                          sentence.begin() + 3);
          ++store_.markers[JoinPhrase(prefix)];
        }
      }
      continue;
    }
    // Mixed replacement hunks: track layout reflow evidence inside them.
    size_t newline_gain = 0;
    for (const std::string& tok : hunk.tgt_tokens) {
      if (tok == kLayoutNewline) ++newline_gain;
    }
    for (const std::string& tok : hunk.src_tokens) {
      if (tok == kLayoutNewline && newline_gain > 0) --newline_gain;
    }
    if (newline_gain >= 2) ++store_.reflow_support;
  }
  total_appended_sentences_ += appended_sentences;
  if (closing_added) ++closings_added_;
}

RuleStore RuleExtractor::Finalize() const {
  RuleStore store = store_;
  store.train_pairs = consumed_;
  if (consumed_ > 0) {
    const double n = static_cast<double>(consumed_);
    store.mean_appended_sentences =
        static_cast<double>(total_appended_sentences_) / n;
    store.mean_target_response_words = total_target_words_ / n;
    store.closing_rate = static_cast<double>(closings_added_) / n;
    store.context_add_rate = static_cast<double>(contexts_added_) / n;
    store.rewrite_rate = static_cast<double>(rewrites_) / n;
  }
  // Rewrite policy: experts rewrote originals whose response related
  // weakly to the instruction. The learned decision boundary is the
  // midpoint of the class means (only meaningful with both classes seen).
  if (rewrites_ > 0 && patched_count_ > 0) {
    const double rewritten_mean =
        rewritten_overlap_sum_ / static_cast<double>(rewrites_);
    const double patched_mean =
        patched_overlap_sum_ / static_cast<double>(patched_count_);
    if (patched_mean > rewritten_mean) {
      store.rewrite_overlap_threshold = (rewritten_mean + patched_mean) / 2.0;
    }
  }
  // Drop low-support closing/marker candidates: genuine closings and
  // discourse markers are stock phrases reused across many revisions;
  // topical sentences and their prefixes are not. The cut scales with the
  // training-set size so noise cannot sneak in through sheer volume.
  const size_t closing_cut =
      std::max<size_t>(2, consumed_ / 15);
  for (auto it = store.closings.begin(); it != store.closings.end();) {
    it = it->second < closing_cut ? store.closings.erase(it) : std::next(it);
  }
  const size_t marker_cut = std::max<size_t>(2, consumed_ / 20);
  for (auto it = store.markers.begin(); it != store.markers.end();) {
    it = it->second < marker_cut ? store.markers.erase(it) : std::next(it);
  }
  return store;
}

}  // namespace lm
}  // namespace coachlm
