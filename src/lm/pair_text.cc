#include "lm/pair_text.h"

#include "text/string_util.h"

namespace coachlm {
namespace lm {
namespace {

constexpr char kInstructionHeader[] = "Instruction: ";
constexpr char kInputHeader[] = "Input: ";
constexpr char kResponseHeader[] = "Response: ";

}  // namespace

std::string SerializePair(const InstructionPair& pair) {
  std::string out = kInstructionHeader + pair.instruction + "\n";
  out += kInputHeader + pair.input + "\n";
  out += kResponseHeader + pair.output;
  return out;
}

Result<InstructionPair> DeserializePair(const std::string& text) {
  const size_t instruction_at = text.find(kInstructionHeader);
  const size_t input_at = text.find("\n" + std::string(kInputHeader));
  const size_t response_at = text.find("\n" + std::string(kResponseHeader));
  if (instruction_at != 0 || input_at == std::string::npos ||
      response_at == std::string::npos || response_at < input_at) {
    return Status::ParseError("not a serialized instruction pair");
  }
  InstructionPair pair;
  const size_t instruction_begin = sizeof(kInstructionHeader) - 1;
  pair.instruction = text.substr(instruction_begin,
                                 input_at - instruction_begin);
  const size_t input_begin = input_at + 1 + sizeof(kInputHeader) - 1;
  pair.input = text.substr(input_begin, response_at - input_begin);
  pair.output = text.substr(response_at + 1 + sizeof(kResponseHeader) - 1);
  if (strings::Trim(pair.instruction).empty()) {
    return Status::ParseError("serialized pair has an empty instruction");
  }
  return pair;
}

InstructionPair MakeCoachSample(const InstructionPair& original,
                                const InstructionPair& revised) {
  InstructionPair sample;
  sample.id = original.id;
  sample.category = original.category;
  sample.instruction = kRevisionPrompt;
  sample.input = SerializePair(original);
  sample.output = SerializePair(revised);
  return sample;
}

}  // namespace lm
}  // namespace coachlm
