#include "lm/rule_compile.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace coachlm {
namespace lm {

CompiledRuleSet::CompiledRuleSet(const RuleStore& rules, size_t min_support)
    : min_support_(min_support) {
  // Pattern ids are assigned in family registration order; the id is the
  // index into pattern_texts_ and the automaton alike.
  auto add_pattern = [this](const std::string& text) {
    const auto id = static_cast<uint32_t>(pattern_texts_.size());
    pattern_texts_.push_back(text);
    return id;
  };

  // token_subs, in std::map (lexicographic) order — the scan path's
  // iteration order. The best replacement is resolved now; entries whose
  // best is empty never edit text on the scan path, so they compile away.
  for (const auto& [from, targets] : rules.token_subs) {
    (void)targets;
    std::string to = rules.BestSubstitution(from, min_support);
    if (to.empty()) continue;
    CompiledTokenSub sub;
    sub.from = from;
    sub.to = std::move(to);
    sub.pattern = add_pattern(from);
    token_subs_.push_back(std::move(sub));
  }

  auto add_phrase_family = [&](const std::map<std::string, size_t>& table,
                               std::vector<CompiledPhrase>* out) {
    for (std::string& phrase : RuleStore::PhrasesAbove(table, min_support)) {
      CompiledPhrase compiled;
      compiled.pattern = add_pattern(phrase);
      compiled.text = std::move(phrase);
      out->push_back(std::move(compiled));
    }
  };
  add_phrase_family(rules.strip_phrases, &strip_phrases_);

  // Fillers, in map order; only phrases replaced with *varying* content
  // (>= 2 distinct replacements) mean "substitute the subject".
  for (const auto& [filler, replacements] : rules.filler_replacements) {
    if (replacements.size() < 2) continue;
    CompiledPhrase compiled;
    compiled.text = filler;
    compiled.pattern = add_pattern(filler);
    fillers_.push_back(std::move(compiled));
  }

  add_phrase_family(rules.opener_removals, &openers_);
  add_phrase_family(rules.strip_tokens, &strip_tokens_);

  markers_ = RuleStore::PhrasesAbove(rules.markers, min_support);
  closings_ = RuleStore::PhrasesAbove(rules.closings, min_support);
  context_exemplars_ =
      RuleStore::PhrasesAbove(rules.context_exemplars, min_support);

  capitalize_ = rules.capitalize_support >= min_support;
  remove_doubled_ = rules.doubled_removal_support >= min_support;
  reflow_ = rules.reflow_support >= min_support;
  closing_rate_ = rules.closing_rate;
  context_add_rate_ = rules.context_add_rate;
  rewrite_overlap_threshold_ = rules.rewrite_overlap_threshold;
  mean_target_response_words_ = rules.mean_target_response_words;
  expansion_budget_ = static_cast<size_t>(
      std::clamp(std::llround(rules.mean_appended_sentences), 0LL, 4LL));

  automaton_ =
      std::make_unique<const automaton::MatchAutomaton>(pattern_texts_);
}

RuleMatcher::RuleMatcher(const CompiledRuleSet& rules,
                         const std::string& original)
    : rules_(rules), original_fp_(automaton::FingerprintOf(original)) {
  reachable_mask_ = original_fp_.mask;
}

void RuleMatcher::NoteReplacement(const std::string& inserted) {
  mutated_ = true;
  reachable_mask_ |= automaton::FingerprintOf(inserted).mask;
}

void RuleMatcher::EnsureScanned(const std::string& current) {
  if (scanned_) return;
  rules_.matcher_automaton().Scan(current, &first_begin_);
  scanned_ = true;
}

size_t RuleMatcher::FirstBegin(uint32_t pattern, const std::string& current) {
  // An empty needle matches at 0 (std::string::find semantics); the
  // automaton reports it as absent, so answer before consulting it. The
  // trainer never learns empty phrases — this is belt and braces.
  if (rules_.matcher_automaton().pattern_length(pattern) == 0) return 0;
  const automaton::ClassFingerprint& needle =
      rules_.matcher_automaton().fingerprint(pattern);
  if (!mutated_) {
    // Exact: the text is still the fingerprinted/scanned original.
    if (!original_fp_.Covers(needle)) {
      ++prefilter_rejected_;
      return automaton::kNotFound;
    }
    EnsureScanned(current);
    return first_begin_[pattern];
  }
  // Mutated: counts are unsound (ReplaceAll multiplies, erase subtracts)
  // but the class *mask* can only grow through inserted strings, which
  // NoteReplacement folded in — a pattern needing an unreachable class
  // still cannot occur.
  if (!automaton::ClassFingerprint{reachable_mask_, {}}.MaskCovers(needle)) {
    ++prefilter_rejected_;
    return automaton::kNotFound;
  }
  const size_t at = current.find(rules_.pattern_text(pattern));
  return at == std::string::npos ? automaton::kNotFound : at;
}

bool RuleMatcher::Contains(uint32_t pattern, const std::string& current) {
  return FirstBegin(pattern, current) != automaton::kNotFound;
}

bool RuleMatcher::StartsWith(uint32_t pattern, const std::string& current) {
  if (rules_.matcher_automaton().pattern_length(pattern) == 0) return true;
  const automaton::ClassFingerprint& needle =
      rules_.matcher_automaton().fingerprint(pattern);
  if (!mutated_) {
    if (!original_fp_.Covers(needle)) {
      ++prefilter_rejected_;
      return false;
    }
    EnsureScanned(current);
    // The first occurrence is the leftmost one, so "starts with" is
    // exactly "first occurrence begins at 0".
    return first_begin_[pattern] == 0;
  }
  if (!automaton::ClassFingerprint{reachable_mask_, {}}.MaskCovers(needle)) {
    ++prefilter_rejected_;
    return false;
  }
  return current.compare(0, rules_.pattern_text(pattern).size(),
                         rules_.pattern_text(pattern)) == 0;
}

}  // namespace lm
}  // namespace coachlm
