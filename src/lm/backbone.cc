#include "lm/backbone.h"

#include <algorithm>

#include "synth/code_bank.h"
#include "synth/topic_bank.h"
#include "text/lexicons.h"
#include "text/similarity.h"
#include "text/string_util.h"

namespace coachlm {
namespace lm {

BackboneProfile Llama7B() {
  BackboneProfile profile;
  profile.name = "LLaMA-7b";
  profile.knowledge_coverage = 0.55;
  profile.fluency_noise = 0.12;
  profile.invalid_output_rate = 0.030;
  profile.pretrain_seed = 11;
  return profile;
}

BackboneProfile ChatGlm6B() {
  BackboneProfile profile;
  profile.name = "ChatGLM-6b";
  profile.knowledge_coverage = 0.75;
  profile.fluency_noise = 0.06;
  profile.invalid_output_rate = 0.018;
  profile.pretrain_seed = 12;
  return profile;
}

BackboneProfile ChatGlm26B() {
  BackboneProfile profile;
  profile.name = "ChatGLM2-6b";
  profile.knowledge_coverage = 0.90;
  profile.fluency_noise = 0.03;
  profile.invalid_output_rate = 0.013;
  profile.pretrain_seed = 13;
  return profile;
}

namespace {

/// Builds a memory document from a source text bundle, retaining each
/// sentence with probability `coverage`. The key always includes the
/// subject words (names anchor associations even for weak models).
MemoryDoc BuildDoc(const std::string& subject,
                   const std::vector<std::string>& sentences,
                   double coverage, Rng* rng) {
  MemoryDoc doc;
  std::string key_source = subject;
  for (const std::string& sentence : sentences) {
    if (rng->NextBool(coverage)) {
      doc.sentences.push_back(sentence);
      key_source += " " + sentence;
    }
  }
  const auto words = similarity::ContentWords(key_source);
  doc.key_words.assign(words.begin(), words.end());
  std::sort(doc.key_words.begin(), doc.key_words.end());
  return doc;
}

}  // namespace

BackboneModel::BackboneModel(BackboneProfile profile)
    : profile_(std::move(profile)) {
  Rng rng(profile_.pretrain_seed);
  for (const synth::Topic& topic : synth::Topics()) {
    std::vector<std::string> sentences;
    sentences.push_back(topic.fact);
    for (const std::string& detail : topic.details) {
      sentences.push_back(detail);
    }
    MemoryDoc doc = BuildDoc(topic.name + " " + topic.domain, sentences,
                             profile_.knowledge_coverage, &rng);
    if (!doc.sentences.empty()) docs_.push_back(std::move(doc));
  }
  for (const synth::CodeTask& task : synth::CodeTasks()) {
    // The code itself is part of the pre-training association key: code
    // identifiers anchor code questions to the right memory much more
    // reliably than the prose around them.
    MemoryDoc doc = BuildDoc(task.name + " " + task.description + " " +
                                 task.code + " " + task.buggy_code,
                             task.explanation,
                             profile_.knowledge_coverage, &rng);
    if (!doc.sentences.empty()) docs_.push_back(std::move(doc));
  }
  for (const MemoryDoc& doc : docs_) {
    for (const std::string& sentence : doc.sentences) {
      fluency_lm_.AddText(sentence);
    }
  }
}

double BackboneModel::DocScore(size_t doc_index,
                               const std::string& text) const {
  size_t count = 0;
  size_t longest = 0;
  return DocScoreDetailed(doc_index, text, &count, &longest);
}

double BackboneModel::DocScoreDetailed(size_t doc_index,
                                       const std::string& text,
                                       size_t* match_count,
                                       size_t* longest_match) const {
  const auto words = similarity::ContentWords(text);
  return DocScoreDetailed(doc_index, words, match_count, longest_match);
}

double BackboneModel::DocScoreDetailed(
    size_t doc_index, const std::unordered_set<std::string>& words,
    size_t* match_count, size_t* longest_match) const {
  const MemoryDoc& doc = docs_[doc_index];
  *match_count = 0;
  *longest_match = 0;
  if (words.empty()) return 0.0;
  double total = 0.0;
  double matched = 0.0;
  // COACHLM_LINT_ALLOW(determinism-unordered-serialization): summation order is pinned by the golden determinism suite for this stdlib — the pre-hoist path iterated the same per-call set, and sorting here would change the float sums and invalidate every golden. The one set object is reused across all docs of a query, so per-doc scores stay mutually consistent.
  for (const std::string& word : words) {
    const double weight = static_cast<double>(word.size());
    total += weight;
    if (std::binary_search(doc.key_words.begin(), doc.key_words.end(),
                           word)) {
      matched += weight;
      ++*match_count;
      *longest_match = std::max(*longest_match, word.size());
    }
  }
  return total > 0.0 ? matched / total : 0.0;
}

std::vector<std::string> BackboneModel::RetrieveRelevant(
    const std::string& context, const std::string& existing,
    size_t max_sentences) const {
  constexpr double kActivationThreshold = 0.15;
  // Tokenize the query once; every document is scored against the same
  // word set (identical iteration order per doc, so identical sums).
  const auto context_words = similarity::ContentWords(context);
  double best_score = 0.0;
  size_t best_doc = docs_.size();
  bool best_activates = false;
  for (size_t i = 0; i < docs_.size(); ++i) {
    size_t count = 0;
    size_t longest = 0;
    const double score = DocScoreDetailed(i, context_words, &count, &longest);
    if (score > best_score) {
      best_score = score;
      best_doc = i;
      // Activation needs discriminative evidence: a single short
      // incidental word ("show") must not light a document up, while a
      // subject name inside a long query should — either a high relative
      // score with a long matched word, or several matched words with at
      // least one discriminative one.
      const bool discriminative = count >= 2 || longest >= 6;
      const bool absolute = count >= 2 && longest >= 5;
      best_activates =
          (score >= kActivationThreshold && discriminative) || absolute;
    }
  }
  std::vector<std::string> out;
  if (best_doc == docs_.size() || !best_activates) {
    return out;  // the model does not know this subject
  }
  // Case-insensitive presence checks: revised text often carries a
  // decapitalized copy of a memory sentence after a discourse marker.
  const std::string existing_lower = strings::Lower(existing);
  const std::string context_lower = strings::Lower(context);
  for (const std::string& sentence : docs_[best_doc].sentences) {
    if (out.size() >= max_sentences) break;
    const std::string sentence_lower = strings::Lower(sentence);
    if (strings::Contains(existing_lower, sentence_lower)) continue;
    if (strings::Contains(context_lower, sentence_lower)) continue;
    out.push_back(sentence);
  }
  return out;
}

double BackboneModel::TopicalAgreement(const std::string& a,
                                       const std::string& b) const {
  const auto words_a = similarity::ContentWords(a);
  const auto words_b = similarity::ContentWords(b);
  double best = 0.0;
  for (size_t i = 0; i < docs_.size(); ++i) {
    size_t count = 0;
    size_t longest = 0;
    const double score =
        std::min(DocScoreDetailed(i, words_a, &count, &longest),
                 DocScoreDetailed(i, words_b, &count, &longest));
    best = std::max(best, score);
  }
  return best;
}

std::string BackboneModel::ApplyFluencyNoise(const std::string& sentence,
                                             Rng* rng) const {
  if (!rng->NextBool(profile_.fluency_noise)) return sentence;
  // A weak generator slips: corrupt one known word, or decapitalize.
  std::string noisy = sentence;
  for (const auto& [good, bad] : lexicons::SpellingCorruptions()) {
    if (strings::Contains(noisy, good)) {
      noisy = strings::ReplaceAll(noisy, good, bad);
      return noisy;
    }
  }
  for (char& c : noisy) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      break;
    }
  }
  return noisy;
}

bool BackboneModel::DegeneratesThisCall(Rng* rng) const {
  return rng->NextBool(profile_.invalid_output_rate);
}

}  // namespace lm
}  // namespace coachlm
