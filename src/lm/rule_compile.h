#ifndef COACHLM_LM_RULE_COMPILE_H_
#define COACHLM_LM_RULE_COMPILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lm/rule_store.h"
#include "text/match_automaton.h"

namespace coachlm {
namespace lm {

/// \name Compiled rule engine
///
/// The scan-path inference in coach_lm.cc probes every learned table per
/// pair: one hash/map walk plus a full substring scan per rule, and a
/// fresh PhrasesAbove sort per family per call. Compilation hoists all of
/// that to model-load time: the rule set becomes an immutable
/// CompiledRuleSet — per-family rule vectors frozen in apply order, one
/// Aho-Corasick automaton over every searched-inside pattern, and a
/// character-class fingerprint per pattern for O(1) rejection. A
/// RuleMatcher then answers "does rule R fire on this text, and where?"
/// from one shared scan instead of per-rule string work, with the same
/// answers the scan path computes — docs/RULE_ENGINE.md specifies the
/// equivalence contract in full.
/// @{

/// \brief One precompiled substitution: `from` is an automaton pattern,
/// `to` is the support-winning replacement (BestSubstitution), resolved
/// at compile time. Entries whose best replacement is empty are dropped —
/// the scan path probes them but never edits.
struct CompiledTokenSub {
  std::string from;
  std::string to;
  uint32_t pattern = 0;
};

/// \brief One precompiled phrase rule: the literal plus its automaton
/// pattern id.
struct CompiledPhrase {
  std::string text;
  uint32_t pattern = 0;
};

/// \brief An immutable rule store compiled for fast application.
///
/// Everything CoachLm's apply path reads per pair is precomputed here
/// once: family vectors in the exact order the scan path iterates
/// (std::map order for token_subs and fillers, PhrasesAbove order — support
/// desc, phrase asc — for the phrase tables), support gates resolved to
/// booleans, and aggregate rates copied. The automaton holds every pattern
/// searched *inside* text (token_subs froms, strip_phrases, fillers,
/// opener_removals, strip_tokens); rotation tables (closings, markers,
/// context_exemplars) are picked by index, never searched, so they compile
/// to plain vectors. Move-only; share via shared_ptr<const CompiledRuleSet>
/// — CoachLm does, so serve hot reload swaps the compiled artifact
/// atomically with the model snapshot.
class CompiledRuleSet {
 public:
  CompiledRuleSet(const RuleStore& rules, size_t min_support);

  CompiledRuleSet(const CompiledRuleSet&) = delete;
  CompiledRuleSet& operator=(const CompiledRuleSet&) = delete;
  CompiledRuleSet(CompiledRuleSet&&) = default;
  CompiledRuleSet& operator=(CompiledRuleSet&&) = default;

  /// \name Families, in apply order
  /// @{
  const std::vector<CompiledTokenSub>& token_subs() const {
    return token_subs_;
  }
  const std::vector<CompiledPhrase>& strip_phrases() const {
    return strip_phrases_;
  }
  const std::vector<CompiledPhrase>& fillers() const { return fillers_; }
  const std::vector<CompiledPhrase>& openers() const { return openers_; }
  const std::vector<CompiledPhrase>& strip_tokens() const {
    return strip_tokens_;
  }
  /// @}

  /// \name Rotation tables (indexed by an RNG draw, never searched)
  /// @{
  const std::vector<std::string>& markers() const { return markers_; }
  const std::vector<std::string>& closings() const { return closings_; }
  const std::vector<std::string>& context_exemplars() const {
    return context_exemplars_;
  }
  /// @}

  /// \name Support gates and aggregates, resolved at compile time
  /// @{
  bool capitalize() const { return capitalize_; }
  bool remove_doubled() const { return remove_doubled_; }
  bool reflow() const { return reflow_; }
  double closing_rate() const { return closing_rate_; }
  double context_add_rate() const { return context_add_rate_; }
  double rewrite_overlap_threshold() const {
    return rewrite_overlap_threshold_;
  }
  double mean_target_response_words() const {
    return mean_target_response_words_;
  }
  /// clamp(llround(mean_appended_sentences), 0, 4), precomputed.
  size_t expansion_budget() const { return expansion_budget_; }
  /// @}

  const automaton::MatchAutomaton& matcher_automaton() const {
    return *automaton_;
  }
  const std::string& pattern_text(uint32_t id) const {
    return pattern_texts_[id];
  }
  size_t num_patterns() const { return pattern_texts_.size(); }
  size_t min_support() const { return min_support_; }

 private:
  std::vector<CompiledTokenSub> token_subs_;
  std::vector<CompiledPhrase> strip_phrases_;
  std::vector<CompiledPhrase> fillers_;
  std::vector<CompiledPhrase> openers_;
  std::vector<CompiledPhrase> strip_tokens_;
  std::vector<std::string> markers_;
  std::vector<std::string> closings_;
  std::vector<std::string> context_exemplars_;
  bool capitalize_ = false;
  bool remove_doubled_ = false;
  bool reflow_ = false;
  double closing_rate_ = 0.0;
  double context_add_rate_ = 0.0;
  double rewrite_overlap_threshold_ = -1.0;
  double mean_target_response_words_ = 0.0;
  size_t expansion_budget_ = 0;
  size_t min_support_ = 0;
  std::vector<std::string> pattern_texts_;
  std::unique_ptr<const automaton::MatchAutomaton> automaton_;
};

/// \brief Per-text match oracle over a CompiledRuleSet.
///
/// Construct one per instruction/response. While the text is unmutated the
/// matcher's answers are exact and come from the fingerprint prefilter
/// plus (lazily, at most once) a single automaton pass — zero per-rule
/// string scans. The apply loop must report every edit via
/// NoteReplacement/NoteErasure; once mutated, the matcher degrades safely:
/// a pattern whose character classes cannot all occur in the mutated text
/// (original classes ∪ classes of inserted strings — erasure and
/// rearrangement mint no new classes) is still rejected in O(1), and
/// anything else falls back to a direct string probe on the current text.
/// Either way the answers equal what strings::Contains / find / StartsWith
/// would say, which is the byte-identity contract.
class RuleMatcher {
 public:
  /// \p rules must outlive the matcher. \p original is fingerprinted here
  /// but not retained.
  RuleMatcher(const CompiledRuleSet& rules, const std::string& original);

  /// Equivalent of strings::Contains(current, pattern).
  bool Contains(uint32_t pattern, const std::string& current);

  /// Equivalent of current.find(pattern) — automaton::kNotFound for npos.
  size_t FirstBegin(uint32_t pattern, const std::string& current);

  /// Equivalent of strings::StartsWith(current, pattern).
  bool StartsWith(uint32_t pattern, const std::string& current);

  /// Report an edit that inserted \p inserted (ReplaceAll's `to`, a
  /// subject, ...): its character classes join the reachable set.
  void NoteReplacement(const std::string& inserted);

  /// Report an edit that only removed or rearranged existing characters
  /// (erase, Trim, CollapseWhitespace, strip-to-empty ReplaceAll).
  void NoteErasure() { mutated_ = true; }

  /// Probes answered by the O(1) fingerprint gate alone (no automaton or
  /// string work).
  size_t prefilter_rejected() const { return prefilter_rejected_; }

 private:
  void EnsureScanned(const std::string& current);

  const CompiledRuleSet& rules_;
  automaton::ClassFingerprint original_fp_;
  /// Classes that could occur anywhere in the current text: the original's
  /// plus every inserted string's.
  uint64_t reachable_mask_ = 0;
  bool mutated_ = false;
  bool scanned_ = false;
  std::vector<size_t> first_begin_;
  size_t prefilter_rejected_ = 0;
};

/// @}

}  // namespace lm
}  // namespace coachlm

#endif  // COACHLM_LM_RULE_COMPILE_H_
