#ifndef COACHLM_LM_RULE_STORE_H_
#define COACHLM_LM_RULE_STORE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"

namespace coachlm {
namespace lm {

/// \brief The parameters CoachLM learns during coach instruction tuning.
///
/// This is the "θ_c − θ" of Eq. (1): everything the model knows about *how
/// experts revise*, estimated purely from expert (x, x_r) text pairs. The
/// store is serializable — saving it to disk is the analogue of a LoRA
/// checkpoint.
///
/// Every entry carries a support count; inference applies a rule only when
/// its support clears a threshold, so low-support noise from near-identity
/// training pairs (the high-α regime of Fig. 5(a)) dilutes behaviour
/// instead of dominating it.
struct RuleStore {
  /// Word-level substitutions observed in expert edits (misspelling ->
  /// correction, etc.): from -> (to -> support).
  std::map<std::string, std::map<std::string, size_t>> token_subs;

  /// Support for generic surface normalizations.
  size_t capitalize_support = 0;        ///< sentence starts re-capitalized
  size_t doubled_removal_support = 0;   ///< duplicated words removed
  size_t reflow_support = 0;            ///< list items moved onto own lines

  /// Stray machine markers experts deleted ("OUTPUT:").
  std::map<std::string, size_t> strip_tokens;

  /// Leading phrases experts removed from responses (mechanical openers).
  std::map<std::string, size_t> opener_removals;

  /// Final sentences experts appended repeatedly (warm closings).
  std::map<std::string, size_t> closings;

  /// Leading 2-3 word prefixes of appended sentences ("For example ,").
  std::map<std::string, size_t> markers;

  /// Sentences experts appended to *instructions* (context scaffolds).
  std::map<std::string, size_t> context_exemplars;

  /// Instruction phrases experts deleted (infeasible clauses).
  std::map<std::string, size_t> strip_phrases;

  /// Short instruction phrases replaced with varying content (vague
  /// fillers -> concrete subject): phrase -> set of observed replacements.
  std::map<std::string, std::set<std::string>> filler_replacements;

  // --- Aggregate alignment statistics ---
  /// Number of training pairs consumed.
  size_t train_pairs = 0;
  /// Mean number of new content sentences experts appended per response.
  double mean_appended_sentences = 0.0;
  /// Mean word count of expert-revised responses.
  double mean_target_response_words = 0.0;
  /// Fraction of training pairs whose revision added a warm closing.
  double closing_rate = 0.0;
  /// Fraction whose instruction gained a context sentence.
  double context_add_rate = 0.0;
  /// Fraction whose response was rewritten wholesale (low overlap).
  double rewrite_rate = 0.0;
  /// Learned rewrite policy: experts rewrote responses whose lexical
  /// overlap with the instruction fell below this threshold (midpoint of
  /// the two class means, estimated from training pairs). Negative when
  /// no rewrite was ever observed.
  double rewrite_overlap_threshold = -1.0;

  /// True when nothing was learned (α = 0 / untrained backbone).
  bool empty() const { return train_pairs == 0; }

  /// Best substitution for \p from with support >= \p min_support, or an
  /// empty string.
  std::string BestSubstitution(const std::string& from,
                               size_t min_support) const;

  /// Highest-support entry of a phrase table (empty when none clears
  /// \p min_support).
  static std::string BestPhrase(const std::map<std::string, size_t>& table,
                                size_t min_support);

  /// Phrases from \p table with support >= \p min_support, by support desc.
  static std::vector<std::string> PhrasesAbove(
      const std::map<std::string, size_t>& table, size_t min_support);

  /// Serializes the full store (a "checkpoint").
  json::Value ToJson() const;

  /// Restores a store from ToJson() output.
  static Result<RuleStore> FromJson(const json::Value& value);
};

}  // namespace lm
}  // namespace coachlm

#endif  // COACHLM_LM_RULE_STORE_H_
