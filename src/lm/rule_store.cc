#include "lm/rule_store.h"

#include <algorithm>

namespace coachlm {
namespace lm {
namespace {

json::Value TableToJson(const std::map<std::string, size_t>& table) {
  json::Object obj;
  for (const auto& [phrase, support] : table) {
    obj[phrase] = json::Value(static_cast<int64_t>(support));
  }
  return json::Value(std::move(obj));
}

std::map<std::string, size_t> TableFromJson(const json::Value& value) {
  std::map<std::string, size_t> table;
  for (const auto& [phrase, support] : value.AsObject()) {
    table[phrase] = static_cast<size_t>(support.AsInt());
  }
  return table;
}

}  // namespace

// Tie-break contract for every table accessor below: higher support wins,
// and equal-support phrases resolve to the lexicographically smaller one.
// The tables are std::map (lexicographic iteration), so first-max scans and
// stable sorts already produce that order — the explicit comparators make
// the contract hold even if the container ever changes, keeping serialized
// checkpoints and compiled rule tables byte-stable across platforms.

std::string RuleStore::BestSubstitution(const std::string& from,
                                        size_t min_support) const {
  auto it = token_subs.find(from);
  if (it == token_subs.end()) return "";
  std::string best;
  size_t best_support = 0;
  for (const auto& [to, support] : it->second) {
    if (support > best_support ||
        (support == best_support && best_support > 0 && to < best)) {
      best_support = support;
      best = to;
    }
  }
  return best_support >= min_support ? best : "";
}

std::string RuleStore::BestPhrase(const std::map<std::string, size_t>& table,
                                  size_t min_support) {
  std::string best;
  size_t best_support = 0;
  for (const auto& [phrase, support] : table) {
    if (support > best_support ||
        (support == best_support && best_support > 0 && phrase < best)) {
      best_support = support;
      best = phrase;
    }
  }
  return best_support >= min_support ? best : "";
}

std::vector<std::string> RuleStore::PhrasesAbove(
    const std::map<std::string, size_t>& table, size_t min_support) {
  std::vector<std::pair<std::string, size_t>> entries;
  for (const auto& [phrase, support] : table) {
    if (support >= min_support) entries.emplace_back(phrase, support);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<std::string> phrases;
  phrases.reserve(entries.size());
  for (auto& [phrase, support] : entries) phrases.push_back(phrase);
  return phrases;
}

json::Value RuleStore::ToJson() const {
  json::Object obj;
  json::Object subs;
  for (const auto& [from, targets] : token_subs) {
    subs[from] = TableToJson(targets);
  }
  obj["token_subs"] = json::Value(std::move(subs));
  obj["capitalize_support"] = json::Value(static_cast<int64_t>(capitalize_support));
  obj["doubled_removal_support"] =
      json::Value(static_cast<int64_t>(doubled_removal_support));
  obj["reflow_support"] = json::Value(static_cast<int64_t>(reflow_support));
  obj["strip_tokens"] = TableToJson(strip_tokens);
  obj["opener_removals"] = TableToJson(opener_removals);
  obj["closings"] = TableToJson(closings);
  obj["markers"] = TableToJson(markers);
  obj["context_exemplars"] = TableToJson(context_exemplars);
  obj["strip_phrases"] = TableToJson(strip_phrases);
  json::Object fillers;
  for (const auto& [phrase, replacements] : filler_replacements) {
    json::Array list;
    for (const std::string& r : replacements) list.push_back(json::Value(r));
    fillers[phrase] = json::Value(std::move(list));
  }
  obj["filler_replacements"] = json::Value(std::move(fillers));
  obj["train_pairs"] = json::Value(static_cast<int64_t>(train_pairs));
  obj["mean_appended_sentences"] = json::Value(mean_appended_sentences);
  obj["mean_target_response_words"] = json::Value(mean_target_response_words);
  obj["closing_rate"] = json::Value(closing_rate);
  obj["context_add_rate"] = json::Value(context_add_rate);
  obj["rewrite_rate"] = json::Value(rewrite_rate);
  obj["rewrite_overlap_threshold"] = json::Value(rewrite_overlap_threshold);
  return json::Value(std::move(obj));
}

Result<RuleStore> RuleStore::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("rule store checkpoint must be an object");
  }
  RuleStore store;
  for (const auto& [from, targets] : value.At("token_subs").AsObject()) {
    store.token_subs[from] = TableFromJson(targets);
  }
  store.capitalize_support =
      static_cast<size_t>(value.At("capitalize_support").AsInt());
  store.doubled_removal_support =
      static_cast<size_t>(value.At("doubled_removal_support").AsInt());
  store.reflow_support = static_cast<size_t>(value.At("reflow_support").AsInt());
  store.strip_tokens = TableFromJson(value.At("strip_tokens"));
  store.opener_removals = TableFromJson(value.At("opener_removals"));
  store.closings = TableFromJson(value.At("closings"));
  store.markers = TableFromJson(value.At("markers"));
  store.context_exemplars = TableFromJson(value.At("context_exemplars"));
  store.strip_phrases = TableFromJson(value.At("strip_phrases"));
  for (const auto& [phrase, list] : value.At("filler_replacements").AsObject()) {
    for (const json::Value& r : list.AsArray()) {
      store.filler_replacements[phrase].insert(r.AsString());
    }
  }
  store.train_pairs = static_cast<size_t>(value.At("train_pairs").AsInt());
  store.mean_appended_sentences =
      value.At("mean_appended_sentences").AsNumber();
  store.mean_target_response_words =
      value.At("mean_target_response_words").AsNumber();
  store.closing_rate = value.At("closing_rate").AsNumber();
  store.context_add_rate = value.At("context_add_rate").AsNumber();
  store.rewrite_rate = value.At("rewrite_rate").AsNumber();
  store.rewrite_overlap_threshold =
      value.At("rewrite_overlap_threshold").AsNumber();
  return store;
}

}  // namespace lm
}  // namespace coachlm
