#ifndef COACHLM_LM_BACKBONE_H_
#define COACHLM_LM_BACKBONE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "text/ngram_lm.h"

namespace coachlm {
namespace lm {

/// \brief Capability profile of a backbone LLM (Section III-E).
///
/// In the paper CoachLM is LoRA-tuned from LLaMA / ChatGLM / ChatGLM2; the
/// backbone contributes pre-trained knowledge and generation fluency, while
/// coach tuning contributes alignment with the expert revision behaviour.
/// The profile models exactly those two contributions:
///  - `knowledge_coverage`: the fraction of world knowledge (the topic and
///    code banks) retained in the backbone's pre-training memory;
///  - `fluency_noise`: the probability that a generated sentence carries a
///    language slip (weaker backbones write worse text);
///  - `invalid_output_rate`: the chance an inference degenerates into an
///    invalid output (handled by the post-processor, Section III-B1).
struct BackboneProfile {
  std::string name;
  double knowledge_coverage = 0.8;
  double fluency_noise = 0.05;
  double invalid_output_rate = 0.013;
  /// Seed offsetting which memory subset this backbone retained.
  uint64_t pretrain_seed = 7;
};

/// The paper's three open-source backbones (Table XI).
BackboneProfile Llama7B();
BackboneProfile ChatGlm6B();
BackboneProfile ChatGlm26B();

/// \brief One "document" of pre-training memory: the sentences retained
/// about a subject plus the association key (all content words that
/// co-occurred with the subject during pre-training).
struct MemoryDoc {
  std::vector<std::string> sentences;
  /// Lower-cased content words of the whole source document, weighted by
  /// length (longer words are rarer and more discriminative).
  std::vector<std::string> key_words;
};

/// \brief A backbone LLM: associative pre-training memory plus fluency.
///
/// The memory is a per-subject document store built from the
/// world-knowledge banks, with each document's sentences subsampled at
/// `knowledge_coverage`. Retrieval is associative: a query activates the
/// document whose key best covers the query's content words, standing in
/// for conditional generation of topical content (the model "remembers"
/// what co-occurred with the queried subject during pre-training). The
/// n-gram LM trained on the same memory provides fluency scoring.
class BackboneModel {
 public:
  explicit BackboneModel(BackboneProfile profile);

  /// Length-weighted fraction of \p text's content words covered by doc
  /// \p doc_index's association key. In [0, 1].
  double DocScore(size_t doc_index, const std::string& text) const;

  /// DocScore plus match diagnostics: how many content words matched and
  /// the longest match (discriminative single words like a topic name are
  /// long; incidental matches like "show" are short).
  double DocScoreDetailed(size_t doc_index, const std::string& text,
                          size_t* match_count, size_t* longest_match) const;

  /// DocScoreDetailed against a pre-tokenized query. The retrieval loops
  /// score one query against *every* document, so they tokenize once with
  /// similarity::ContentWords and reuse the set across docs — scoring the
  /// same set object visits words in the same order as the string overload,
  /// keeping the floating-point sums (and therefore every downstream byte)
  /// identical.
  double DocScoreDetailed(size_t doc_index,
                          const std::unordered_set<std::string>& words,
                          size_t* match_count, size_t* longest_match) const;

  /// Retrieves up to \p max_sentences unused sentences from the document
  /// best matching \p context (skipping sentences already in \p existing
  /// or \p context). Returns nothing when no document clears the
  /// activation threshold — the model simply lacks the knowledge.
  std::vector<std::string> RetrieveRelevant(const std::string& context,
                                            const std::string& existing,
                                            size_t max_sentences) const;

  /// Associative relatedness of two texts: the strongest document that
  /// both texts activate, max_i min(score_i(a), score_i(b)). High when a
  /// question and an answer are about the same remembered subject.
  double TopicalAgreement(const std::string& a, const std::string& b) const;

  /// Applies the backbone's fluency noise to a sentence: with probability
  /// `fluency_noise` a language slip is introduced.
  std::string ApplyFluencyNoise(const std::string& sentence, Rng* rng) const;

  /// True when this inference degenerates (invalid output).
  bool DegeneratesThisCall(Rng* rng) const;

  const BackboneProfile& profile() const { return profile_; }
  const NgramLm& fluency_lm() const { return fluency_lm_; }
  size_t num_docs() const { return docs_.size(); }

 private:
  BackboneProfile profile_;
  std::vector<MemoryDoc> docs_;
  NgramLm fluency_lm_;
};

}  // namespace lm
}  // namespace coachlm

#endif  // COACHLM_LM_BACKBONE_H_
