#ifndef COACHLM_LM_PAIR_TEXT_H_
#define COACHLM_LM_PAIR_TEXT_H_

#include <string>

#include "common/result.h"
#include "data/instruction_pair.h"

namespace coachlm {
namespace lm {

/// \brief The revision prompt of Fig. 3, verbatim from the paper.
inline constexpr char kRevisionPrompt[] =
    "Improve the following instruction, input and response pair to be more "
    "specific, detailed with more logical steps and grammarly corrected.";

/// \brief Serializes an instruction pair into the flat text form embedded
/// in coach-tuning samples ("Instruction: ...\nInput: ...\nResponse: ...").
///
/// CoachLM exchanges instruction pairs as text, exactly as the real model
/// does: the coach-tuning INSTRUCTION contains the serialized original pair
/// and the RESPONSE contains the serialized revised pair.
std::string SerializePair(const InstructionPair& pair);

/// \brief Parses a serialized pair back into its fields. Fails with
/// ParseError when the "Instruction:"/"Response:" section markers are
/// missing — the condition that triggers the post-processor's
/// replace-with-original path (Section III-B1).
Result<InstructionPair> DeserializePair(const std::string& text);

/// \brief Builds the coach-tuning sample x_c of Fig. 3 from (x, x_r).
InstructionPair MakeCoachSample(const InstructionPair& original,
                                const InstructionPair& revised);

}  // namespace lm
}  // namespace coachlm

#endif  // COACHLM_LM_PAIR_TEXT_H_
