#ifndef COACHLM_LM_RULE_EXTRACTOR_H_
#define COACHLM_LM_RULE_EXTRACTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "data/revision_record.h"
#include "lm/rule_store.h"

namespace coachlm {
namespace lm {

/// \brief Layout-aware word tokenization: newlines become the reserved
/// token so list/layout edits survive alignment.
std::vector<std::string> TokenizeWithLayout(const std::string& text);

/// The reserved newline token (alphanumeric, never produced by the corpus).
inline constexpr char kLayoutNewline[] = "xxNLxx";

/// \brief True when a sentence reads as a warm closing line rather than
/// topical content. Recognizing tone is backbone pre-training competence
/// (like spelling); coach tuning decides *when* closings are added, this
/// predicate only tells appended closings apart from appended facts.
bool LooksLikeClosing(const std::string& sentence);

/// \brief Length of the robotic-boilerplate prefix of \p text (0 when the
/// text does not open mechanically). Like LooksLikeClosing, tone
/// recognition is backbone competence; coach tuning (the evidence that
/// experts consistently produce warm responses) decides whether the model
/// acts on it.
size_t MechanicalOpenerLength(const std::string& text);

/// \brief Learns revision rules from expert (x, x_r) pairs.
///
/// This is the statistical core of coach instruction tuning: each record's
/// instruction and response sides are aligned at word level, the edit
/// script is segmented into hunks, and each hunk is classified into a typed
/// rule that accumulates support in the RuleStore. Aggregate statistics
/// (expansion rate, closing rate, target length) are estimated over the
/// whole training set — which is exactly why near-identity training pairs
/// dilute the learned aggressiveness (the α > 0.3 regime of Fig. 5(a)).
class RuleExtractor {
 public:
  /// Instruction/response relatedness feature used to learn the rewrite
  /// policy. The trainer injects the backbone's associative relatedness so
  /// training-time and inference-time features match; the default is plain
  /// lexical overlap.
  using RelatednessFn = std::function<double(const InstructionPair&)>;

  explicit RuleExtractor(RelatednessFn relatedness = {});

  /// Consumes one expert revision record.
  void Consume(const RevisionRecord& record);

  /// Finalizes aggregate statistics and returns the learned store.
  RuleStore Finalize() const;

  /// Number of records consumed so far.
  size_t consumed() const { return consumed_; }

 private:
  void LearnInstructionSide(const RevisionRecord& record);
  void LearnResponseSide(const RevisionRecord& record);

  RelatednessFn relatedness_;
  RuleStore store_;
  size_t consumed_ = 0;
  size_t total_appended_sentences_ = 0;
  size_t closings_added_ = 0;
  size_t contexts_added_ = 0;
  size_t rewrites_ = 0;
  double total_target_words_ = 0.0;
  /// Rewrite-policy evidence: instruction/response overlap of originals
  /// that experts rewrote vs merely patched.
  double rewritten_overlap_sum_ = 0.0;
  double patched_overlap_sum_ = 0.0;
  size_t patched_count_ = 0;
};

}  // namespace lm
}  // namespace coachlm

#endif  // COACHLM_LM_RULE_EXTRACTOR_H_
