#ifndef COACHLM_JSON_JSONL_H_
#define COACHLM_JSON_JSONL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"

namespace coachlm {
namespace json {

/// \brief Reads a whole file into a string.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

/// \brief Reads a whole file into a string, rejecting files larger than
/// \p max_bytes with kResourceExhausted *before* buffering any content —
/// the size is checked from the open stream, so a multi-GB artifact never
/// reaches memory.
[[nodiscard]] Result<std::string> ReadFileLimited(const std::string& path,
                                    size_t max_bytes);

/// \brief Writes \p content to \p path, replacing any existing file.
[[nodiscard]] Status WriteFile(const std::string& path, const std::string& content);

/// \brief Parses a JSON-Lines document (one JSON value per non-empty line).
///
/// When \p skip_invalid is true, malformed lines are dropped and counted in
/// \p num_invalid (may be null); otherwise the first malformed line fails
/// the whole parse. The tolerant mode mirrors the platform's handling of
/// noisy production logs (Section IV-A).
///
/// A malformed *final* line that is missing its newline terminator is a
/// crash artifact (a writer died mid-append), not corruption: strict mode
/// reports it with its byte offset so callers can recover the intact
/// prefix via ParseLinesRecoverable instead of discarding the whole file.
/// Every line is parsed under \p limits; a line longer than
/// limits.max_record_bytes is rejected (kResourceExhausted) without being
/// parsed at all. In strict mode the wrapping "line N:" status preserves
/// the underlying code (kResourceExhausted / kOutOfRange /
/// kInvalidArgument / kParseError) so quarantine records stay typed.
[[nodiscard]] Result<std::vector<Value>> ParseLines(const std::string& text,
                                      const ParseLimits& limits,
                                      bool skip_invalid = false,
                                      size_t* num_invalid = nullptr);

/// \brief ParseLines under the process-wide ParseLimits::Default().
[[nodiscard]] Result<std::vector<Value>> ParseLines(const std::string& text,
                                      bool skip_invalid = false,
                                      size_t* num_invalid = nullptr);

/// \brief Detail channel of ParseLinesRecoverable.
struct ParseLinesInfo {
  /// Byte offset where a torn (unterminated, unparseable) final line
  /// begins; std::string::npos when the document ends cleanly.
  size_t truncated_offset = static_cast<size_t>(-1);

  bool truncated() const {
    return truncated_offset != static_cast<size_t>(-1);
  }
};

/// \brief Like strict ParseLines, but treats a torn final line — the
/// signature of a writer killed mid-append — as a recoverable condition:
/// the values of every complete line are returned and \p info (may be
/// null) reports the byte offset where the torn tail begins, so a resuming
/// writer can truncate the file there and continue. Malformed lines that
/// *are* newline-terminated still fail the parse: those are corruption,
/// not a crash artifact.
[[nodiscard]] Result<std::vector<Value>> ParseLinesRecoverable(const std::string& text,
                                                 ParseLinesInfo* info);

/// \brief ParseLinesRecoverable under explicit \p limits.
[[nodiscard]] Result<std::vector<Value>> ParseLinesRecoverable(const std::string& text,
                                                 const ParseLimits& limits,
                                                 ParseLinesInfo* info);

/// \brief Loads and parses a JSONL file under the process-wide limits:
/// the file itself is size-capped by max_input_bytes (via
/// ReadFileLimited) and each line by max_record_bytes.
[[nodiscard]] Result<std::vector<Value>> LoadJsonl(const std::string& path,
                                     bool skip_invalid = false,
                                     size_t* num_invalid = nullptr);

/// \brief Loads a JSONL file tolerating a torn final line (see
/// ParseLinesRecoverable).
[[nodiscard]] Result<std::vector<Value>> LoadJsonlRecoverable(const std::string& path,
                                                ParseLinesInfo* info);

/// \brief Serializes values one-per-line and writes them to \p path.
[[nodiscard]] Status SaveJsonl(const std::string& path, const std::vector<Value>& values);

}  // namespace json
}  // namespace coachlm

#endif  // COACHLM_JSON_JSONL_H_
