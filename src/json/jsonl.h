#ifndef COACHLM_JSON_JSONL_H_
#define COACHLM_JSON_JSONL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"

namespace coachlm {
namespace json {

/// \brief Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// \brief Writes \p content to \p path, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& content);

/// \brief Parses a JSON-Lines document (one JSON value per non-empty line).
///
/// When \p skip_invalid is true, malformed lines are dropped and counted in
/// \p num_invalid (may be null); otherwise the first malformed line fails
/// the whole parse. The tolerant mode mirrors the platform's handling of
/// noisy production logs (Section IV-A).
Result<std::vector<Value>> ParseLines(const std::string& text,
                                      bool skip_invalid = false,
                                      size_t* num_invalid = nullptr);

/// \brief Loads and parses a JSONL file.
Result<std::vector<Value>> LoadJsonl(const std::string& path,
                                     bool skip_invalid = false,
                                     size_t* num_invalid = nullptr);

/// \brief Serializes values one-per-line and writes them to \p path.
Status SaveJsonl(const std::string& path, const std::vector<Value>& values);

}  // namespace json
}  // namespace coachlm

#endif  // COACHLM_JSON_JSONL_H_
