#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coachlm {
namespace json {

namespace {
const std::string kEmptyString;
const Array kEmptyArray;
const Object kEmptyObject;
const Value kNullValue;
}  // namespace

Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

const std::string& Value::AsString() const {
  return is_string() ? string_ : kEmptyString;
}

const Array& Value::AsArray() const {
  return is_array() ? *array_ : kEmptyArray;
}

Array& Value::AsArray() {
  if (!is_array()) {
    type_ = Type::kArray;
    array_ = std::make_shared<Array>();
  }
  return *array_;
}

const Object& Value::AsObject() const {
  return is_object() ? *object_ : kEmptyObject;
}

Object& Value::AsObject() {
  if (!is_object()) {
    type_ = Type::kObject;
    object_ = std::make_shared<Object>();
  }
  return *object_;
}

const Value& Value::At(const std::string& key) const {
  if (!is_object()) return kNullValue;
  auto it = object_->find(key);
  if (it == object_->end()) return kNullValue;
  return it->second;
}

Result<std::string> Value::GetString(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_string()) {
    return Status::ParseError("missing or non-string field '" + key + "'");
  }
  return v.AsString();
}

Result<double> Value::GetNumber(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_number()) {
    return Status::ParseError("missing or non-number field '" + key + "'");
  }
  return v.AsNumber();
}

Result<bool> Value::GetBool(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_bool()) {
    return Status::ParseError("missing or non-bool field '" + key + "'");
  }
  return v.AsBool();
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[40];
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      *out += buf;
      break;
    }
    case Type::kString:
      *out += EscapeString(string_);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        *out += EscapeString(key);
        *out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {

/// Iterative JSON parser over a raw character range: nesting is an explicit
/// frame stack bounded by ParseLimits::max_depth, never the thread stack,
/// so a hostile nesting bomb is rejected by a limit check instead of
/// risking a stack overflow. Every rejection carries the byte offset.
class Parser {
 public:
  Parser(const char* begin, const char* end, const ParseLimits& limits)
      : p_(begin), end_(end), start_(begin), limits_(limits) {}

  Result<Value> ParseDocument() {
    if (static_cast<size_t>(end_ - start_) > limits_.max_input_bytes) {
      return Status::ResourceExhausted(
          "document of " + std::to_string(end_ - start_) +
          " bytes exceeds max_input_bytes=" +
          std::to_string(limits_.max_input_bytes));
    }
    SkipWs();
    Value v;
    COACHLM_RETURN_NOT_OK(ParseValueIterative(&v));
    SkipWs();
    if (p_ != end_) return Fail("trailing characters after document");
    return v;
  }

 private:
  /// One partially-built container on the explicit stack. Exactly one of
  /// array/object is in use, discriminated by is_object.
  struct Frame {
    bool is_object = false;
    Array array;
    Object object;
    /// Key awaiting its value (objects only).
    std::string key;
  };

  Status Fail(const std::string& why) const {
    return Status::ParseError(why + " at offset " +
                              std::to_string(consumed()));
  }

  Status FailWith(StatusCode code, const std::string& why) const {
    return Status(code, why + " at offset " + std::to_string(consumed()));
  }

  size_t consumed() const { return static_cast<size_t>(p_ - start_); }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  /// Budget check for each value the document materializes (scalars and
  /// containers alike): bounds total allocation even when every individual
  /// container is within its own limit.
  Status CountValue() {
    if (++total_values_ > limits_.max_total_values) {
      return FailWith(StatusCode::kResourceExhausted,
                      "document exceeds max_total_values=" +
                          std::to_string(limits_.max_total_values));
    }
    return Status::OK();
  }

  /// The driver loop. States alternate between "parse the next value" and
  /// "attach a completed value to the innermost open container"; opening a
  /// container pushes a frame, closing one pops it and completes a value.
  Status ParseValueIterative(Value* out) {
    std::vector<Frame> stack;
    Value value;
    bool completed = false;  // `value` holds a finished JSON value
    for (;;) {
      if (!completed) {
        SkipWs();
        if (p_ == end_) return Fail("unexpected end of input");
        const char c = *p_;
        if (c == '[' || c == '{') {
          if (stack.size() >= limits_.max_depth) {
            return FailWith(StatusCode::kResourceExhausted,
                            "nesting exceeds max_depth=" +
                                std::to_string(limits_.max_depth));
          }
          COACHLM_RETURN_NOT_OK(CountValue());
          ++p_;
          Frame frame;
          frame.is_object = (c == '{');
          SkipWs();
          if (frame.is_object) {
            if (p_ != end_ && *p_ == '}') {
              ++p_;
              value = Value(Object());
              completed = true;
              continue;
            }
            COACHLM_RETURN_NOT_OK(ParseMemberKey(&frame));
          } else if (p_ != end_ && *p_ == ']') {
            ++p_;
            value = Value(Array());
            completed = true;
            continue;
          }
          stack.push_back(std::move(frame));
          continue;
        }
        COACHLM_RETURN_NOT_OK(ParseScalar(&value));
        completed = true;
        continue;
      }
      // A value is complete: either it is the document, or it belongs to
      // the innermost open container.
      if (stack.empty()) {
        *out = std::move(value);
        return Status::OK();
      }
      Frame& top = stack.back();
      if (top.is_object) {
        if (top.object.size() >= limits_.max_object_members) {
          return FailWith(StatusCode::kResourceExhausted,
                          "object exceeds max_object_members=" +
                              std::to_string(limits_.max_object_members));
        }
        if (!limits_.allow_duplicate_keys &&
            top.object.count(top.key) > 0) {
          return Fail("duplicate object key '" + top.key + "'");
        }
        top.object[std::move(top.key)] = std::move(value);
      } else {
        if (top.array.size() >= limits_.max_array_elements) {
          return FailWith(StatusCode::kResourceExhausted,
                          "array exceeds max_array_elements=" +
                              std::to_string(limits_.max_array_elements));
        }
        top.array.push_back(std::move(value));
      }
      SkipWs();
      if (p_ == end_) {
        return Fail(top.is_object ? "unterminated object"
                                  : "unterminated array");
      }
      if (*p_ == ',') {
        ++p_;
        if (top.is_object) COACHLM_RETURN_NOT_OK(ParseMemberKey(&top));
        completed = false;
        continue;
      }
      if (*p_ == (top.is_object ? '}' : ']')) {
        ++p_;
        value = top.is_object ? Value(std::move(top.object))
                              : Value(std::move(top.array));
        stack.pop_back();
        continue;  // completed stays true: attach to the next frame down
      }
      return Fail(top.is_object ? "expected ',' or '}'"
                                : "expected ',' or ']'");
    }
  }

  /// Reads `"key" :` into \p frame (comma already consumed).
  Status ParseMemberKey(Frame* frame) {
    SkipWs();
    if (p_ == end_ || *p_ != '"') return Fail("expected object key");
    COACHLM_RETURN_NOT_OK(ParseString(&frame->key));
    SkipWs();
    if (p_ == end_ || *p_ != ':') return Fail("expected ':'");
    ++p_;
    return Status::OK();
  }

  Status ParseScalar(Value* out) {
    COACHLM_RETURN_NOT_OK(CountValue());
    switch (*p_) {
      case '"': {
        std::string s;
        COACHLM_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit, Value value, Value* out) {
    for (const char* c = lit; *c; ++c, ++p_) {
      if (p_ == end_ || *p_ != *c) return Fail("invalid literal");
    }
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const char* begin = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool any = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      any = true;
      ++p_;
    }
    if (!any) return Fail("invalid number");
    std::string text(begin, p_);
    char* parse_end = nullptr;
    const double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return Fail("invalid number");
    if (!limits_.allow_nonfinite_numbers && !std::isfinite(d)) {
      return FailWith(StatusCode::kOutOfRange,
                      "number '" + text + "' overflows double");
    }
    *out = Value(d);
    return Status::OK();
  }

  Status AppendChecked(std::string* out, const char* bytes, size_t n) {
    if (out->size() + n > limits_.max_string_bytes) {
      return FailWith(StatusCode::kResourceExhausted,
                      "string exceeds max_string_bytes=" +
                          std::to_string(limits_.max_string_bytes));
    }
    out->append(bytes, n);
    return Status::OK();
  }

  Status AppendCheckedChar(std::string* out, char c) {
    return AppendChecked(out, &c, 1);
  }

  /// Length of the valid UTF-8 sequence starting at \p p (whose lead byte
  /// is >= 0x80), or 0 when the bytes are not well-formed UTF-8 (torn
  /// sequence, overlong encoding, surrogate, or > U+10FFFF).
  static size_t Utf8SequenceLength(const char* p, const char* end) {
    const auto b = [&](size_t i) {
      return static_cast<unsigned char>(p[i]);
    };
    const unsigned char lead = b(0);
    const auto cont = [&](size_t i) { return (b(i) & 0xC0) == 0x80; };
    if (lead < 0xC2) return 0;  // continuation byte or overlong C0/C1 lead
    if (lead < 0xE0) {
      return (end - p >= 2 && cont(1)) ? 2 : 0;
    }
    if (lead < 0xF0) {
      if (end - p < 3 || !cont(1) || !cont(2)) return 0;
      if (lead == 0xE0 && b(1) < 0xA0) return 0;               // overlong
      if (lead == 0xED && b(1) >= 0xA0) return 0;              // surrogate
      return 3;
    }
    if (lead < 0xF5) {
      if (end - p < 4 || !cont(1) || !cont(2) || !cont(3)) return 0;
      if (lead == 0xF0 && b(1) < 0x90) return 0;               // overlong
      if (lead == 0xF4 && b(1) >= 0x90) return 0;              // > U+10FFFF
      return 4;
    }
    return 0;
  }

  /// Reads the 4 hex digits after a \u escape's 'u' (p_ is on the 'u').
  Status ReadHex4(unsigned* code) {
    if (end_ - p_ < 5) return Fail("truncated \\u escape");
    *code = 0;
    for (int i = 1; i <= 4; ++i) {
      const char h = p_[i];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    p_ += 4;
    return Status::OK();
  }

  Status AppendCodePoint(unsigned code, std::string* out) {
    char buf[4];
    size_t n;
    if (code < 0x80) {
      buf[0] = static_cast<char>(code);
      n = 1;
    } else if (code < 0x800) {
      buf[0] = static_cast<char>(0xC0 | (code >> 6));
      buf[1] = static_cast<char>(0x80 | (code & 0x3F));
      n = 2;
    } else if (code < 0x10000) {
      buf[0] = static_cast<char>(0xE0 | (code >> 12));
      buf[1] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      buf[2] = static_cast<char>(0x80 | (code & 0x3F));
      n = 3;
    } else {
      buf[0] = static_cast<char>(0xF0 | (code >> 18));
      buf[1] = static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      buf[2] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      buf[3] = static_cast<char>(0x80 | (code & 0x3F));
      n = 4;
    }
    return AppendChecked(out, buf, n);
  }

  Status AppendReplacementOrFail(std::string* out, const char* what) {
    switch (limits_.utf8_policy) {
      case Utf8Policy::kStrict:
        return Fail(std::string(what));
      case Utf8Policy::kReplace:
        return AppendChecked(out, "\xEF\xBF\xBD", 3);  // U+FFFD
      case Utf8Policy::kLenient:
        return Status::OK();  // caller appends the raw byte itself
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return Status::OK();
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case '"':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '"'));
            break;
          case '\\':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\\'));
            break;
          case '/':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '/'));
            break;
          case 'n':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\n'));
            break;
          case 't':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\t'));
            break;
          case 'r':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\r'));
            break;
          case 'b':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\b'));
            break;
          case 'f':
            COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, '\f'));
            break;
          case 'u': {
            unsigned code = 0;
            COACHLM_RETURN_NOT_OK(ReadHex4(&code));
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: must pair with a following \uDC00-\uDFFF
              // escape to name a supplementary-plane code point.
              if (end_ - p_ >= 3 && p_[1] == '\\' && p_[2] == 'u') {
                p_ += 2;
                unsigned low = 0;
                COACHLM_RETURN_NOT_OK(ReadHex4(&low));
                if (low < 0xDC00 || low > 0xDFFF) {
                  return Fail("unpaired surrogate escape");
                }
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              } else if (limits_.utf8_policy == Utf8Policy::kStrict) {
                return Fail("unpaired surrogate escape");
              } else {
                code = 0xFFFD;
              }
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              if (limits_.utf8_policy == Utf8Policy::kStrict) {
                return Fail("unpaired surrogate escape");
              }
              code = 0xFFFD;
            }
            if (code == 0 && !limits_.allow_embedded_nul) {
              return FailWith(StatusCode::kInvalidArgument,
                              "embedded NUL in string");
            }
            COACHLM_RETURN_NOT_OK(AppendCodePoint(code, out));
            break;
          }
          default:
            return Fail("invalid escape character");
        }
        ++p_;
      } else if (c < 0x20) {
        return Fail("unescaped control character in string");
      } else if (c < 0x80) {
        COACHLM_RETURN_NOT_OK(AppendCheckedChar(out, static_cast<char>(c)));
        ++p_;
      } else {
        const size_t len = Utf8SequenceLength(p_, end_);
        if (len > 0) {
          COACHLM_RETURN_NOT_OK(AppendChecked(out, p_, len));
          p_ += len;
        } else {
          COACHLM_RETURN_NOT_OK(
              AppendReplacementOrFail(out, "invalid UTF-8 sequence"));
          if (limits_.utf8_policy == Utf8Policy::kLenient) {
            COACHLM_RETURN_NOT_OK(
                AppendCheckedChar(out, static_cast<char>(c)));
          }
          ++p_;
        }
      }
    }
    return Fail("unterminated string");
  }

  const char* p_;
  const char* end_;
  const char* start_;
  const ParseLimits& limits_;
  size_t total_values_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text, const ParseLimits& limits) {
  Parser parser(text.data(), text.data() + text.size(), limits);
  return parser.ParseDocument();
}

Result<Value> Parse(const std::string& text) {
  return Parse(text, ParseLimits::Default());
}

}  // namespace json
}  // namespace coachlm
