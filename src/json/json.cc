#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coachlm {
namespace json {

namespace {
const std::string kEmptyString;
const Array kEmptyArray;
const Object kEmptyObject;
const Value kNullValue;
}  // namespace

Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

const std::string& Value::AsString() const {
  return is_string() ? string_ : kEmptyString;
}

const Array& Value::AsArray() const {
  return is_array() ? *array_ : kEmptyArray;
}

Array& Value::AsArray() {
  if (!is_array()) {
    type_ = Type::kArray;
    array_ = std::make_shared<Array>();
  }
  return *array_;
}

const Object& Value::AsObject() const {
  return is_object() ? *object_ : kEmptyObject;
}

Object& Value::AsObject() {
  if (!is_object()) {
    type_ = Type::kObject;
    object_ = std::make_shared<Object>();
  }
  return *object_;
}

const Value& Value::At(const std::string& key) const {
  if (!is_object()) return kNullValue;
  auto it = object_->find(key);
  if (it == object_->end()) return kNullValue;
  return it->second;
}

Result<std::string> Value::GetString(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_string()) {
    return Status::ParseError("missing or non-string field '" + key + "'");
  }
  return v.AsString();
}

Result<double> Value::GetNumber(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_number()) {
    return Status::ParseError("missing or non-number field '" + key + "'");
  }
  return v.AsNumber();
}

Result<bool> Value::GetBool(const std::string& key) const {
  const Value& v = At(key);
  if (!v.is_bool()) {
    return Status::ParseError("missing or non-bool field '" + key + "'");
  }
  return v.AsBool();
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[40];
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      *out += buf;
      break;
    }
    case Type::kString:
      *out += EscapeString(string_);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        *out += EscapeString(key);
        *out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a raw character range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  Result<Value> ParseDocument() {
    SkipWs();
    Value v;
    COACHLM_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (p_ != end_) return Fail("trailing characters after document");
    return v;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::ParseError(why + " at offset " +
                              std::to_string(offset_base_ + consumed()));
  }

  size_t consumed() const { return static_cast<size_t>(p_ - start_); }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > 256) return Fail("nesting too deep");
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        COACHLM_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit, Value value, Value* out) {
    for (const char* c = lit; *c; ++c, ++p_) {
      if (p_ == end_ || *p_ != *c) return Fail("invalid literal");
    }
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const char* begin = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool any = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      any = true;
      ++p_;
    }
    if (!any) return Fail("invalid number");
    std::string text(begin, p_);
    char* parse_end = nullptr;
    const double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return Fail("invalid number");
    *out = Value(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return Status::OK();
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (end_ - p_ < 5) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p_[i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("invalid \\u escape");
              }
            }
            p_ += 4;
            AppendUtf8(code, out);
            break;
          }
          default:
            return Fail("invalid escape character");
        }
        ++p_;
      } else if (c < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        *out += static_cast<char>(c);
        ++p_;
      }
    }
    return Fail("unterminated string");
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++p_;  // '['
    Array items;
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      *out = Value(std::move(items));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      Value v;
      COACHLM_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      items.push_back(std::move(v));
      SkipWs();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        *out = Value(std::move(items));
        return Status::OK();
      }
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++p_;  // '{'
    Object members;
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      *out = Value(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      COACHLM_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (p_ == end_ || *p_ != ':') return Fail("expected ':'");
      ++p_;
      SkipWs();
      Value v;
      COACHLM_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      members[std::move(key)] = std::move(v);
      SkipWs();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        *out = Value(std::move(members));
        return Status::OK();
      }
      return Fail("expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
  size_t offset_base_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace coachlm
