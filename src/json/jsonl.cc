#include "json/jsonl.h"

#include <fstream>
#include <sstream>

namespace coachlm {
namespace json {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on '" + path + "'");
  return buffer.str();
}

Result<std::string> ReadFileLimited(const std::string& path,
                                    size_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot size '" + path + "'");
  if (static_cast<unsigned long long>(size) > max_bytes) {
    return Status::ResourceExhausted(
        "'" + path + "' is " + std::to_string(size) +
        " bytes, over the max_input_bytes=" + std::to_string(max_bytes) +
        " budget");
  }
  std::string out(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(out.empty() ? nullptr : &out[0], size);
  if (in.bad() || in.gcount() != size) {
    return Status::IoError("read failure on '" + path + "'");
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

namespace {

enum class LineFailureMode { kStrict, kSkipInvalid, kRecoverTornTail };

Result<std::vector<Value>> ParseLinesImpl(const std::string& text,
                                          const ParseLimits& limits,
                                          LineFailureMode mode,
                                          size_t* num_invalid,
                                          ParseLinesInfo* info) {
  std::vector<Value> values;
  if (num_invalid != nullptr) *num_invalid = 0;
  if (info != nullptr) *info = ParseLinesInfo();
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t line_start = pos;
    size_t nl = text.find('\n', pos);
    // A line without its '\n' terminator is by construction the last one;
    // if it then fails to parse, it is a torn write, not corruption.
    const bool terminated = nl != std::string::npos;
    if (!terminated) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    // A line over the record budget is rejected without parsing it: the
    // line length alone is the violation.
    Result<Value> parsed =
        line.size() > limits.max_record_bytes
            ? Result<Value>(Status::ResourceExhausted(
                  "record of " + std::to_string(line.size()) +
                  " bytes exceeds max_record_bytes=" +
                  std::to_string(limits.max_record_bytes)))
            : Parse(line, limits);
    if (!parsed.ok()) {
      if (mode == LineFailureMode::kSkipInvalid) {
        if (num_invalid != nullptr) ++*num_invalid;
        continue;
      }
      if (!terminated) {
        if (mode == LineFailureMode::kRecoverTornTail) {
          if (info != nullptr) info->truncated_offset = line_start;
          return values;
        }
        return Status::ParseError(
            "truncated final line at byte offset " +
            std::to_string(line_start) +
            " (crash artifact; recoverable via ParseLinesRecoverable): " +
            parsed.status().message());
      }
      // Keep the underlying code (resource, range, argument, parse) so
      // quarantine records stay typed through the "line N:" wrapping.
      return Status(parsed.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        parsed.status().message());
    }
    values.push_back(std::move(parsed).ValueOrDie());
  }
  return values;
}

}  // namespace

Result<std::vector<Value>> ParseLines(const std::string& text,
                                      const ParseLimits& limits,
                                      bool skip_invalid, size_t* num_invalid) {
  return ParseLinesImpl(text, limits,
                        skip_invalid ? LineFailureMode::kSkipInvalid
                                     : LineFailureMode::kStrict,
                        num_invalid, nullptr);
}

Result<std::vector<Value>> ParseLines(const std::string& text,
                                      bool skip_invalid, size_t* num_invalid) {
  return ParseLines(text, ParseLimits::Default(), skip_invalid, num_invalid);
}

Result<std::vector<Value>> ParseLinesRecoverable(const std::string& text,
                                                 const ParseLimits& limits,
                                                 ParseLinesInfo* info) {
  return ParseLinesImpl(text, limits, LineFailureMode::kRecoverTornTail,
                        nullptr, info);
}

Result<std::vector<Value>> ParseLinesRecoverable(const std::string& text,
                                                 ParseLinesInfo* info) {
  return ParseLinesRecoverable(text, ParseLimits::Default(), info);
}

Result<std::vector<Value>> LoadJsonl(const std::string& path,
                                     bool skip_invalid, size_t* num_invalid) {
  const ParseLimits& limits = ParseLimits::Default();
  COACHLM_ASSIGN_OR_RETURN(std::string text,
                           ReadFileLimited(path, limits.max_input_bytes));
  return ParseLines(text, limits, skip_invalid, num_invalid);
}

Result<std::vector<Value>> LoadJsonlRecoverable(const std::string& path,
                                                ParseLinesInfo* info) {
  const ParseLimits& limits = ParseLimits::Default();
  COACHLM_ASSIGN_OR_RETURN(std::string text,
                           ReadFileLimited(path, limits.max_input_bytes));
  return ParseLinesRecoverable(text, limits, info);
}

Status SaveJsonl(const std::string& path, const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    out += v.Dump();
    out += '\n';
  }
  return WriteFile(path, out);
}

}  // namespace json
}  // namespace coachlm
