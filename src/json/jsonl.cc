#include "json/jsonl.h"

#include <fstream>
#include <sstream>

namespace coachlm {
namespace json {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on '" + path + "'");
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

Result<std::vector<Value>> ParseLines(const std::string& text,
                                      bool skip_invalid, size_t* num_invalid) {
  std::vector<Value> values;
  if (num_invalid != nullptr) *num_invalid = 0;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    Result<Value> parsed = Parse(line);
    if (!parsed.ok()) {
      if (skip_invalid) {
        if (num_invalid != nullptr) ++*num_invalid;
        continue;
      }
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                parsed.status().message());
    }
    values.push_back(std::move(parsed).ValueOrDie());
  }
  return values;
}

Result<std::vector<Value>> LoadJsonl(const std::string& path,
                                     bool skip_invalid, size_t* num_invalid) {
  COACHLM_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseLines(text, skip_invalid, num_invalid);
}

Status SaveJsonl(const std::string& path, const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    out += v.Dump();
    out += '\n';
  }
  return WriteFile(path, out);
}

}  // namespace json
}  // namespace coachlm
