#include "json/parse_limits.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/env.h"

namespace coachlm {
namespace json {
namespace {

Result<size_t> ParseSize(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || value[0] == '-') {
    return Status::InvalidArgument("parse limits: '" + key +
                                   "' must be a non-negative integer, got '" +
                                   value + "'");
  }
  return static_cast<size_t>(parsed);
}

Result<bool> ParseAllow(const std::string& key, const std::string& value) {
  if (value == "allow") return true;
  if (value == "reject") return false;
  return Status::InvalidArgument("parse limits: '" + key +
                                 "' must be allow|reject, got '" + value +
                                 "'");
}

ParseLimits* ProcessDefault() {
  static ParseLimits* limits = [] {
    auto* out = new ParseLimits();
    const std::string spec = GetEnvOr("COACHLM_PARSE_LIMITS", "");
    if (spec.empty()) return out;
    const Result<ParseLimits> parsed = ParseLimits::FromSpec(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "warning: ignoring COACHLM_PARSE_LIMITS: %s\n",
                   parsed.status().ToString().c_str());
      return out;
    }
    *out = *parsed;
    return out;
  }();
  return limits;
}

}  // namespace

const ParseLimits& ParseLimits::Default() { return *ProcessDefault(); }

void ParseLimits::SetProcessDefault(const ParseLimits& limits) {
  *ProcessDefault() = limits;
}

ParseLimits ParseLimits::Unlimited() {
  ParseLimits limits;
  const size_t unbounded = std::numeric_limits<size_t>::max();
  limits.max_input_bytes = unbounded;
  // Depth stays finite even in "unlimited" mode: the parser is iterative,
  // but each level still allocates a frame, so a true bomb must not be
  // able to exhaust memory through depth alone.
  limits.max_depth = 1u << 16;
  limits.max_string_bytes = unbounded;
  limits.max_array_elements = unbounded;
  limits.max_object_members = unbounded;
  limits.max_total_values = unbounded;
  limits.max_record_bytes = unbounded;
  limits.allow_embedded_nul = true;
  limits.allow_duplicate_keys = true;
  limits.allow_nonfinite_numbers = true;
  limits.utf8_policy = Utf8Policy::kLenient;
  return limits;
}

Result<ParseLimits> ParseLimits::FromSpec(const std::string& spec) {
  ParseLimits limits;
  if (spec.empty()) return limits;
  if (spec == "unlimited") return Unlimited();
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string token = spec.substr(pos, next - pos);
    pos = next + 1;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("parse limits: expected key=value, got '" +
                                     token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "max_input_bytes") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_input_bytes, ParseSize(key, value));
    } else if (key == "max_depth") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_depth, ParseSize(key, value));
    } else if (key == "max_string_bytes") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_string_bytes, ParseSize(key, value));
    } else if (key == "max_array_elements") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_array_elements,
                               ParseSize(key, value));
    } else if (key == "max_object_members") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_object_members,
                               ParseSize(key, value));
    } else if (key == "max_total_values") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_total_values, ParseSize(key, value));
    } else if (key == "max_record_bytes") {
      COACHLM_ASSIGN_OR_RETURN(limits.max_record_bytes, ParseSize(key, value));
    } else if (key == "nul") {
      COACHLM_ASSIGN_OR_RETURN(limits.allow_embedded_nul,
                               ParseAllow(key, value));
    } else if (key == "dup_keys") {
      COACHLM_ASSIGN_OR_RETURN(limits.allow_duplicate_keys,
                               ParseAllow(key, value));
    } else if (key == "nonfinite") {
      COACHLM_ASSIGN_OR_RETURN(limits.allow_nonfinite_numbers,
                               ParseAllow(key, value));
    } else if (key == "utf8") {
      if (value == "strict") limits.utf8_policy = Utf8Policy::kStrict;
      else if (value == "replace") limits.utf8_policy = Utf8Policy::kReplace;
      else if (value == "lenient") limits.utf8_policy = Utf8Policy::kLenient;
      else
        return Status::InvalidArgument(
            "parse limits: utf8 must be strict|replace|lenient, got '" +
            value + "'");
    } else {
      return Status::InvalidArgument("parse limits: unknown key '" + key +
                                     "'");
    }
  }
  return limits;
}

std::string ParseLimits::ToString() const {
  auto allow = [](bool b) { return b ? "allow" : "reject"; };
  std::string out =
      "max_input_bytes=" + std::to_string(max_input_bytes) +
      ",max_depth=" + std::to_string(max_depth) +
      ",max_string_bytes=" + std::to_string(max_string_bytes) +
      ",max_array_elements=" + std::to_string(max_array_elements) +
      ",max_object_members=" + std::to_string(max_object_members) +
      ",max_total_values=" + std::to_string(max_total_values) +
      ",max_record_bytes=" + std::to_string(max_record_bytes) +
      ",nul=" + allow(allow_embedded_nul) +
      ",dup_keys=" + allow(allow_duplicate_keys) +
      ",nonfinite=" + allow(allow_nonfinite_numbers) + ",utf8=";
  switch (utf8_policy) {
    case Utf8Policy::kStrict: out += "strict"; break;
    case Utf8Policy::kReplace: out += "replace"; break;
    case Utf8Policy::kLenient: out += "lenient"; break;
  }
  return out;
}

}  // namespace json
}  // namespace coachlm
