#ifndef COACHLM_JSON_JSON_H_
#define COACHLM_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "json/parse_limits.h"

namespace coachlm {
namespace json {

class Value;

/// JSON array type.
using Array = std::vector<Value>;
/// JSON object type; std::map keeps key order deterministic for diffing.
using Object = std::map<std::string, Value>;

/// \brief Discriminator for the JSON value kinds.
enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// \brief A dynamically-typed JSON value.
///
/// Instruction datasets are exchanged on disk in the Alpaca JSON format
/// (an array of {"instruction", "input", "output"} objects); this value
/// class plus Parse()/Dump() is the only serialization machinery the
/// repository depends on — no third-party JSON library.
class Value {
 public:
  /// Constructs null.
  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}      // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}         // NOLINT
  Value(int64_t i)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(size_t i)                                            // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s)                                        // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a);   // NOLINT
  Value(Object o);  // NOLINT

  /// Returns the value kind.
  Type type() const { return type_; }

  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// \name Unchecked accessors; calling with a mismatched type returns a
  /// default (false / 0 / empty). Use the typed Get* helpers on objects for
  /// checked access.
  /// @{
  bool AsBool() const { return is_bool() ? bool_ : false; }
  double AsNumber() const { return is_number() ? number_ : 0.0; }
  int64_t AsInt() const { return static_cast<int64_t>(AsNumber()); }
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();
  /// @}

  /// Looks up \p key in an object value; errors when not an object or the
  /// key is missing / has the wrong type.
  [[nodiscard]] Result<std::string> GetString(const std::string& key) const;
  [[nodiscard]] Result<double> GetNumber(const std::string& key) const;
  [[nodiscard]] Result<bool> GetBool(const std::string& key) const;

  /// Returns the member \p key or null when absent / not an object.
  const Value& At(const std::string& key) const;

  /// Serializes to a compact JSON string.
  std::string Dump() const;

  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// \brief Parses a JSON document under \p limits.
///
/// The parser is iterative (an explicit frame stack, no recursion), so a
/// nesting bomb is rejected by the depth limit before any stack-overflow
/// risk. Rejects trailing garbage, unterminated strings, invalid escapes,
/// and every ParseLimits violation — each with a typed Status carrying the
/// byte offset.
[[nodiscard]] Result<Value> Parse(const std::string& text, const ParseLimits& limits);

/// \brief Parses under the process-wide ParseLimits::Default().
[[nodiscard]] Result<Value> Parse(const std::string& text);

/// \brief Escapes a string into a JSON string literal (with quotes).
std::string EscapeString(const std::string& s);

}  // namespace json
}  // namespace coachlm

#endif  // COACHLM_JSON_JSON_H_
