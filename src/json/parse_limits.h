#ifndef COACHLM_JSON_PARSE_LIMITS_H_
#define COACHLM_JSON_PARSE_LIMITS_H_

#include <cstddef>
#include <string>

#include "common/result.h"

namespace coachlm {
namespace json {

/// \brief What to do with invalid UTF-8 byte sequences in string values.
enum class Utf8Policy {
  /// Reject the document (ParseError with the byte offset). The hardened
  /// default: torn multi-byte sequences in production logs are corruption.
  kStrict = 0,
  /// Substitute each invalid byte with U+FFFD and keep parsing.
  kReplace,
  /// Pass raw bytes through untouched (the legacy, pre-hardening behavior).
  kLenient,
};

/// \brief Resource and validity bounds enforced by json::Parse and the
/// jsonl line readers on untrusted input.
///
/// The platform ingests raw online traffic (Section IV), where degenerate
/// documents — nesting bombs, multi-GB lines, torn UTF-8, 1e999 — are
/// ordinary, not exceptional. Every bound here turns a potential stack
/// overflow / OOM / silent-truncation into a typed Status carrying the
/// byte offset, which the ingestion stages quarantine instead of crashing
/// on. Violations of size/count bounds return kResourceExhausted; value
/// policies (NUL, non-finite numbers) return kInvalidArgument /
/// kOutOfRange; malformed syntax stays kParseError.
struct ParseLimits {
  /// Whole-document byte budget (also enforced by ReadFileLimited before
  /// the bytes are ever pulled into memory).
  size_t max_input_bytes = 256u << 20;
  /// Maximum container nesting depth (the document root is depth 0, its
  /// elements depth 1, ...). Alpaca-format data is depth <= 3; anything
  /// near this bound is hostile.
  size_t max_depth = 32;
  /// Maximum decoded bytes of a single string value or object key.
  size_t max_string_bytes = 8u << 20;
  /// Maximum elements in one array.
  size_t max_array_elements = 1u << 20;
  /// Maximum members in one object.
  size_t max_object_members = 1u << 16;
  /// Maximum values in the whole document (scalars + containers): bounds
  /// total allocation even when every individual container is legal.
  size_t max_total_values = 8u << 20;
  /// Maximum bytes of a single JSONL record (one line). Also the cap the
  /// platform applies to one raw log record before parsing it.
  size_t max_record_bytes = 4u << 20;
  /// Reject strings containing U+0000 (reachable only via the u0000
  /// escape; raw NULs are already rejected as control characters).
  bool allow_embedded_nul = false;
  /// Reject objects that bind the same key twice instead of silently
  /// keeping one binding.
  bool allow_duplicate_keys = false;
  /// Reject numbers that overflow double (e.g. 1e999 -> inf) instead of
  /// materializing a non-finite value.
  bool allow_nonfinite_numbers = false;
  Utf8Policy utf8_policy = Utf8Policy::kStrict;

  /// The process-wide limits every default parse runs under: hardened
  /// defaults, overridable once via COACHLM_PARSE_LIMITS (a FromSpec
  /// string; a malformed spec warns and keeps the defaults) or
  /// SetProcessDefault (the CLI's --max-record-bytes / --max-json-depth).
  static const ParseLimits& Default();

  /// Replaces the process-wide defaults. Call before parsing starts (the
  /// CLI does this during flag handling); not synchronized with readers.
  static void SetProcessDefault(const ParseLimits& limits);

  /// Effectively unbounded limits with every legacy-compat policy
  /// (lenient UTF-8, NULs, duplicate keys, non-finite numbers allowed).
  /// For trusted in-process round-trips and tests only.
  static ParseLimits Unlimited();

  /// Parses a spec like
  ///   "max_depth=64,max_record_bytes=1048576,utf8=replace,nul=allow,
  ///    dup_keys=allow,nonfinite=allow"
  /// on top of the hardened defaults. Keys: max_input_bytes, max_depth,
  /// max_string_bytes, max_array_elements, max_object_members,
  /// max_total_values, max_record_bytes (sizes take plain byte counts);
  /// utf8=strict|replace|lenient; nul|dup_keys|nonfinite=allow|reject.
  /// "unlimited" as the whole spec yields Unlimited().
  [[nodiscard]] static Result<ParseLimits> FromSpec(const std::string& spec);

  /// Canonical spec string that FromSpec round-trips.
  std::string ToString() const;
};

}  // namespace json
}  // namespace coachlm

#endif  // COACHLM_JSON_PARSE_LIMITS_H_
