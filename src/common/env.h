#ifndef COACHLM_COMMON_ENV_H_
#define COACHLM_COMMON_ENV_H_

#include <cstddef>
#include <string>

namespace coachlm {

/// \brief Returns the global experiment scale factor in (0, 1].
///
/// Read once from the COACHLM_SCALE environment variable. The benchmark
/// harness multiplies corpus sizes (52k pairs, 6k expert sample, ...) by this
/// factor so the full experiment grid can be smoke-tested quickly; the
/// default of 1.0 reproduces paper scale. Invalid or out-of-range values
/// fall back to 1.0.
double ExperimentScale();

/// \brief Scales \p n by ExperimentScale(), never returning less than
/// \p floor (experiments need a minimum sample to be meaningful).
size_t Scaled(size_t n, size_t floor = 1);

/// \brief Reads an environment variable, returning \p fallback when unset.
std::string GetEnvOr(const std::string& name, const std::string& fallback);

}  // namespace coachlm

#endif  // COACHLM_COMMON_ENV_H_
