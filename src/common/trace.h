#ifndef COACHLM_COMMON_TRACE_H_
#define COACHLM_COMMON_TRACE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "json/json.h"

namespace coachlm {

/// \brief Stage/span tracer: where a run spent its wall time.
///
/// Spans are opened and closed *serially by the driver thread* at stage
/// boundaries (never inside ParallelFor bodies): nesting is tracked with an
/// explicit stack, so BeginSpan inside an open span records a child. All
/// timings read through an injectable Clock — the deterministic report mode
/// runs on a SteppingClock, making every duration a pure function of the
/// span structure, and tests assert timings exactly instead of
/// smoke-checking the wall clock.
class Trace {
 public:
  struct Span {
    std::string name;
    /// Index of the enclosing span in spans(), -1 for a root.
    int parent = -1;
    /// Microseconds since the trace epoch (the first BeginSpan).
    int64_t start_micros = 0;
    /// -1 while the span is still open.
    int64_t duration_micros = -1;
  };

  /// \p clock is not owned; nullptr = Clock::System().
  explicit Trace(Clock* clock = nullptr);

  /// Swaps the time source (tests; the deterministic report mode).
  void set_clock(Clock* clock);

  /// Opens a span as a child of the innermost open span; returns its id.
  int BeginSpan(const std::string& name);

  /// Closes span \p id (and any still-open descendants above it on the
  /// stack, so a stage that early-returns cannot corrupt its siblings).
  void EndSpan(int id);

  /// Snapshot of all spans in begin order.
  std::vector<Span> spans() const;

  /// Serializes spans in begin order:
  /// [{"name", "parent", "start_micros", "duration_micros"}, ...].
  /// Open spans are closed at the current clock reading first.
  json::Value ToJson() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  Clock* clock_;  // set in the ctor init list, hence not annotated
  int64_t epoch_micros_ COACHLM_GUARDED_BY(mu_) = 0;
  bool epoch_set_ COACHLM_GUARDED_BY(mu_) = false;
  std::vector<Span> spans_ COACHLM_GUARDED_BY(mu_);
  std::vector<int> stack_ COACHLM_GUARDED_BY(mu_);
};

/// \brief Process-wide observability switchboard.
///
/// Disabled (the default) every instrumentation site in the tree is a
/// relaxed load + branch. The CLI enables it when a run report is
/// requested (--metrics-out / COACHLM_METRICS_OUT), optionally in
/// deterministic mode: timings then come from a SteppingClock and the
/// report writer normalizes volatile fields (threads, RSS, utilization),
/// so seeded runs byte-compare across repetitions *and* thread counts.
class Observability {
 public:
  /// The process-wide instance.
  static Observability& Default();

  /// Fast global check for instrumentation sites.
  static bool Enabled() {
    return Default().enabled_.load(std::memory_order_relaxed);
  }

  /// Arms metrics + tracing. \p deterministic swaps in a SteppingClock.
  void Enable(bool deterministic = false);

  /// Disarms and clears all collected data (tests; multi-run processes).
  void Disable();

  bool deterministic() const { return deterministic_; }

  /// The trace clock (SteppingClock in deterministic mode).
  Clock* clock() const { return clock_; }

  MetricsRegistry& metrics() { return MetricsRegistry::Default(); }
  Trace& trace() { return trace_; }

 private:
  Observability();

  std::atomic<bool> enabled_{false};
  bool deterministic_ = false;
  Clock* clock_;
  std::unique_ptr<SteppingClock> stepping_;
  Trace trace_;
};

/// \brief RAII stage span on the default Observability: a no-op when
/// observability is disabled. Construct at stage entry on the driver
/// thread; destruction closes the span.
class StageSpan {
 public:
  explicit StageSpan(const char* name) {
    if (Observability::Enabled()) {
      id_ = Observability::Default().trace().BeginSpan(name);
    }
  }
  ~StageSpan() {
    if (id_ >= 0) Observability::Default().trace().EndSpan(id_);
  }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  int id_ = -1;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_TRACE_H_
