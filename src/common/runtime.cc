#include "common/runtime.h"

#include <cstdio>
#include <cstdlib>

#include "common/env.h"
#include "common/execution.h"
#include "common/metrics.h"

namespace coachlm {

uint64_t PipelineRuntime::JitterKey(FaultSite site, uint64_t item_id) {
  return MixSeed(item_id, 0xBAC0FF00ULL + static_cast<uint64_t>(site));
}

PipelineRuntime* PipelineRuntime::Default() {
  static PipelineRuntime* runtime = [] {
    const std::string spec = GetEnvOr("COACHLM_FAULT_PLAN", "");
    if (spec.empty()) return new PipelineRuntime();
    const Result<FaultPlan> plan = FaultPlan::Parse(spec);
    if (!plan.ok()) {
      std::fprintf(stderr,
                   "warning: ignoring COACHLM_FAULT_PLAN: %s\n",
                   plan.status().ToString().c_str());
      return new PipelineRuntime();
    }
    RetryPolicy policy;
    const std::string retry_max = GetEnvOr("COACHLM_RETRY_MAX", "");
    if (!retry_max.empty()) {
      const long parsed = std::strtol(retry_max.c_str(), nullptr, 10);
      if (parsed > 0) policy.max_attempts = static_cast<int>(parsed);
    }
    return new PipelineRuntime(FaultInjector(*plan), policy);
  }();
  return runtime;
}

Status PipelineRuntime::FinishRun(FaultSite site, uint64_t item_id,
                                  RetryOutcome outcome, int* attempts_out) {
  attempts_.fetch_add(static_cast<uint64_t>(outcome.attempts),
                      std::memory_order_relaxed);
  CountMetric("runtime.attempts_total",
              static_cast<uint64_t>(outcome.attempts));
  if (outcome.backoff_micros > 0) {
    CountMetric("runtime.retry_backoff_micros",
                static_cast<uint64_t>(outcome.backoff_micros));
  }
  if (outcome.status.ok()) {
    if (outcome.attempts > 1) {
      recovered_.fetch_add(1, std::memory_order_relaxed);
      CountMetric("runtime.records_recovered");
    }
  } else if (cancel_ == nullptr || !cancel_->cancelled()) {
    // Under run-level cancellation the caller quarantines the whole
    // unprocessed remainder once, in index order; per-item quarantine here
    // would double-log those items in a schedule-dependent order.
    QuarantineRecordFailure(site, item_id, outcome.status, outcome.attempts);
  }
  if (attempts_out != nullptr) *attempts_out = outcome.attempts;
  return outcome.status;
}

void PipelineRuntime::QuarantineRecordFailure(FaultSite site,
                                              uint64_t item_id,
                                              const Status& status,
                                              int attempts) {
  QuarantineRecord record;
  record.item_id = item_id;
  record.site = site;
  record.code = status.code();
  record.message = status.message();
  record.attempts = attempts;
  quarantine_.Add(std::move(record));
}

}  // namespace coachlm
