#include "common/execution.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/clock.h"
#include "common/env.h"

namespace coachlm {
namespace {

size_t ResolveThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

size_t DefaultThreads() {
  const std::string env = GetEnvOr("COACHLM_THREADS", "");
  if (!env.empty()) {
    const long parsed = std::strtol(env.c_str(), nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 0;  // hardware concurrency
}

}  // namespace

ExecutionContext::ExecutionContext(size_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {}

ExecutionContext& ExecutionContext::Default() {
  static ExecutionContext* context = new ExecutionContext(DefaultThreads());
  return *context;
}

const ExecutionContext& ExecutionContext::Serial() {
  static const ExecutionContext* context = new ExecutionContext(1);
  return *context;
}

ThreadPool* ExecutionContext::pool() const {
  if (num_threads_ <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  });
  return pool_.get();
}

void ExecutionContext::ParallelFor(size_t n,
                                   const std::function<void(size_t)>& fn,
                                   size_t grain,
                                   const CancelToken* cancel) const {
  if (n == 0) return;
  if (cancel != nullptr) {
    // Wrap once here so every execution path (inline and pooled) gets the
    // same per-item gate: an item whose turn comes after the token trips
    // never starts.
    const std::function<void(size_t)> gated = [&fn, cancel](size_t i) {
      if (cancel->cancelled()) return;
      fn(i);
    };
    ParallelFor(n, gated, grain, nullptr);
    return;
  }
  // Stats are counted only on this cancel-free path: the gated branch above
  // recurses into this function, so counting there too would double-count
  // every region.
  const bool collect = collect_stats_.load(std::memory_order_relaxed);
  const int64_t start = collect ? Clock::System()->NowMicros() : 0;
  ThreadPool* workers = pool();
  if (workers == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    workers->ParallelFor(n, fn, grain);
  }
  if (collect) {
    stat_regions_.fetch_add(1, std::memory_order_relaxed);
    stat_items_.fetch_add(n, std::memory_order_relaxed);
    stat_region_wall_micros_.fetch_add(Clock::System()->NowMicros() - start,
                                       std::memory_order_relaxed);
  }
}

Status ExecutionContext::ParallelForStatus(size_t n,
                                           const std::function<Status(size_t)>& fn,
                                           size_t grain,
                                           const CancelToken* cancel) const {
  std::atomic<size_t> first_bad{n};
  std::mutex mu;
  Status bad = Status::OK();
  ParallelFor(
      n,
      [&](size_t i) {
        // Items past an already-recorded failure cannot change the result
        // (lowest index wins), so skip them.
        if (i > first_bad.load(std::memory_order_relaxed)) return;
        Status status = (cancel != nullptr && cancel->cancelled())
                            ? cancel->status()
                            : fn(i);
        if (status.ok()) return;
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_bad.load(std::memory_order_relaxed)) {
          first_bad.store(i, std::memory_order_relaxed);
          bad = std::move(status);
        }
      },
      grain);
  return first_bad.load() < n ? bad : Status::OK();
}

std::vector<Status> ExecutionContext::ParallelMapStatus(
    size_t n, const std::function<Status(size_t)>& fn, size_t grain,
    const CancelToken* cancel) const {
  std::vector<Status> statuses(n);
  ParallelFor(
      n,
      [&](size_t i) {
        statuses[i] = (cancel != nullptr && cancel->cancelled())
                          ? cancel->status()
                          : fn(i);
      },
      grain);
  return statuses;
}

}  // namespace coachlm
