#ifndef COACHLM_COMMON_THREADPOOL_H_
#define COACHLM_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace coachlm {

/// \brief Fixed-size worker pool for parallel dataset operations.
///
/// CoachLM inference over a 52k-pair corpus is embarrassingly parallel; the
/// pipeline shards the dataset over this pool (mirroring the paper's
/// batch-32 single-GPU inference setup, Section IV-A). Tasks must not throw.
class ThreadPool {
 public:
  /// Starts \p num_threads workers (hardware concurrency when 0).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  ///
  /// Work is split into contiguous chunks of \p grain indices (0 = auto:
  /// ~8 chunks per runner) that workers claim dynamically, instead of one
  /// queued task per index — a 52k-item loop costs dozens of queue
  /// round-trips, not 52k. The calling thread participates in the work,
  /// and completion is tracked per call, so concurrent ParallelFor calls
  /// on one pool do not wait on each other's tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t grain = 0);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_ COACHLM_GUARDED_BY(mu_);
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ COACHLM_GUARDED_BY(mu_) = 0;
  bool stop_ COACHLM_GUARDED_BY(mu_) = false;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_THREADPOOL_H_
