#ifndef COACHLM_COMMON_RETRY_H_
#define COACHLM_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"

namespace coachlm {

/// \brief Retry schedule for transient failures: bounded attempts,
/// exponential backoff with deterministic jitter, optional per-call
/// deadline.
///
/// The defaults allow one more attempt than the injector's maximum
/// transient burst (fault.h), so any purely-transient fault plan is
/// guaranteed to retry through to success.
struct RetryPolicy {
  /// Total attempts including the first (must be >= 1).
  int max_attempts = 4;
  /// Backoff before the second attempt; doubles (times multiplier) after
  /// each further failure.
  int64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  /// Cap on a single backoff sleep.
  int64_t max_backoff_us = 200000;
  /// Overall deadline for the call including backoff (0 = none). Once
  /// exceeded, the loop stops with DeadlineExceeded even if attempts
  /// remain.
  int64_t deadline_us = 0;

  /// The backoff before attempt \p next_attempt (2-based: the sleep after
  /// the first failure precedes attempt 2). Jitter is deterministic in
  /// (jitter_key, next_attempt) — a pure function, not a global RNG — so
  /// retry timing is reproducible per item.
  int64_t BackoffMicros(int next_attempt, uint64_t jitter_key) const;
};

/// \brief What a retried call produced: the final status, how many
/// attempts it took, and the total backoff scheduled between them.
struct RetryOutcome {
  Status status;
  int attempts = 0;
  /// Sum of the backoff sleeps requested between attempts. Kept as a plain
  /// field (not a metric emission) so retry.h stays observability-free;
  /// the pipeline runtime folds it into runtime.retry_backoff_micros.
  int64_t backoff_micros = 0;
};

/// \brief Runs \p op under \p policy: re-attempts while the status is
/// transient (Status::IsTransient), sleeping the backoff on \p clock
/// between attempts. Non-transient failures and OK return immediately.
///
/// \p op receives the 1-based attempt number. \p jitter_key seeds the
/// deterministic backoff jitter (callers pass a per-item key). A template
/// rather than std::function: the retry envelope wraps every record of
/// every corpus-scale stage, so the per-call closure must not allocate.
///
/// An optional \p cancel token short-circuits the loop: a cancelled token
/// stops before the first attempt and between attempts (returning the
/// token's status), and a pending deadline caps each backoff sleep so the
/// loop never sleeps past the run's wall-clock budget.
template <typename Op>
RetryOutcome RetryWithBackoff(const RetryPolicy& policy, Clock* clock,
                              uint64_t jitter_key, Op&& op,
                              const CancelToken* cancel = nullptr) {
  RetryOutcome outcome;
  const int max_attempts = std::max(1, policy.max_attempts);
  const int64_t start = clock->NowMicros();
  if (cancel != nullptr && cancel->cancelled()) {
    outcome.status = cancel->status();
    return outcome;
  }
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.attempts = attempt;
    outcome.status = op(attempt);
    if (outcome.status.ok() || !outcome.status.IsTransient()) return outcome;
    if (attempt == max_attempts) return outcome;
    int64_t backoff = policy.BackoffMicros(attempt + 1, jitter_key);
    if (policy.deadline_us > 0 &&
        clock->NowMicros() - start + backoff >= policy.deadline_us) {
      outcome.status = Status::DeadlineExceeded(
          "retry deadline exceeded after " + std::to_string(attempt) +
          " attempt(s): " + outcome.status.ToString());
      return outcome;
    }
    if (cancel != nullptr) {
      if (cancel->cancelled()) {
        outcome.status = cancel->status();
        return outcome;
      }
      // Never sleep past the run budget: the point of a backoff under a
      // deadline is to wake in time to notice cancellation.
      backoff = std::min(backoff, cancel->remaining_micros());
    }
    outcome.backoff_micros += backoff;
    clock->SleepMicros(backoff);
    if (cancel != nullptr && cancel->cancelled()) {
      outcome.status = cancel->status();
      return outcome;
    }
  }
  return outcome;
}

}  // namespace coachlm

#endif  // COACHLM_COMMON_RETRY_H_
