#ifndef COACHLM_COMMON_FAULT_H_
#define COACHLM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace coachlm {

/// \brief Named fault-injection sites, one per corpus-scale stage class.
///
/// Every per-record operation that talks to something fallible (a backend,
/// a parser over untrusted bytes, the filesystem) is wrapped in exactly one
/// site, so a fault plan can target e.g. only revision-time inference.
enum class FaultSite {
  kCollect = 0,  // traffic collection / corpus generation
  kParse,        // rule-script parsing of raw logs
  kRevise,       // CoachLM inference
  kJudge,        // pairwise judging
  kTune,         // instruction tuning / alignment measurement
  kIo,           // checkpoint & dataset file I/O
  kServeAccept,  // serve daemon: accepting a client connection
  kServeParse,   // serve daemon: parsing one request envelope
  kServeRevise,  // serve daemon: per-record revision inside a request
  kChaosRead,    // socket chaos: slow-drip reads (slowloris)
  kChaosWrite,   // socket chaos: short / torn writes
  kChaosRst,     // socket chaos: hard RST instead of a clean close
  kChaosEintr,   // socket chaos: EINTR storms on socket syscalls
  kChaosStall,   // socket chaos: stalled peer (silent latency)
};

inline constexpr int kNumFaultSites = 14;

/// Stable lowercase name ("collect", "parse", ...).
const char* FaultSiteToString(FaultSite site);

/// Parses a site name; InvalidArgument on unknown names.
[[nodiscard]] Result<FaultSite> FaultSiteFromString(const std::string& name);

/// Bit for \p site in FaultPlan::site_mask.
inline constexpr uint32_t FaultSiteBit(FaultSite site) {
  return 1u << static_cast<int>(site);
}

inline constexpr uint32_t kAllFaultSites = (1u << kNumFaultSites) - 1;

/// \brief Declarative description of the faults to inject into a run.
///
/// The plan is pure data: equal plans injected into equal workloads produce
/// equal fault streams, because the injector keys every decision on
/// (seed, site, item_id) only. The default plan injects nothing.
struct FaultPlan {
  uint64_t seed = 404;
  /// Probability an item experiences a transient fault burst at a site.
  /// Bursts are bounded (<= kMaxTransientBurst consecutive failures), so a
  /// retry policy with more attempts than the bound always recovers.
  double transient_rate = 0.0;
  /// Probability an item fails *permanently* at a site: every attempt
  /// fails, and the record is routed to quarantine.
  double permanent_rate = 0.0;
  /// Probability a transient burst continues past each failure (geometric
  /// tail, still capped at kMaxTransientBurst).
  double burst_continuation = 0.4;
  /// Simulated latency added to each injected failure (microseconds).
  int64_t latency_us = 0;
  /// Which sites inject (default: all).
  uint32_t site_mask = kAllFaultSites;

  /// True when the plan can inject anything at all.
  bool active() const {
    return (transient_rate > 0.0 || permanent_rate > 0.0) && site_mask != 0;
  }

  /// Parses a plan spec. Accepted forms:
  ///   ""                                  -> inactive plan
  ///   "0.05"                              -> transient_rate 5%, all sites
  ///   "rate=0.05,permanent=0.001,seed=7,sites=revise+io,latency_us=100,
  ///    continuation=0.4"                  -> full control
  /// `sites=all` restores the default mask.
  [[nodiscard]] static Result<FaultPlan> Parse(const std::string& spec);

  /// Canonical spec string that re-parses to this plan.
  std::string ToString() const;
};

/// Upper bound on consecutive transient failures for one (site, item):
/// any retry policy allowing more than this many attempts deterministically
/// retries its way through every transient fault in a plan.
inline constexpr int kMaxTransientBurst = 3;

/// \brief Counters of what an injector actually did (all sites pooled).
///
/// Copy/move snapshot the counters (relaxed loads) so the owning injector
/// stays movable; concurrent increments race benignly with a snapshot.
struct FaultInjectorStats {
  std::atomic<uint64_t> transient_injected{0};
  std::atomic<uint64_t> permanent_injected{0};

  FaultInjectorStats() = default;
  FaultInjectorStats(const FaultInjectorStats& other)
      : transient_injected(
            other.transient_injected.load(std::memory_order_relaxed)),
        permanent_injected(
            other.permanent_injected.load(std::memory_order_relaxed)) {}
  FaultInjectorStats& operator=(const FaultInjectorStats& other) {
    transient_injected.store(
        other.transient_injected.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    permanent_injected.store(
        other.permanent_injected.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
};

/// \brief Deterministic, seeded fault injector.
///
/// `Inject(site, item_id, attempt)` is a pure function of the plan and its
/// arguments: the decision stream for an item derives from
/// DeriveRng(MixSeed(seed, site_tag), item_id), exactly the keying used for
/// per-item work streams, so fault placement is independent of thread
/// count, scheduling, and call order. A default-constructed injector is
/// disabled and its hot path is a single predictable branch.
class FaultInjector {
 public:
  /// Disabled injector: Inject() always returns OK.
  FaultInjector() = default;

  explicit FaultInjector(FaultPlan plan);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  /// Returns the fault (if any) that \p attempt (1-based) of \p item_id's
  /// operation at \p site should observe. When a failure is injected and
  /// the plan carries latency, sleeps \p clock for it (nullptr = no sleep).
  [[nodiscard]] Status Inject(FaultSite site, uint64_t item_id, int attempt,
                Clock* clock = nullptr) const;

  const FaultInjectorStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  bool enabled_ = false;
  mutable FaultInjectorStats stats_;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_FAULT_H_
