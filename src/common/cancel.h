#ifndef COACHLM_COMMON_CANCEL_H_
#define COACHLM_COMMON_CANCEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/status.h"

namespace coachlm {

/// \brief Cooperative cancellation with an optional wall-clock deadline.
///
/// A token is shared by a coordinator (the CLI's --deadline-ms handling, a
/// stall watchdog, a signal handler) and the workers it governs: workers
/// poll cancelled() at item boundaries and stop producing new work; the
/// runtime quarantines whatever they did not reach and still commits a
/// valid checkpoint so --resume can finish the run later.
///
/// The deadline rides on the injectable Clock, so tests drive expiry with
/// a FakeClock and zero real waiting. Expiry is detected lazily: the first
/// cancelled() call at or past the deadline flips the token to
/// kDeadlineExceeded. Explicit Cancel() and deadline expiry race benignly —
/// the first cause wins and is the status() every caller observes.
///
/// Thread-safe; polling is one relaxed atomic load on the fast path.
class CancelToken {
 public:
  /// A token with no deadline; only explicit Cancel() trips it.
  CancelToken() : clock_(Clock::System()) {}

  /// A token that self-cancels once \p clock reaches \p deadline_micros
  /// (absolute, in the clock's epoch).
  CancelToken(Clock* clock, int64_t deadline_micros)
      : clock_(clock), deadline_micros_(deadline_micros), has_deadline_(true) {}

  /// Convenience: a deadline \p budget_micros from the clock's now.
  static CancelToken AfterMicros(Clock* clock, int64_t budget_micros) {
    return CancelToken(clock, clock->NowMicros() + budget_micros);
  }

  /// True once the token is cancelled (explicitly or by deadline expiry).
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (has_deadline_ && clock_->NowMicros() >= deadline_micros_) {
      // Lazy expiry: first observer records the cause.
      const_cast<CancelToken*>(this)->Cancel(Status::DeadlineExceeded(
          "wall-clock budget exhausted after " +
          std::to_string(deadline_micros_) + "us"));
      return true;
    }
    return false;
  }

  /// Trips the token with \p cause. The first call wins; later calls (and
  /// a racing deadline expiry) are ignored so status() is stable.
  void Cancel(Status cause) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    cause_ = std::move(cause);
    cancelled_.store(true, std::memory_order_release);
  }

  /// The cancellation cause: OK while live, then kCancelled /
  /// kDeadlineExceeded (or whatever Cancel() recorded) forever after.
  [[nodiscard]] Status status() const {
    if (!cancelled()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return cause_;
  }

  /// Microseconds until the deadline (never negative), or a large positive
  /// value when the token has no deadline. Used to cap retry backoff so a
  /// sleep never overshoots the budget.
  int64_t remaining_micros() const {
    if (!has_deadline_) return kNoDeadline;
    const int64_t left = deadline_micros_ - clock_->NowMicros();
    return left > 0 ? left : 0;
  }

  bool has_deadline() const { return has_deadline_; }

  static constexpr int64_t kNoDeadline = INT64_MAX / 2;

 private:
  Clock* clock_;
  int64_t deadline_micros_ = 0;
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status cause_ COACHLM_GUARDED_BY(mu_);
};

/// \brief Detects a frozen pipeline stage and cancels it.
///
/// Progress sites call Tick() whenever an item completes; the watchdog
/// trips when Poll() observes no tick for longer than \p stall_micros and
/// cancels the governed token with kDeadlineExceeded naming the stalled
/// stage. Tests drive Poll() manually against a FakeClock; production can
/// Start() a background thread that polls on a real-time cadence.
class StallWatchdog {
 public:
  /// \p token is cancelled when a stall is detected; must outlive the
  /// watchdog. \p stage names the governed work in the cancel status.
  StallWatchdog(Clock* clock, CancelToken* token, std::string stage,
                int64_t stall_micros)
      : clock_(clock),
        token_(token),
        stage_(std::move(stage)),
        stall_micros_(stall_micros),
        last_tick_micros_(clock->NowMicros()) {}

  ~StallWatchdog() { Stop(); }

  /// Records forward progress. Cheap enough for per-item call sites.
  void Tick() {
    last_tick_micros_.store(clock_->NowMicros(), std::memory_order_relaxed);
  }

  /// Checks for a stall; returns true (and cancels the token, once) when
  /// the last tick is older than the stall budget.
  bool Poll() {
    const int64_t idle =
        clock_->NowMicros() - last_tick_micros_.load(std::memory_order_relaxed);
    if (idle < stall_micros_) return false;
    if (!fired_.exchange(true)) {
      token_->Cancel(Status::DeadlineExceeded(
          "stage '" + stage_ + "' stalled: no progress for " +
          std::to_string(idle) + "us (budget " +
          std::to_string(stall_micros_) + "us)"));
    }
    return true;
  }

  /// True once a stall has been detected (by Poll or the thread).
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Starts a background thread polling every \p poll_interval_micros of
  /// *real* time. Only meaningful with the system clock; FakeClock tests
  /// use Poll() directly.
  void Start(int64_t poll_interval_micros);

  /// Stops the background thread, if running. Idempotent.
  void Stop();

 private:
  Clock* clock_;
  CancelToken* token_;
  std::string stage_;
  int64_t stall_micros_;
  std::atomic<int64_t> last_tick_micros_;
  std::atomic<bool> fired_{false};

  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stopping_ COACHLM_GUARDED_BY(thread_mu_) = false;
  std::thread thread_;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_CANCEL_H_
