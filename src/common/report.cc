#include "common/report.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/annotations.h"
#include "common/env.h"
#include "common/metrics.h"

namespace coachlm {
namespace {

/// Wall time of the first root span, read from the serialized span array so
/// a still-open root reports its accrued duration consistently with "spans".
int64_t RootWallMicros(const json::Value& spans) {
  for (const json::Value& span : spans.AsArray()) {
    if (span.At("parent").AsInt() == -1) {
      return span.At("duration_micros").AsInt();
    }
  }
  return 0;
}

Status SchemaError(const std::string& what) {
  return Status::ParseError("run report: " + what);
}

/// Validates one serialized span against its index and returns its fields.
Status CheckSpan(const json::Value& span, size_t index) {
  if (!span.is_object()) return SchemaError("span is not an object");
  if (!span.At("name").is_string() || span.At("name").AsString().empty()) {
    return SchemaError("span without a name");
  }
  const json::Value& parent = span.At("parent");
  if (!parent.is_number() || parent.AsInt() < -1 ||
      parent.AsInt() >= static_cast<int64_t>(index)) {
    return SchemaError("span \"" + span.At("name").AsString() +
                       "\" has an invalid parent index");
  }
  if (!span.At("start_micros").is_number() ||
      span.At("start_micros").AsInt() < 0) {
    return SchemaError("span \"" + span.At("name").AsString() +
                       "\" has an invalid start_micros");
  }
  if (!span.At("duration_micros").is_number() ||
      span.At("duration_micros").AsInt() < 0) {
    return SchemaError("span \"" + span.At("name").AsString() +
                       "\" has an invalid duration_micros");
  }
  return Status::OK();
}

Status CheckHistograms(const json::Value& histograms) {
  if (!histograms.is_object()) return SchemaError("\"histograms\" is not an object");
  for (const auto& [name, histogram] : histograms.AsObject()) {
    if (!histogram.is_object() || !histogram.At("buckets").is_array() ||
        !histogram.At("counts").is_array() ||
        !histogram.At("count").is_number() ||
        !histogram.At("sum").is_number()) {
      return SchemaError("histogram \"" + name + "\" is malformed");
    }
    const json::Array& buckets = histogram.At("buckets").AsArray();
    const json::Array& counts = histogram.At("counts").AsArray();
    if (counts.size() != buckets.size() + 1) {
      return SchemaError("histogram \"" + name +
                         "\" needs counts.size == buckets.size + 1");
    }
    int64_t total = 0;
    for (const json::Value& c : counts) {
      if (!c.is_number() || c.AsInt() < 0) {
        return SchemaError("histogram \"" + name + "\" has a negative count");
      }
      total += c.AsInt();
    }
    if (total != histogram.At("count").AsInt()) {
      return SchemaError("histogram \"" + name +
                         "\" bucket counts do not sum to count");
    }
  }
  return Status::OK();
}

Status CheckBenchReport(const json::Value& report) {
  if (!report.At("artifact").is_string() ||
      report.At("artifact").AsString().empty()) {
    return SchemaError("bench report without an artifact name");
  }
  if (!report.At("measurements").is_array()) {
    return SchemaError("bench report without a measurements array");
  }
  for (const json::Value& m : report.At("measurements").AsArray()) {
    if (!m.is_object() || !m.At("name").is_string() ||
        m.At("name").AsString().empty() || !m.At("value").is_number() ||
        !m.At("unit").is_string()) {
      return SchemaError("bench measurement is malformed");
    }
  }
  return Status::OK();
}

Status CheckRunReport(const json::Value& report) {
  if (!report.At("command").is_string()) {
    return SchemaError("missing \"command\"");
  }
  if (!report.At("deterministic").is_bool()) {
    return SchemaError("missing \"deterministic\"");
  }
  if (!report.At("wall_micros").is_number() ||
      report.At("wall_micros").AsInt() < 0) {
    return SchemaError("missing \"wall_micros\"");
  }
  if (!report.At("spans").is_array()) return SchemaError("missing \"spans\"");
  const json::Array& spans = report.At("spans").AsArray();
  for (size_t i = 0; i < spans.size(); ++i) {
    COACHLM_RETURN_NOT_OK(CheckSpan(spans[i], i));
  }
  if (!report.At("counters").is_object()) {
    return SchemaError("missing \"counters\"");
  }
  if (!report.At("gauges").is_object()) return SchemaError("missing \"gauges\"");
  COACHLM_RETURN_NOT_OK(CheckHistograms(report.At("histograms")));
  if (!report.At("execution").is_object()) {
    return SchemaError("missing \"execution\"");
  }
  if (!report.At("process").is_object() ||
      !report.At("process").At("peak_rss_bytes").is_number()) {
    return SchemaError("missing \"process.peak_rss_bytes\"");
  }

  // Span coverage: when the root span has children, the named child spans
  // must account for >= 99% of the root's wall time — otherwise the report
  // is hiding where the run actually went. Deterministic reports are
  // exempt: their stepping-clock durations count clock reads, not wall
  // time, so coverage there is an artifact of span count.
  if (report.At("deterministic").AsBool()) return Status::OK();
  int64_t root_index = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].At("parent").AsInt() == -1) {
      root_index = static_cast<int64_t>(i);
      break;
    }
  }
  if (root_index >= 0) {
    const int64_t root_duration =
        spans[static_cast<size_t>(root_index)].At("duration_micros").AsInt();
    int64_t covered = 0;
    bool has_children = false;
    for (const json::Value& span : spans) {
      if (span.At("parent").AsInt() != root_index) continue;
      has_children = true;
      covered += span.At("duration_micros").AsInt();
    }
    if (has_children && root_duration > 0 && covered * 100 < root_duration * 99) {
      return SchemaError("named spans cover under 99% of the root wall time");
    }
  }
  return Status::OK();
}

/// Process-wide buffer behind the static BenchReport API.
struct BenchState {
  std::mutex mu;
  std::string artifact COACHLM_GUARDED_BY(mu);
  json::Array measurements COACHLM_GUARDED_BY(mu);
  bool atexit_registered COACHLM_GUARDED_BY(mu) = false;
};

BenchState& bench_state() {
  static BenchState* state = new BenchState();
  return *state;
}

extern "C" void FlushBenchReportAtExit() {
  const std::string path = GetEnvOr("COACHLM_BENCH_REPORT", "");
  if (path.empty()) return;
  const Status status = BenchReport::FlushTo(path);
  if (!status.ok()) {
    // Exit-time failure has nowhere to surface but stderr; the bench's own
    // stdout verdict is unaffected.
    std::fprintf(stderr, "bench report: %s\n", status.ToString().c_str());
  }
}

/// Registers the atexit flush once.
void EnsureAtExitFlush(BenchState* state) COACHLM_REQUIRES(state->mu) {
  if (state->atexit_registered) return;
  state->atexit_registered = true;
  std::atexit(FlushBenchReportAtExit);
}

}  // namespace

json::Value BuildRunReport(const RunReportOptions& options) {
  Observability& obs = Observability::Default();
  const bool deterministic = obs.deterministic();

  json::Object report;
  report["schema"] = json::Value(1);
  report["kind"] = json::Value("run");
  report["command"] = json::Value(options.command);
  report["deterministic"] = json::Value(deterministic);

  json::Value spans = obs.trace().ToJson();
  report["wall_micros"] = json::Value(RootWallMicros(spans));
  report["spans"] = std::move(spans);

  json::Value metrics = obs.metrics().ToJson();
  json::Object& sections = metrics.AsObject();
  report["counters"] = std::move(sections["counters"]);
  report["gauges"] = std::move(sections["gauges"]);
  report["histograms"] = std::move(sections["histograms"]);

  // The execution and process sections are the volatile part of a report:
  // thread counts, utilization, and RSS vary run to run, so deterministic
  // mode pins them to zero to keep the byte-identity contract.
  json::Object execution;
  if (deterministic || options.exec == nullptr) {
    execution["threads"] = json::Value(0);
    execution["parallel_regions"] = json::Value(0);
    execution["items"] = json::Value(0);
    execution["region_wall_micros"] = json::Value(0);
  } else {
    const ExecutionStats stats = options.exec->stats();
    execution["threads"] = json::Value(options.exec->num_threads());
    execution["parallel_regions"] = json::Value(
        static_cast<int64_t>(stats.parallel_regions));
    execution["items"] = json::Value(static_cast<int64_t>(stats.items));
    execution["region_wall_micros"] = json::Value(stats.region_wall_micros);
  }
  report["execution"] = json::Value(std::move(execution));

  json::Object process;
  process["peak_rss_bytes"] =
      json::Value(deterministic ? int64_t{0} : PeakRssBytes());
  report["process"] = json::Value(std::move(process));
  return json::Value(std::move(report));
}

Status MergeRunReportMetrics(const json::Value& report) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (!registry.enabled()) return Status::OK();
  if (!report.is_object()) {
    return SchemaError("merge source is not an object");
  }
  const json::Value& counters = report.At("counters");
  if (!counters.is_object()) return SchemaError("missing \"counters\"");
  for (const auto& [name, value] : counters.AsObject()) {
    if (!value.is_number() || value.AsInt() < 0) {
      return SchemaError("counter \"" + name +
                         "\" is not a non-negative number");
    }
    Counter* counter = registry.FindCounter(name);
    if (counter != nullptr) counter->Add(static_cast<uint64_t>(value.AsInt()));
  }
  const json::Value& gauges = report.At("gauges");
  if (!gauges.is_object()) return SchemaError("missing \"gauges\"");
  for (const auto& [name, value] : gauges.AsObject()) {
    if (!value.is_number()) {
      return SchemaError("gauge \"" + name + "\" is not a number");
    }
    Gauge* gauge = registry.FindGauge(name);
    if (gauge != nullptr && value.AsInt() > gauge->value()) {
      gauge->Set(value.AsInt());
    }
  }
  const json::Value& histograms = report.At("histograms");
  COACHLM_RETURN_NOT_OK(CheckHistograms(histograms));
  for (const auto& [name, histogram] : histograms.AsObject()) {
    MetricHistogram* target = registry.FindHistogram(name);
    if (target == nullptr) continue;
    std::vector<int64_t> counts;
    for (const json::Value& c : histogram.At("counts").AsArray()) {
      counts.push_back(c.AsInt());
    }
    COACHLM_RETURN_NOT_OK(
        target->MergeFrom(counts, histogram.At("sum").AsInt()));
  }
  return Status::OK();
}

Status WriteRunReport(const std::string& path,
                      const RunReportOptions& options) {
  const std::string text = BuildRunReport(options).DumpPretty() + "\n";
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open run report file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int closed = std::fclose(file);
  if (written != text.size() || closed != 0) {
    return Status::IoError("cannot write run report file: " + path);
  }
  return Status::OK();
}

Status ValidateRunReport(const json::Value& report) {
  if (!report.is_object()) return SchemaError("not a JSON object");
  const json::Value& schema = report.At("schema");
  if (!schema.is_number() || schema.AsInt() != 1) {
    return SchemaError("unsupported schema version");
  }
  const json::Value& kind = report.At("kind");
  if (kind.AsString() == "run") return CheckRunReport(report);
  if (kind.AsString() == "bench") return CheckBenchReport(report);
  return SchemaError("unknown kind (want \"run\" or \"bench\")");
}

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

void BenchReport::SetArtifact(const std::string& name) {
  BenchState& state = bench_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.artifact = name;
  EnsureAtExitFlush(&state);
}

void BenchReport::Record(const std::string& name, double value,
                         const std::string& unit) {
  BenchState& state = bench_state();
  std::lock_guard<std::mutex> lock(state.mu);
  json::Object measurement;
  measurement["name"] = json::Value(name);
  measurement["value"] = json::Value(value);
  measurement["unit"] = json::Value(unit);
  state.measurements.push_back(json::Value(std::move(measurement)));
  EnsureAtExitFlush(&state);
}

Status BenchReport::FlushTo(const std::string& path) {
  BenchState& state = bench_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.measurements.empty()) return Status::OK();

  json::Object line;
  line["schema"] = json::Value(1);
  line["kind"] = json::Value("bench");
  line["artifact"] = json::Value(
      state.artifact.empty() ? std::string("unnamed") : state.artifact);
  line["measurements"] = json::Value(state.measurements);
  const std::string text = json::Value(std::move(line)).Dump() + "\n";

  FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open bench report file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int closed = std::fclose(file);
  if (written != text.size() || closed != 0) {
    return Status::IoError("cannot append bench report line: " + path);
  }
  // Clear so a test-driven FlushTo followed by the atexit flush cannot
  // write the same line twice.
  state.measurements.clear();
  return Status::OK();
}

}  // namespace coachlm
