#ifndef COACHLM_COMMON_RUNTIME_H_
#define COACHLM_COMMON_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/quarantine.h"
#include "common/retry.h"

namespace coachlm {

/// \brief The fault-tolerant execution envelope every corpus-scale stage
/// runs its per-record work through.
///
/// Composes the deterministic FaultInjector (what goes wrong), the
/// RetryPolicy + Clock (how failures are retried), and the QuarantineLog
/// (where records that cannot be saved end up). An inactive runtime — the
/// default — is a pass-through whose only cost is one predictable branch,
/// so stages thread it unconditionally.
///
/// Run() is safe to call concurrently from worker threads: the injector is
/// stateless per call, counters are atomic, and the quarantine log locks.
class PipelineRuntime {
 public:
  /// Inactive runtime: Run() invokes the operation once, unretried and
  /// uninstrumented.
  PipelineRuntime() : clock_(Clock::System()) {}

  /// Active runtime. \p clock defaults to the real clock; tests inject a
  /// FakeClock so backoff never sleeps.
  PipelineRuntime(FaultInjector injector, RetryPolicy policy,
                  Clock* clock = nullptr)
      : injector_(std::move(injector)),
        policy_(policy),
        clock_(clock != nullptr ? clock : Clock::System()),
        active_(true) {}

  /// Process-wide runtime, configured once from the environment:
  /// COACHLM_FAULT_PLAN (a FaultPlan::Parse spec) activates injection and
  /// COACHLM_RETRY_MAX overrides the attempt budget. Unset = inactive.
  /// Stage entry points default to this, so an entire pipeline run — CLI,
  /// tests, benches — can be put under a fault plan without code changes.
  static PipelineRuntime* Default();

  bool active() const { return active_; }

  /// Attaches a cancellation token (wall-clock deadline, stall watchdog,
  /// or external cancel). Not owned; must outlive the runtime's use. Set
  /// before the governed stages start — not synchronized with Run().
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel_token() const { return cancel_; }

  /// Attaches a stall watchdog. Stages Tick() it per completed item so a
  /// frozen stage is distinguishable from a slow one; the watchdog's Poll
  /// (manual or background-thread) cancels the token above on stall.
  void set_watchdog(StallWatchdog* watchdog) { watchdog_ = watchdog; }
  StallWatchdog* watchdog() const { return watchdog_; }

  /// True when Run() does real work: fault injection is active *or* a
  /// cancel token is attached. Stages use this (not active()) to pick
  /// between the instrumented path and the zero-overhead fast path, so a
  /// deadline governs a run even without a fault plan.
  bool governed() const { return active_ || cancel_ != nullptr; }

  /// Runs \p op for record \p item_id at \p site under injection + retry.
  /// Permanent failures (retries exhausted, or a non-transient error) are
  /// recorded in the quarantine log with provenance and returned; the
  /// caller degrades gracefully instead of aborting the stage.
  /// \p attempts_out (optional) reports the attempts consumed.
  ///
  /// Templated on the callable so the per-record envelope never allocates
  /// a closure: Run() wraps every item of every corpus-scale stage, and
  /// the disabled path must stay within the <1% overhead budget that
  /// bench_fault_overhead guards.
  template <typename Op>
  [[nodiscard]] Status Run(FaultSite site, uint64_t item_id, Op&& op,
             int* attempts_out = nullptr) {
    if (!active_) {
      // A cancelled run stops admitting work even without fault injection;
      // unreached items surface the token's status. Quarantining them is
      // the caller's job (once, in index order over the whole remainder),
      // which keeps the quarantine log deterministic under any schedule.
      if (cancel_ != nullptr && cancel_->cancelled()) {
        if (attempts_out != nullptr) *attempts_out = 0;
        return cancel_->status();
      }
      if (attempts_out != nullptr) *attempts_out = 1;
      return op();
    }
    RetryOutcome outcome = RetryWithBackoff(
        policy_, clock_, JitterKey(site, item_id),
        [&](int attempt) {
          // Faults fire before the work, modeling the call to a flaky
          // dependency failing up front: the succeeding attempt then runs
          // the (deterministic) work exactly once, which is what makes a
          // transient-only plan byte-identical to the fault-free run.
          Status injected = injector_.Inject(site, item_id, attempt, clock_);
          if (!injected.ok()) return injected;
          return op();
        },
        cancel_);
    return FinishRun(site, item_id, std::move(outcome), attempts_out);
  }

  /// Routes a record straight to quarantine (for failures detected outside
  /// Run(), e.g. unparseable payloads that no retry can fix).
  void QuarantineRecordFailure(FaultSite site, uint64_t item_id,
                               const Status& status, int attempts = 1);

  const QuarantineLog& quarantine() const { return quarantine_; }
  const FaultInjector& injector() const { return injector_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Records that needed more than one attempt but recovered.
  uint64_t recovered_records() const {
    return recovered_.load(std::memory_order_relaxed);
  }
  /// Total attempts across all Run() calls (active runtime only).
  uint64_t total_attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }
  size_t quarantined_records() const { return quarantine_.size(); }

 private:
  /// Per-(site, item) backoff-jitter key, decorrelated from both the work
  /// stream and the fault stream.
  static uint64_t JitterKey(FaultSite site, uint64_t item_id);

  /// Books the finished envelope: attempt counters, recovery accounting,
  /// and quarantine on permanent failure.
  [[nodiscard]] Status FinishRun(FaultSite site, uint64_t item_id, RetryOutcome outcome,
                   int* attempts_out);

  FaultInjector injector_;
  RetryPolicy policy_;
  Clock* clock_;
  CancelToken* cancel_ = nullptr;
  StallWatchdog* watchdog_ = nullptr;
  bool active_ = false;
  QuarantineLog quarantine_;
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> attempts_{0};
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_RUNTIME_H_
