#ifndef COACHLM_COMMON_METRICS_H_
#define COACHLM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/json.h"

namespace coachlm {

/// \name Metric model
///
/// Every metric the system can emit is declared once, statically, in the
/// catalog (MetricCatalog(), metrics.cc): name, type, unit, owning stage,
/// and help text. Stages never invent metric names at runtime — the
/// catalog is the single source of truth that `coachlm metrics` dumps and
/// tools/check_docs.sh diffs against docs/OBSERVABILITY.md, so a metric
/// that exists in code but not in the operator guide is a CI failure, not
/// silent drift.
/// @{

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// \brief Catalog entry describing one metric.
struct MetricDef {
  const char* name;   ///< Dotted, stage-prefixed: "revise.items_changed".
  MetricType type;
  const char* unit;   ///< "items", "bytes", "micros", "attempts", ...
  const char* stage;  ///< Owning stage ("revise", "runtime", ...).
  const char* help;   ///< One-line semantics for the operator guide.
  /// Histogram upper bucket bounds (ascending, inclusive "<= bound"); null
  /// for counters/gauges. Bounds are part of the catalog so they can never
  /// drift silently between runs being diffed.
  const int64_t* buckets = nullptr;
  size_t num_buckets = 0;
};

/// The full static metric catalog, sorted by name.
const std::vector<MetricDef>& MetricCatalog();

/// @}

/// \brief Monotonically increasing count. Add() is thread-safe and
/// order-independent: the aggregate is a sum, so the serialized value is
/// identical no matter which thread incremented first.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written value. Gauges are set from serial (driver-thread)
/// code — configuration facts like alpha — so last-write-wins is exact.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram over integer observations.
///
/// Buckets are fixed at catalog time and the per-bucket counts, the total
/// count, and the (integer) sum are all commutative atomics, so merging
/// observations from any number of threads in any order serializes to the
/// same bytes. Values are integers by design: a floating-point sum would
/// depend on accumulation order and break the byte-identity contract.
class MetricHistogram {
 public:
  MetricHistogram(const int64_t* bounds, size_t num_bounds);

  /// Records \p value into bucket i where value <= bounds[i] (the last
  /// bucket is the overflow bucket).
  void Observe(int64_t value);

  /// Folds another histogram's serialized state into this one: adds
  /// \p counts (size must equal counts().size()) bucket-wise and \p sum to
  /// the running sum. Addition commutes, so merging per-worker reports in
  /// any order serializes to the same bytes — the property the supervisor's
  /// merged run report relies on. Rejects a bucket-count mismatch (the
  /// catalog pins bucket layouts, so a mismatch means a schema drift).
  [[nodiscard]] Status MergeFrom(const std::vector<int64_t>& counts,
                                 int64_t sum);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<uint64_t> counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// \brief Thread-safe registry holding one instance of every catalog
/// metric.
///
/// Disabled (the default) the registry is inert: every Find* returns
/// nullptr after one relaxed load, so instrumentation sites cost a
/// predictable branch — the <1% disabled-overhead budget bench_observability
/// guards. Serialization iterates metrics in catalog (name) order into
/// json::Object (std::map), so the report bytes are independent of both
/// thread schedule and registration order.
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Process-wide registry, enabled by the CLI when --metrics-out /
  /// COACHLM_METRICS_OUT request a run report.
  static MetricsRegistry& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// \name Lookup
  /// Return nullptr when the registry is disabled or the name is not in
  /// the catalog (with the wrong type), so call sites degrade to no-ops.
  /// In debug builds (NDEBUG unset) a lookup miss while enabled logs one
  /// warning per name per process instead of staying silent — the runtime
  /// counterpart of coachlm_lint's registry-unknown-name rule, catching
  /// names built dynamically where the lint only sees literals.
  /// @{
  Counter* FindCounter(const std::string& name);
  Gauge* FindGauge(const std::string& name);
  MetricHistogram* FindHistogram(const std::string& name);
  /// @}

  /// Overrides the unknown-name warning default (on when NDEBUG is unset,
  /// off otherwise) — the hook metrics_test uses to exercise the warning
  /// under release builds. Affects the process-wide warn-once state.
  static void set_warn_on_unknown_names(bool warn);

  /// Zeroes every metric (tests and multi-run processes).
  void Reset();

  /// Serializes all *non-zero* metrics as
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// in name order. Zero-valued metrics are elided so a report only shows
  /// what the run touched; the catalog (not the report) enumerates what
  /// could exist.
  json::Value ToJson() const;

  /// Tab-separated catalog dump (name, type, unit, stage, help), one
  /// metric per line in name order — the `coachlm metrics` output that
  /// tools/check_docs.sh diffs against the operator guide.
  static std::string CatalogDump();

 private:
  std::atomic<bool> enabled_{false};
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, MetricHistogram> histograms_;
};

/// \name Instrumentation helpers
///
/// The API stages actually call. All are no-ops (one relaxed load + branch)
/// while the default registry is disabled. These are for stage-boundary
/// bulk updates; per-item loops should Find* once and reuse the pointer.
/// @{
void CountMetric(const std::string& name, uint64_t delta = 1);
void SetGaugeMetric(const std::string& name, int64_t value);
void ObserveMetric(const std::string& name, int64_t value);
/// @}

}  // namespace coachlm

#endif  // COACHLM_COMMON_METRICS_H_
