#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace coachlm {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  size_t idx = 0;
  if (span > 0) {
    double t = (x - lo_) / span;
    t = std::clamp(t, 0.0, 1.0);
    idx = std::min(counts_.size() - 1,
                   static_cast<size_t>(t * static_cast<double>(counts_.size())));
  }
  ++counts_[idx];
  values_.push_back(x);
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::FractionAtLeast(double threshold) const {
  if (values_.empty()) return 0.0;
  size_t n = 0;
  for (double v : values_) {
    if (v >= threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values_.size());
}

double Histogram::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

std::string Histogram::ToAscii(size_t width) const {
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof(line), "[%5.2f, %5.2f%c %8zu |", bucket_lo(i),
                  bucket_hi(i), i + 1 == counts_.size() ? ']' : ')',
                  counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace coachlm
