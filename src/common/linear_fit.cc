#include "common/linear_fit.h"

#include <cmath>

namespace coachlm {

Result<double> LinearFit::SolveForX(double y) const {
  if (std::fabs(slope) < 1e-12) {
    return Status::FailedPrecondition("cannot invert a flat fit");
  }
  return (y - intercept) / slope;
}

Result<LinearFit> FitLine(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("need at least two points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx < 1e-12) {
    return Status::InvalidArgument("all x values identical");
  }
  LinearFit fit;
  fit.n = xs.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy < 1e-12) {
    fit.r_squared = 1.0;  // constant y fitted exactly by a flat line
  } else {
    double ss_res = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - fit.Predict(xs[i]);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace coachlm
