#ifndef COACHLM_COMMON_STATS_H_
#define COACHLM_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace coachlm {

/// \brief Streaming univariate statistics (Welford's algorithm).
///
/// Used throughout the evaluation harness to summarize score distributions
/// (dataset quality ratings, win rates, edit distances) without storing
/// samples.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  /// Number of observations.
  size_t count() const { return count_; }
  /// Arithmetic mean (0 when empty).
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 with fewer than 2 observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-range histogram with uniform bins.
///
/// Reproduces the presentation of Fig. 4 (ChatGPT rating histogram over the
/// ALPACA52K dataset before/after revision).
class Histogram {
 public:
  /// Creates a histogram over [lo, hi] with \p bins uniform buckets.
  /// Values outside the range clamp into the first/last bucket.
  Histogram(double lo, double hi, size_t bins);

  /// Adds one observation.
  void Add(double x);

  /// Number of observations in bucket \p i.
  size_t bucket_count(size_t i) const { return counts_[i]; }
  /// Total observations.
  size_t total() const { return total_; }
  /// Number of buckets.
  size_t num_buckets() const { return counts_.size(); }
  /// Inclusive lower edge of bucket \p i.
  double bucket_lo(size_t i) const;
  /// Exclusive upper edge of bucket \p i (inclusive for the last bucket).
  double bucket_hi(size_t i) const;
  /// Fraction of observations with value >= \p threshold, computed from
  /// exact stored values (not bucketized).
  double FractionAtLeast(double threshold) const;
  /// Mean of all observations.
  double Mean() const;

  /// Renders an ASCII bar chart, one row per bucket.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  std::vector<double> values_;  // exact values for threshold queries
  size_t total_ = 0;
};

/// \brief Computes the p-th percentile (0..100) of \p values by linear
/// interpolation. Returns 0 for empty input.
double Percentile(std::vector<double> values, double p);

}  // namespace coachlm

#endif  // COACHLM_COMMON_STATS_H_
