#ifndef COACHLM_COMMON_REPORT_H_
#define COACHLM_COMMON_REPORT_H_

#include <cstdint>
#include <string>

#include "common/execution.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "json/json.h"

namespace coachlm {

/// \brief Inputs of a run-report document beyond what the default
/// Observability already holds.
struct RunReportOptions {
  /// The CLI command (or test/bench harness) that produced the run.
  std::string command;
  /// The execution context the run actually used; its stats become the
  /// report's "execution" section. nullptr omits utilization numbers.
  const ExecutionContext* exec = nullptr;
};

/// \brief Builds the machine-readable run report (schema version 1) from
/// the default Observability instance.
///
/// Document shape (see docs/OBSERVABILITY.md for the full schema):
///   {"schema": 1, "kind": "run", "command", "deterministic",
///    "wall_micros", "spans": [...], "counters": {...}, "gauges": {...},
///    "histograms": {...}, "execution": {...}, "process": {...}}
///
/// Key order is std::map order and metric order is catalog order, so the
/// serialized bytes depend only on the collected values. In deterministic
/// mode the volatile sections (execution utilization, peak RSS) are
/// normalized to zero and timings come from the stepping clock, making a
/// seeded run's report byte-identical at any thread count.
json::Value BuildRunReport(const RunReportOptions& options);

/// Serializes BuildRunReport (pretty, trailing newline) to \p path.
[[nodiscard]] Status WriteRunReport(const std::string& path,
                                    const RunReportOptions& options);

/// \brief Validates a parsed report against schema version 1: required
/// keys and types, span parent/array invariants, histogram count
/// consistency, and — for "run" reports whose root span has children —
/// that named child spans account for >= 99% of the root's wall time.
/// Accepts both "run" and "bench" kinds.
[[nodiscard]] Status ValidateRunReport(const json::Value& report);

/// Peak resident set size of this process in bytes (0 when the platform
/// does not expose it).
int64_t PeakRssBytes();

/// \brief Folds the metric sections of another process's run report into
/// the default registry: counters add, gauges keep the maximum (every
/// gauge in the catalog is a peak/configuration fact, so max commutes),
/// histograms add bucket-wise.
///
/// This is how the serve supervisor merges per-worker run reports: each
/// worker writes a normal schema-v1 report at drain, the parent folds them
/// all into its own registry, and the report the parent then writes is
/// schema-identical to a single-process run. Merge order cannot change the
/// result because every fold is a commutative aggregate. Unknown metric
/// names are skipped (an older worker's report stays mergeable); malformed
/// sections are a typed error. No-op when the registry is disabled.
[[nodiscard]] Status MergeRunReportMetrics(const json::Value& report);

/// \brief Collector for benchmark measurements, emitted through the same
/// report schema as pipeline runs (kind "bench").
///
/// Benches Record() their headline numbers; when the COACHLM_BENCH_REPORT
/// environment variable names a file, one compact JSON line per process is
/// appended to it at exit — the trajectory file CI accumulates as
/// BENCH_pipeline.json. Without the variable, recording is a no-op beyond
/// buffering.
class BenchReport {
 public:
  /// Names the artifact (e.g. "Table 3") for this process's report line.
  static void SetArtifact(const std::string& name);

  /// Buffers one measurement; the write happens at process exit.
  static void Record(const std::string& name, double value,
                     const std::string& unit);

  /// Appends the buffered line to \p path now (exposed for tests; the
  /// atexit hook calls this with the environment-configured path).
  [[nodiscard]] static Status FlushTo(const std::string& path);
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_REPORT_H_
