#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace coachlm {

Result<Flags> Flags::Parse(int argc, const char* const* argv,
                           const std::vector<std::string>& known) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (flags.command_.empty()) {
        flags.command_ = arg;
      } else {
        flags.positional_.push_back(arg);
      }
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (std::find(known.begin(), known.end(), arg) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    flags.values_[arg] = value;
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : parsed;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : parsed;
}

Result<int64_t> Flags::GetIntStrict(const std::string& name,
                                    int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace coachlm
