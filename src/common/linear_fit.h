#ifndef COACHLM_COMMON_LINEAR_FIT_H_
#define COACHLM_COMMON_LINEAR_FIT_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace coachlm {

/// \brief Ordinary-least-squares fit of y = slope * x + intercept.
///
/// Reproduces the analysis of Fig. 5(b), where the paper fits the win rate
/// of Alpaca-human against the number of human-revised samples
/// (slope 3.07 %/k, R^2 = 0.9799) and extrapolates the crossover with
/// Alpaca-CoachLM.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 when y is constant and the
  /// fit is exact).
  double r_squared = 0.0;
  size_t n = 0;

  /// Predicted y at \p x.
  double Predict(double x) const { return slope * x + intercept; }

  /// Solves Predict(x) == y for x. Requires a non-zero slope.
  [[nodiscard]] Result<double> SolveForX(double y) const;
};

/// \brief Fits a least-squares line to the given points.
///
/// Fails with InvalidArgument when fewer than two points are supplied or the
/// x values are all identical (degenerate design matrix).
[[nodiscard]] Result<LinearFit> FitLine(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace coachlm

#endif  // COACHLM_COMMON_LINEAR_FIT_H_
