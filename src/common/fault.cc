#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/execution.h"
#include "common/logging.h"
#include "common/rng.h"

namespace coachlm {
namespace {

/// Per-site stream-family tag mixed into the plan seed so two sites never
/// replay each other's fault streams for the same item.
constexpr uint64_t SiteTag(FaultSite site) {
  return 0xFA171000ULL + static_cast<uint64_t>(site);
}

const char* const kSiteNames[kNumFaultSites] = {
    "collect",      "parse",       "revise",
    "judge",        "tune",        "io",
    "serve.accept", "serve.parse", "serve.revise",
    "chaos.read",   "chaos.write", "chaos.rst",
    "chaos.eintr",  "chaos.stall",
};

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t next = text.find(sep, pos);
    if (next == std::string::npos) next = text.size();
    parts.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

Result<double> ParseRate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double rate = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument("fault plan: '" + key +
                                   "' must be a rate in [0, 1], got '" +
                                   value + "'");
  }
  return rate;
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  const int index = static_cast<int>(site);
  if (index < 0 || index >= kNumFaultSites) {
#ifndef NDEBUG
    // Debug builds call out the out-of-range site once per process; the
    // release behavior stays a silent "unknown" so metrics/log labels
    // degrade instead of crashing.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      LogMessage(LogLevel::kWarning,
                 "FaultSiteToString: site index " + std::to_string(index) +
                     " is outside kSiteNames (src/common/fault.cc)");
    }
#endif
    return "unknown";
  }
  return kSiteNames[index];
}

Result<FaultSite> FaultSiteFromString(const std::string& name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  }
  return Status::InvalidArgument(
      "unknown fault site '" + name +
      "' (want collect|parse|revise|judge|tune|io|serve.accept|serve.parse|"
      "serve.revise|chaos.read|chaos.write|chaos.rst|chaos.eintr|"
      "chaos.stall)");
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) {
    plan.transient_rate = 0.0;
    return plan;
  }
  for (const std::string& token : SplitOn(spec, ',')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      // A bare number is shorthand for the transient rate.
      COACHLM_ASSIGN_OR_RETURN(plan.transient_rate, ParseRate("rate", token));
      continue;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "rate" || key == "transient") {
      COACHLM_ASSIGN_OR_RETURN(plan.transient_rate, ParseRate(key, value));
    } else if (key == "permanent") {
      COACHLM_ASSIGN_OR_RETURN(plan.permanent_rate, ParseRate(key, value));
    } else if (key == "continuation") {
      COACHLM_ASSIGN_OR_RETURN(plan.burst_continuation, ParseRate(key, value));
    } else if (key == "seed") {
      plan.seed = static_cast<uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "latency_us") {
      plan.latency_us = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "latency_ms") {
      plan.latency_us = std::strtoll(value.c_str(), nullptr, 10) * 1000;
    } else if (key == "sites") {
      if (value == "all") {
        plan.site_mask = kAllFaultSites;
      } else {
        plan.site_mask = 0;
        for (const std::string& name : SplitOn(value, '+')) {
          if (name.empty()) continue;
          COACHLM_ASSIGN_OR_RETURN(FaultSite site, FaultSiteFromString(name));
          plan.site_mask |= FaultSiteBit(site);
        }
      }
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "rate=" + std::to_string(transient_rate) +
                    ",permanent=" + std::to_string(permanent_rate) +
                    ",continuation=" + std::to_string(burst_continuation) +
                    ",seed=" + std::to_string(seed) +
                    ",latency_us=" + std::to_string(latency_us) + ",sites=";
  if (site_mask == kAllFaultSites) {
    out += "all";
  } else {
    bool first = true;
    for (int i = 0; i < kNumFaultSites; ++i) {
      if ((site_mask & (1u << i)) == 0) continue;
      if (!first) out += '+';
      out += kSiteNames[i];
      first = false;
    }
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), enabled_(plan.active()) {}

Status FaultInjector::Inject(FaultSite site, uint64_t item_id, int attempt,
                             Clock* clock) const {
  if (!enabled_) return Status::OK();
  if ((plan_.site_mask & FaultSiteBit(site)) == 0) return Status::OK();
  // The item's fault destiny is a pure function of (seed, site, item_id):
  // re-deriving the stream on every call keeps Inject stateless, so the
  // answer for a given attempt never depends on who asked first.
  Rng rng = DeriveRng(MixSeed(plan_.seed, SiteTag(site)), item_id);
  const bool permanent = rng.NextBool(plan_.permanent_rate);
  const bool transient = rng.NextBool(plan_.transient_rate);
  int burst = 0;
  if (transient) {
    burst = 1;
    while (burst < kMaxTransientBurst &&
           rng.NextBool(plan_.burst_continuation)) {
      ++burst;
    }
  }
  const uint64_t code_pick = rng.NextBelow(3);

  const std::string where = std::string(FaultSiteToString(site)) + "/item " +
                            std::to_string(item_id) + " attempt " +
                            std::to_string(attempt);
  if (permanent) {
    stats_.permanent_injected.fetch_add(1, std::memory_order_relaxed);
    if (clock != nullptr) clock->SleepMicros(plan_.latency_us);
    return Status::Internal("injected permanent fault at " + where);
  }
  if (transient && attempt <= burst) {
    stats_.transient_injected.fetch_add(1, std::memory_order_relaxed);
    if (clock != nullptr) clock->SleepMicros(plan_.latency_us);
    // Rotate through the transient codes so multi-failure bursts exercise
    // every retryable path, still deterministically.
    switch ((code_pick + static_cast<uint64_t>(attempt)) % 3) {
      case 0:
        return Status::Unavailable("injected transient fault at " + where);
      case 1:
        return Status::DeadlineExceeded("injected transient fault at " +
                                        where);
      default:
        return Status::IoError("injected transient fault at " + where);
    }
  }
  return Status::OK();
}

}  // namespace coachlm
