#ifndef COACHLM_COMMON_CHECKPOINT_H_
#define COACHLM_COMMON_CHECKPOINT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/execution.h"
#include "common/result.h"

namespace coachlm {

/// \brief Writes \p content to \p path atomically: the bytes land in a
/// sibling temp file first and rename into place, so readers never observe
/// a half-written file even if the writer dies mid-write.
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// \brief Stable 64-bit FNV-1a fingerprint of a configuration description,
/// hex-encoded. Checkpoints carry it so a resume against a different
/// configuration is rejected instead of silently mixing outputs.
std::string ConfigFingerprint(const std::string& description);

/// \brief Crash-safe progress journal for one corpus-scale stage.
///
/// Layout under the checkpoint directory:
///   <stage>.ckpt.jsonl      partial output, one serialized item per line,
///                           appended chunk by chunk
///   <stage>.manifest.json   {stage, fingerprint, completed, payload_bytes},
///                           atomically renamed into place after each append
///
/// The manifest is the source of truth: payload bytes beyond
/// `payload_bytes` are a torn tail from a crash mid-append and are
/// discarded on resume. Because every stage is deterministic per item, a
/// resumed run reprocesses only items >= `completed` and the concatenated
/// output is byte-identical to an uninterrupted run.
class StageCheckpointer {
 public:
  /// \p dir empty disables checkpointing (every call becomes a no-op).
  /// \p fingerprint should come from ConfigFingerprint over everything the
  /// stage's output depends on. \p interval is the commit chunk size.
  StageCheckpointer(std::string dir, std::string stage,
                    std::string fingerprint, size_t interval = 2048);

  bool enabled() const { return !dir_.empty(); }
  size_t interval() const { return interval_; }

  /// Attempts to resume: with a manifest matching this stage and
  /// fingerprint, returns the lines of every completed item (in item
  /// order) and arms subsequent Commits to append after them. Missing,
  /// mismatched, or inconsistent checkpoints return an empty vector and
  /// the next Commit starts the payload fresh.
  std::vector<std::string> Resume();

  /// Appends \p new_lines to the payload, then atomically publishes a
  /// manifest recording \p completed_total items. Crash-ordering contract:
  /// payload bytes are flushed before the manifest names them.
  Status Commit(size_t completed_total,
                const std::vector<std::string>& new_lines);

  /// Removes the checkpoint files after a successful run.
  Status Finish();

  std::string manifest_path() const;
  std::string payload_path() const;

  /// Testing aid for crash/resume drills: the process exits (without
  /// cleanup) right after the Nth successful Commit, simulating a kill
  /// mid-stage at a deterministic point.
  void set_crash_after_commits(int n) { crash_after_commits_ = n; }

 private:
  std::string dir_;
  std::string stage_;
  std::string fingerprint_;
  size_t interval_;
  uint64_t payload_bytes_ = 0;
  size_t completed_ = 0;
  bool resumed_ = false;
  int commits_ = 0;
  int crash_after_commits_ = 0;
};

/// \brief Drives a chunked, crash-safe stage loop over \p records.
///
/// First restores the journaled prefix: each resumed line is decoded with
/// `decode(line, &record) -> bool`; an undecodable or oversized journal is
/// discarded (Finish) and the stage restarts from item 0, never resuming
/// into a mismatched run. The remainder is computed in interval-sized
/// chunks over \p exec with `compute(i) -> Record`, and each finished chunk
/// is journaled via `encode(record) -> std::string` + Commit, so a kill at
/// any point loses at most one chunk of work.
///
/// Returns the number of records restored from the journal rather than
/// recomputed. A journal-write failure never fails the loop (the stage
/// keeps its in-memory results, only crash-safety degrades); the last such
/// error is reported through \p commit_error when non-null.
template <typename Record, typename Compute, typename Encode, typename Decode>
size_t RunCheckpointedLoop(StageCheckpointer* checkpoint,
                           const ExecutionContext& exec,
                           std::vector<Record>* records, Compute&& compute,
                           Encode&& encode, Decode&& decode,
                           Status* commit_error = nullptr) {
  const size_t n = records->size();
  size_t done = 0;
  const std::vector<std::string> lines = checkpoint->Resume();
  if (lines.size() <= n) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!decode(lines[i], &(*records)[i])) break;
      done = i + 1;
    }
  }
  if (done != lines.size()) {
    checkpoint->Finish();
    done = 0;
  }
  const size_t restored = done;
  while (done < n) {
    const size_t chunk_end = std::min(n, done + checkpoint->interval());
    exec.ParallelFor(chunk_end - done, [&](size_t k) {
      (*records)[done + k] = compute(done + k);
    });
    std::vector<std::string> chunk;
    chunk.reserve(chunk_end - done);
    for (size_t i = done; i < chunk_end; ++i) {
      chunk.push_back(encode((*records)[i]));
    }
    Status committed = checkpoint->Commit(chunk_end, chunk);
    if (!committed.ok() && commit_error != nullptr) {
      *commit_error = std::move(committed);
    }
    done = chunk_end;
  }
  return restored;
}

}  // namespace coachlm

#endif  // COACHLM_COMMON_CHECKPOINT_H_
