#ifndef COACHLM_COMMON_CHECKPOINT_H_
#define COACHLM_COMMON_CHECKPOINT_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/cancel.h"
#include "common/execution.h"
#include "common/result.h"

namespace coachlm {

/// \brief Writes \p content to \p path atomically: the bytes land in a
/// sibling temp file first and rename into place, so readers never observe
/// a half-written file even if the writer dies mid-write.
[[nodiscard]] Status AtomicWriteFile(const std::string& path, const std::string& content);

/// \brief Stable 64-bit FNV-1a fingerprint of a configuration description,
/// hex-encoded. Checkpoints carry it so a resume against a different
/// configuration is rejected instead of silently mixing outputs.
std::string ConfigFingerprint(const std::string& description);

/// \brief Stage name of one shard of a sharded pass, e.g.
/// "revise.shard-00002-of-00008". Each shard checkpoints under its own
/// journal and is an independent resume unit: killing a sharded run and
/// resuming recomputes only the unfinished shards' remainders.
std::string ShardStageName(const std::string& stage, size_t shard_index,
                           size_t shard_count);

/// \brief Crash-safe progress journal for one corpus-scale stage.
///
/// Layout under the checkpoint directory:
///   <stage>.ckpt.jsonl      partial output, one serialized item per line,
///                           appended chunk by chunk
///   <stage>.manifest.json   {stage, fingerprint, completed, payload_bytes},
///                           atomically renamed into place after each append
///
/// The manifest is the source of truth: payload bytes beyond
/// `payload_bytes` are a torn tail from a crash mid-append and are
/// discarded on resume. Because every stage is deterministic per item, a
/// resumed run reprocesses only items >= `completed` and the concatenated
/// output is byte-identical to an uninterrupted run.
class StageCheckpointer {
 public:
  /// \p dir empty disables checkpointing (every call becomes a no-op).
  /// \p fingerprint should come from ConfigFingerprint over everything the
  /// stage's output depends on. \p interval is the commit chunk size.
  StageCheckpointer(std::string dir, std::string stage,
                    std::string fingerprint, size_t interval = 2048);

  bool enabled() const { return !dir_.empty(); }
  size_t interval() const { return interval_; }

  /// Attempts to resume: with a manifest matching this stage and
  /// fingerprint, returns the lines of every completed item (in item
  /// order) and arms subsequent Commits to append after them. Missing,
  /// mismatched, or inconsistent checkpoints return an empty vector and
  /// the next Commit starts the payload fresh.
  std::vector<std::string> Resume();

  /// Appends \p new_lines to the payload, then atomically publishes a
  /// manifest recording \p completed_total items. Crash-ordering contract:
  /// payload bytes are flushed before the manifest names them.
  [[nodiscard]] Status Commit(size_t completed_total,
                const std::vector<std::string>& new_lines);

  /// Hands \p new_lines to the background committer thread (started
  /// lazily) and returns once the chunk is *enqueued* — which may block:
  /// admission is gated on a high watermark of \p max_pending_commits
  /// (see set_max_pending_commits), so a stalled disk applies backpressure
  /// to the compute loop instead of letting encoded chunks accumulate
  /// O(corpus) in memory. Chunks commit strictly in enqueue order,
  /// preserving the payload-before-manifest crash contract.
  ///
  /// Commit errors surface at the next Drain(). Do not interleave with
  /// synchronous Commit() calls without Drain() in between.
  void CommitAsync(size_t completed_total, std::vector<std::string> new_lines);

  /// Waits for every enqueued chunk to land and returns the last commit
  /// error (OK when all committed cleanly). Must be called before Finish()
  /// or destruction when CommitAsync was used; the destructor drains too,
  /// swallowing errors.
  [[nodiscard]] Status Drain();

  /// High watermark for CommitAsync admission (default 2): while this many
  /// chunks are pending, the producer blocks. 0 makes CommitAsync
  /// synchronous.
  void set_max_pending_commits(size_t n) { max_pending_commits_ = n; }

  /// Removes the checkpoint files after a successful run.
  [[nodiscard]] Status Finish();

  std::string manifest_path() const;
  std::string payload_path() const;

  /// Testing aid for crash/resume drills: the process exits (without
  /// cleanup) right after the Nth successful Commit, simulating a kill
  /// mid-stage at a deterministic point.
  void set_crash_after_commits(int n) { crash_after_commits_ = n; }

 public:
  ~StageCheckpointer();

 private:
  struct PendingCommit {
    size_t completed_total = 0;
    std::vector<std::string> lines;
  };

  /// Body of the background committer thread: pops chunks in order and
  /// applies Commit().
  void CommitterLoop();

  std::string dir_;
  std::string stage_;
  std::string fingerprint_;
  size_t interval_;
  uint64_t payload_bytes_ = 0;
  size_t completed_ = 0;
  bool resumed_ = false;
  int commits_ = 0;
  int crash_after_commits_ = 0;

  // Async commit queue (CommitAsync/Drain). queue_mu_ guards the deque and
  // flags; the committer thread is the only caller of Commit() while live.
  size_t max_pending_commits_ = 2;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingCommit> pending_ COACHLM_GUARDED_BY(queue_mu_);
  bool committer_stop_ COACHLM_GUARDED_BY(queue_mu_) = false;
  bool committer_busy_ COACHLM_GUARDED_BY(queue_mu_) = false;
  Status async_error_ COACHLM_GUARDED_BY(queue_mu_);
  std::thread committer_;
};

/// \brief Drives a chunked, crash-safe stage loop over \p records.
///
/// First restores the journaled prefix: each resumed line is decoded with
/// `decode(line, &record) -> bool`; an undecodable or oversized journal is
/// discarded (Finish) and the stage restarts from item 0, never resuming
/// into a mismatched run. The remainder is computed in interval-sized
/// chunks over \p exec with `compute(i) -> Record`, and each finished chunk
/// is journaled via `encode(record) -> std::string` + Commit, so a kill at
/// any point loses at most one chunk of work.
///
/// Returns the number of records restored from the journal rather than
/// recomputed. A journal-write failure never fails the loop (the stage
/// keeps its in-memory results, only crash-safety degrades); the last such
/// error is reported through \p commit_error when non-null.
/// Resource-governance knobs for RunGovernedCheckpointedLoop. All optional;
/// the zero value reproduces the ungoverned loop.
struct GovernedLoopOptions {
  /// Wall-clock budget / external cancellation. Checked at chunk
  /// boundaries and per item inside a chunk.
  const CancelToken* cancel = nullptr;
  /// Stall detector; Tick()ed once per completed item so a frozen stage is
  /// distinguishable from a slow one.
  StallWatchdog* watchdog = nullptr;
  /// Overlap chunk compute with journal IO through the checkpointer's
  /// bounded commit queue (backpressure caps memory at
  /// O(max_pending_commits x chunk), not O(corpus)).
  bool async_commits = false;
  /// Receives the last journal-write error (journal failures degrade
  /// crash-safety, never the stage results).
  Status* commit_error = nullptr;
};

/// What the governed loop did. `records[0, completed)` hold valid results
/// (restored + computed-and-committed); on cancellation the caller owns
/// quarantining `[completed, n)` — the loop has already ensured the
/// checkpoint covers exactly the completed prefix, so a later --resume
/// recomputes the remainder and lands byte-identical to an uninterrupted
/// run.
struct GovernedLoopResult {
  size_t restored = 0;
  size_t completed = 0;
  bool cancelled = false;
};

/// RunCheckpointedLoop with cancellation, stall detection, and commit
/// backpressure. Cancellation is chunk-atomic: a chunk whose compute
/// window overlapped the token tripping is discarded, not committed —
/// some of its items were skipped mid-flight, and journaling a partial
/// chunk would poison resume byte-identity.
template <typename Record, typename Compute, typename Encode, typename Decode>
GovernedLoopResult RunGovernedCheckpointedLoop(
    StageCheckpointer* checkpoint, const ExecutionContext& exec,
    std::vector<Record>* records, Compute&& compute, Encode&& encode,
    Decode&& decode, const GovernedLoopOptions& options = {}) {
  GovernedLoopResult result;
  const size_t n = records->size();
  size_t done = 0;
  const std::vector<std::string> lines = checkpoint->Resume();
  if (lines.size() <= n) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!decode(lines[i], &(*records)[i])) break;
      done = i + 1;
    }
  }
  if (done != lines.size()) {
    // A corrupt/mismatched journal means "start fresh"; if discarding it
    // fails too, the next Commit rewrites the manifest anyway.
    (void)checkpoint->Finish();
    done = 0;
  }
  result.restored = done;
  while (done < n) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    const size_t chunk_end = std::min(n, done + checkpoint->interval());
    exec.ParallelFor(
        chunk_end - done,
        [&](size_t k) {
          (*records)[done + k] = compute(done + k);
          if (options.watchdog != nullptr) options.watchdog->Tick();
        },
        /*grain=*/0, options.cancel);
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      // The token tripped while this chunk was in flight: some items were
      // skipped, so the chunk is partial. Discard it rather than journal
      // a hole.
      result.cancelled = true;
      break;
    }
    std::vector<std::string> chunk;
    chunk.reserve(chunk_end - done);
    for (size_t i = done; i < chunk_end; ++i) {
      chunk.push_back(encode((*records)[i]));
    }
    if (options.async_commits) {
      checkpoint->CommitAsync(chunk_end, std::move(chunk));
    } else {
      Status committed = checkpoint->Commit(chunk_end, chunk);
      if (!committed.ok() && options.commit_error != nullptr) {
        *options.commit_error = std::move(committed);
      }
    }
    done = chunk_end;
  }
  if (options.async_commits) {
    Status drained = checkpoint->Drain();
    if (!drained.ok() && options.commit_error != nullptr) {
      *options.commit_error = std::move(drained);
    }
  }
  result.completed = done;
  return result;
}

/// Ungoverned wrapper (the PR-2 era signature): no cancellation, no
/// watchdog, synchronous commits. Returns the restored-prefix length.
template <typename Record, typename Compute, typename Encode, typename Decode>
size_t RunCheckpointedLoop(StageCheckpointer* checkpoint,
                           const ExecutionContext& exec,
                           std::vector<Record>* records, Compute&& compute,
                           Encode&& encode, Decode&& decode,
                           Status* commit_error = nullptr) {
  GovernedLoopOptions options;
  options.commit_error = commit_error;
  return RunGovernedCheckpointedLoop(
             checkpoint, exec, records, std::forward<Compute>(compute),
             std::forward<Encode>(encode), std::forward<Decode>(decode),
             options)
      .restored;
}

}  // namespace coachlm

#endif  // COACHLM_COMMON_CHECKPOINT_H_
