#include "common/metrics.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "common/annotations.h"
#include "common/logging.h"

namespace coachlm {
namespace {

/// Character-length buckets for revised responses: powers of two up to 8k
/// chars, matching the corpus generator's response-size envelope. The last
/// catalog bucket is followed by an implicit overflow bucket.
constexpr int64_t kCharBuckets[] = {64, 128, 256, 512, 1024, 2048, 4096,
                                    8192};

/// Rating buckets on the 0-5 judge scale, stored as rating x 100 so the
/// histogram sum stays an order-independent integer.
constexpr int64_t kRatingBuckets[] = {50,  100, 150, 200, 250,
                                      300, 350, 400, 450, 500};

/// Request-latency buckets for the serve daemon (microseconds): sub-ms
/// admin/health responses up through multi-second revise bursts under
/// fault-plan latency. The last catalog bucket is followed by the implicit
/// overflow bucket.
constexpr int64_t kLatencyMicroBuckets[] = {
    100,    250,    500,     1000,    2500,    5000,   10000,
    25000,  50000,  100000,  250000,  500000,  1000000, 2500000};

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "counter";
}

const std::vector<MetricDef>& MetricCatalog() {
  // Sorted by name; registry maps and every serialized dump inherit this
  // order, which is what makes merge order invisible in the output.
  static const std::vector<MetricDef> kCatalog = {
      {"checkpoint.commits", MetricType::kCounter, "commits", "checkpoint",
       "Journal chunks committed (payload append + manifest rename)"},
      {"checkpoint.items_restored", MetricType::kCounter, "items",
       "checkpoint",
       "Items restored from a resumed journal instead of recomputed"},
      {"checkpoint.payload_bytes", MetricType::kCounter, "bytes",
       "checkpoint", "Serialized payload bytes appended to stage journals"},
      {"generate.items_dropped", MetricType::kCounter, "items", "generate",
       "Pairs dropped from the corpus after permanent collection failure"},
      {"generate.items_out", MetricType::kCounter, "items", "generate",
       "Pairs synthesized into the corpus"},
      {"io.bytes_read", MetricType::kCounter, "bytes", "io",
       "Corpus payload bytes read (mapped or buffered) across all backends"},
      {"io.bytes_written", MetricType::kCounter, "bytes", "io",
       "Corpus payload bytes written across all backends"},
      {"io.pool_dedup_hits", MetricType::kCounter, "strings", "io",
       "Strings deduplicated away by binary-block string pools"},
      {"io.records_read", MetricType::kCounter, "records", "io",
       "Instruction pairs decoded from corpus files"},
      {"io.records_written", MetricType::kCounter, "records", "io",
       "Instruction pairs encoded into corpus files"},
      {"io.shards_opened", MetricType::kCounter, "shards", "io",
       "Shard files opened through manifest readers"},
      {"judge.items_judged", MetricType::kCounter, "items", "judge",
       "Test-set items with a pairwise verdict"},
      {"judge.items_unjudged", MetricType::kCounter, "items", "judge",
       "Test-set items whose judgment failed permanently (quarantined)"},
      {"platform.batches", MetricType::kCounter, "batches", "platform",
       "Data-management batches cleaned end to end"},
      {"platform.cases_collected", MetricType::kCounter, "items", "platform",
       "Raw user cases collected from the serving stack"},
      {"platform.cases_dropped", MetricType::kCounter, "items", "platform",
       "Cases lost to unparseable logs or permanent collection failure"},
      {"platform.cases_quarantined", MetricType::kCounter, "items",
       "platform",
       "Cases that exhausted retries somewhere in the batch pipeline"},
      {"rate.items_analyzed", MetricType::kCounter, "items", "rate",
       "Pairs analyzed for the per-dimension quality report"},
      {"rate.items_in", MetricType::kCounter, "items", "rate",
       "Pairs scored by the ChatGPT-style 0-5 accuracy rater"},
      {"rate.rating_x100", MetricType::kHistogram, "rating_x100", "rate",
       "Distribution of 0-5 accuracy ratings, scaled by 100", kRatingBuckets,
       std::size(kRatingBuckets)},
      {"revise.items_changed", MetricType::kCounter, "items", "revise",
       "Pairs whose text the coach actually changed"},
      {"revise.items_in", MetricType::kCounter, "items", "revise",
       "Pairs entering the CoachLM revision pass"},
      {"revise.items_invalid_replaced", MetricType::kCounter, "items",
       "revise",
       "Invalid model outputs replaced with the original pair"},
      {"revise.items_leakage_skipped", MetricType::kCounter, "items",
       "revise",
       "Pairs adopted unchanged by the training-data leakage guard"},
      {"revise.items_quarantined", MetricType::kCounter, "items", "revise",
       "Pairs whose revision failed permanently (original kept)"},
      {"revise.items_recovered", MetricType::kCounter, "items", "revise",
       "Pairs that needed more than one attempt but recovered via retry"},
      {"revise.items_resumed", MetricType::kCounter, "items", "revise",
       "Pairs restored from a checkpoint instead of recomputed"},
      {"revise.response_chars", MetricType::kHistogram, "chars", "revise",
       "Distribution of revised response lengths in characters",
       kCharBuckets, std::size(kCharBuckets)},
      {"rules.automaton_states", MetricType::kGauge, "states", "rules",
       "States in the compiled rule automaton's dense DFA"},
      {"rules.compile_micros", MetricType::kCounter, "micros", "rules",
       "Time spent compiling rule stores into matcher tables"},
      {"rules.compiled", MetricType::kCounter, "compiles", "rules",
       "Rule-store compilations (one per CoachLm built with the compiled "
       "engine)"},
      {"rules.matches_fired", MetricType::kCounter, "matches", "rules",
       "Compiled rules that fired (actually edited text) during revision"},
      {"rules.patterns", MetricType::kGauge, "patterns", "rules",
       "Searchable patterns in the compiled rule automaton"},
      {"rules.prefilter_rejected", MetricType::kCounter, "checks", "rules",
       "Rule probes rejected by the O(1) fingerprint prefilter before any "
       "string work"},
      {"runtime.attempts_total", MetricType::kCounter, "attempts", "runtime",
       "Attempts consumed across all fault-tolerant Run() envelopes"},
      {"runtime.quarantined.collect", MetricType::kCounter, "items",
       "runtime", "Records quarantined at the collect site"},
      {"runtime.quarantined.io", MetricType::kCounter, "items", "runtime",
       "Records quarantined at the io site (journal/save failures)"},
      {"runtime.quarantined.judge", MetricType::kCounter, "items", "runtime",
       "Records quarantined at the judge site"},
      {"runtime.quarantined.parse", MetricType::kCounter, "items", "runtime",
       "Records quarantined at the parse site"},
      {"runtime.quarantined.revise", MetricType::kCounter, "items", "runtime",
       "Records quarantined at the revise site"},
      {"runtime.quarantined.serve.accept", MetricType::kCounter, "items",
       "runtime", "Connections quarantined at the serve.accept site"},
      {"runtime.quarantined.serve.parse", MetricType::kCounter, "items",
       "runtime", "Requests quarantined at the serve.parse site"},
      {"runtime.quarantined.serve.revise", MetricType::kCounter, "items",
       "runtime", "Served records quarantined at the serve.revise site"},
      {"runtime.quarantined.tune", MetricType::kCounter, "items", "runtime",
       "Records quarantined at the tune site"},
      {"runtime.records_quarantined", MetricType::kCounter, "items",
       "runtime",
       "Records routed to the quarantine log after permanent failure"},
      {"runtime.records_recovered", MetricType::kCounter, "items", "runtime",
       "Records that recovered via retry after transient failures"},
      {"runtime.retry_backoff_micros", MetricType::kCounter, "micros",
       "runtime",
       "Deterministic backoff scheduled between retry attempts"},
      {"serve.chaos.eintr_injected", MetricType::kCounter, "ops", "serve",
       "Socket syscalls interrupted with an injected EINTR (chaos.eintr)"},
      {"serve.chaos.reads_disturbed", MetricType::kCounter, "ops", "serve",
       "Socket reads dripped one byte at a time (chaos.read slowloris)"},
      {"serve.chaos.rst_closes", MetricType::kCounter, "connections",
       "serve",
       "Connections torn down with a hard TCP RST instead of a clean close "
       "(chaos.rst)"},
      {"serve.chaos.stalls_injected", MetricType::kCounter, "ops", "serve",
       "Socket operations delayed by an injected peer stall (chaos.stall)"},
      {"serve.chaos.writes_torn", MetricType::kCounter, "ops", "serve",
       "Socket writes truncated to force partial-write handling "
       "(chaos.write)"},
      {"serve.client.recovered", MetricType::kCounter, "requests", "serve",
       "Client requests that succeeded only after at least one retry"},
      {"serve.client.retries", MetricType::kCounter, "attempts", "serve",
       "Retry attempts the resilient client scheduled beyond the first"},
      {"serve.connections_accepted", MetricType::kCounter, "connections",
       "serve", "Client connections accepted by the serve listener"},
      {"serve.latency_admin_micros", MetricType::kHistogram, "micros",
       "serve", "Request latency of the /admin/reload endpoint",
       kLatencyMicroBuckets, std::size(kLatencyMicroBuckets)},
      {"serve.latency_health_micros", MetricType::kHistogram, "micros",
       "serve",
       "Request latency of the /healthz, /v1/model and /metrics endpoints",
       kLatencyMicroBuckets, std::size(kLatencyMicroBuckets)},
      {"serve.latency_revise_micros", MetricType::kHistogram, "micros",
       "serve", "Request latency of the /v1/revise endpoint",
       kLatencyMicroBuckets, std::size(kLatencyMicroBuckets)},
      {"serve.queue_depth_peak", MetricType::kGauge, "requests", "serve",
       "High-water mark of the admission queue since startup"},
      {"serve.records_in", MetricType::kCounter, "records", "serve",
       "Instruction pairs received in /v1/revise request bodies"},
      {"serve.records_quarantined", MetricType::kCounter, "records", "serve",
       "Served records that failed revision permanently (original returned)"},
      {"serve.records_revised", MetricType::kCounter, "records", "serve",
       "Instruction pairs revised and returned by /v1/revise"},
      {"serve.reloads_ok", MetricType::kCounter, "reloads", "serve",
       "Hot model reloads that validated and swapped the coach artifact"},
      {"serve.reloads_rejected", MetricType::kCounter, "reloads", "serve",
       "Hot model reloads rejected (torn/invalid artifact; old model kept)"},
      {"serve.requests_client_error", MetricType::kCounter, "requests",
       "serve", "Requests answered with a typed 4xx (hostile body, bad "
       "endpoint, oversized payload)"},
      {"serve.requests_deadline_exceeded", MetricType::kCounter, "requests",
       "serve", "Requests cancelled by the per-request deadline (504)"},
      {"serve.requests_ok", MetricType::kCounter, "requests", "serve",
       "Requests answered with 2xx"},
      {"serve.requests_server_error", MetricType::kCounter, "requests",
       "serve", "Requests answered with 5xx (injected accept/parse faults, "
       "internal errors)"},
      {"serve.requests_shed", MetricType::kCounter, "requests", "serve",
       "Connections shed with 429 + Retry-After because the admission "
       "queue was full"},
      {"serve.supervisor.circuit_opened", MetricType::kCounter, "events",
       "serve",
       "Restart circuit-breaker trips (too many worker crashes in the "
       "window; the supervisor exits)"},
      {"serve.supervisor.restart_backoff_micros", MetricType::kCounter,
       "micros", "serve",
       "Deterministic backoff scheduled before worker respawns"},
      {"serve.supervisor.workers_crashed", MetricType::kCounter, "workers",
       "serve",
       "Worker processes that died (signal or nonzero exit) outside drain"},
      {"serve.supervisor.workers_respawned", MetricType::kCounter, "workers",
       "serve", "Worker processes respawned after a crash"},
      {"serve.supervisor.workers_spawned", MetricType::kCounter, "workers",
       "serve", "Worker processes forked by the supervisor (initial fleet "
       "plus respawns)"},
      {"study.items_excluded", MetricType::kCounter, "items", "study",
       "Sampled pairs screened out by the Table III exclusion filter"},
      {"study.items_revised", MetricType::kCounter, "items", "study",
       "Sampled pairs the simulated experts revised"},
      {"study.items_sampled", MetricType::kCounter, "items", "study",
       "Pairs sampled into the expert revision study"},
      {"train.alpha_x1000", MetricType::kGauge, "ratio_x1000", "train",
       "Revision-distance selection ratio alpha, scaled by 1000"},
      {"train.coach_samples", MetricType::kCounter, "items", "train",
       "Coach-tuning samples in the alpha-selected training set C_alpha"},
      {"train.revision_pairs", MetricType::kCounter, "items", "train",
       "Expert revision records offered to coach training"},
      {"tune.items_rated", MetricType::kCounter, "items", "tune",
       "Pairs rated while measuring a training set's alignment profile"},
      {"tune.models_tuned", MetricType::kCounter, "models", "tune",
       "Instruction-tuned models materialized from training sets"},
  };
  return kCatalog;
}

MetricHistogram::MetricHistogram(const int64_t* bounds, size_t num_bounds)
    : bounds_(bounds, bounds + num_bounds), counts_(num_bounds + 1) {}

void MetricHistogram::Observe(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Status MetricHistogram::MergeFrom(const std::vector<int64_t>& counts,
                                  int64_t sum) {
  if (counts.size() != counts_.size()) {
    return Status::InvalidArgument(
        "histogram merge: " + std::to_string(counts.size()) +
        " bucket counts, want " + std::to_string(counts_.size()));
  }
  uint64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0) {
      return Status::InvalidArgument("histogram merge: negative bucket count");
    }
    counts_[i].fetch_add(static_cast<uint64_t>(counts[i]),
                         std::memory_order_relaxed);
    total += static_cast<uint64_t>(counts[i]);
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<uint64_t> MetricHistogram::counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void MetricHistogram::Reset() {
  for (std::atomic<uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  for (const MetricDef& def : MetricCatalog()) {
    switch (def.type) {
      case MetricType::kCounter:
        counters_.emplace(std::piecewise_construct,
                          std::forward_as_tuple(def.name),
                          std::forward_as_tuple());
        break;
      case MetricType::kGauge:
        gauges_.emplace(std::piecewise_construct,
                        std::forward_as_tuple(def.name),
                        std::forward_as_tuple());
        break;
      case MetricType::kHistogram:
        histograms_.emplace(
            std::piecewise_construct, std::forward_as_tuple(def.name),
            std::forward_as_tuple(def.buckets, def.num_buckets));
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// A lookup miss is a deliberate no-op in release builds (instrumentation
/// must never take a run down), but in debug builds it is almost always a
/// typo'd or stale name, so each distinct miss logs one warning per
/// process. Lives behind an atomic so release call sites pay one relaxed
/// load when the default is off.
std::atomic<bool> g_warn_unknown_names{
#ifdef NDEBUG
    false
#else
    true
#endif
};

std::mutex g_warned_names_mu;

void WarnUnknownMetricName(const char* kind, const std::string& name) {
  if (!g_warn_unknown_names.load(std::memory_order_relaxed)) return;
  {
    static std::set<std::string>* warned
        COACHLM_GUARDED_BY(g_warned_names_mu) = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(g_warned_names_mu);
    if (!warned->insert(name).second) return;  // already warned once
  }
  LogMessage(LogLevel::kWarning,
             std::string("metric name \"") + name + "\" is not a registered " +
                 kind +
                 " in the MetricCatalog (src/common/metrics.cc); the lookup "
                 "is a no-op");
}

}  // namespace

void MetricsRegistry::set_warn_on_unknown_names(bool warn) {
  g_warn_unknown_names.store(warn, std::memory_order_relaxed);
}

Counter* MetricsRegistry::FindCounter(const std::string& name) {
  if (!enabled()) return nullptr;
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    WarnUnknownMetricName("counter", name);
    return nullptr;
  }
  return &it->second;
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) {
  if (!enabled()) return nullptr;
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    WarnUnknownMetricName("gauge", name);
    return nullptr;
  }
  return &it->second;
}

MetricHistogram* MetricsRegistry::FindHistogram(const std::string& name) {
  if (!enabled()) return nullptr;
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    WarnUnknownMetricName("histogram", name);
    return nullptr;
  }
  return &it->second;
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

json::Value MetricsRegistry::ToJson() const {
  json::Object counters;
  for (const auto& [name, counter] : counters_) {
    if (counter.value() == 0) continue;
    counters[name] = json::Value(counter.value() <= INT64_MAX
                                     ? static_cast<int64_t>(counter.value())
                                     : INT64_MAX);
  }
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    if (gauge.value() == 0) continue;
    gauges[name] = json::Value(gauge.value());
  }
  json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    if (histogram.count() == 0) continue;
    json::Object h;
    json::Array buckets;
    for (const int64_t b : histogram.bounds()) buckets.push_back(json::Value(b));
    json::Array counts;
    for (const uint64_t c : histogram.counts()) {
      counts.push_back(json::Value(static_cast<int64_t>(c)));
    }
    h["buckets"] = json::Value(std::move(buckets));
    h["counts"] = json::Value(std::move(counts));
    h["count"] = json::Value(static_cast<int64_t>(histogram.count()));
    h["sum"] = json::Value(histogram.sum());
    histograms[name] = json::Value(std::move(h));
  }
  json::Object out;
  out["counters"] = json::Value(std::move(counters));
  out["gauges"] = json::Value(std::move(gauges));
  out["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(out));
}

std::string MetricsRegistry::CatalogDump() {
  std::string out;
  for (const MetricDef& def : MetricCatalog()) {
    out += def.name;
    out += '\t';
    out += MetricTypeName(def.type);
    out += '\t';
    out += def.unit;
    out += '\t';
    out += def.stage;
    out += '\t';
    out += def.help;
    out += '\n';
  }
  return out;
}

void CountMetric(const std::string& name, uint64_t delta) {
  if (Counter* counter = MetricsRegistry::Default().FindCounter(name)) {
    counter->Add(delta);
  }
}

void SetGaugeMetric(const std::string& name, int64_t value) {
  if (Gauge* gauge = MetricsRegistry::Default().FindGauge(name)) {
    gauge->Set(value);
  }
}

void ObserveMetric(const std::string& name, int64_t value) {
  if (MetricHistogram* histogram = MetricsRegistry::Default().FindHistogram(name)) {
    histogram->Observe(value);
  }
}

}  // namespace coachlm
