#include "common/trace.h"

namespace coachlm {

Trace::Trace(Clock* clock)
    : clock_(clock != nullptr ? clock : Clock::System()) {}

void Trace::set_clock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock != nullptr ? clock : Clock::System();
}

int Trace::BeginSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMicros();
  if (!epoch_set_) {
    epoch_micros_ = now;
    epoch_set_ = true;
  }
  Span span;
  span.name = name;
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.start_micros = now - epoch_micros_;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  return id;
}

void Trace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  const int64_t now = clock_->NowMicros() - epoch_micros_;
  // Pop everything above (and including) the span: a stage that returned
  // early leaves its descendants open, and closing them here at the same
  // instant keeps the parent/child accounting consistent.
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (spans_[top].duration_micros < 0) {
      spans_[top].duration_micros = now - spans_[top].start_micros;
    }
    if (top == id) break;
  }
}

std::vector<Trace::Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

json::Value Trace::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array spans;
  for (const Span& span : spans_) {
    json::Object s;
    s["name"] = json::Value(span.name);
    s["parent"] = json::Value(static_cast<int64_t>(span.parent));
    s["start_micros"] = json::Value(span.start_micros);
    // An open span serializes with the duration it has accrued so far;
    // the report writer closes the root before serializing, so this only
    // shows up for crashed/partial traces.
    s["duration_micros"] = json::Value(
        span.duration_micros >= 0
            ? span.duration_micros
            : clock_->NowMicros() - epoch_micros_ - span.start_micros);
    spans.push_back(json::Value(std::move(s)));
  }
  return json::Value(std::move(spans));
}

void Trace::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  stack_.clear();
  epoch_set_ = false;
  epoch_micros_ = 0;
}

Observability::Observability() : clock_(Clock::System()), trace_(clock_) {}

Observability& Observability::Default() {
  static Observability* observability = new Observability();
  return *observability;
}

void Observability::Enable(bool deterministic) {
  deterministic_ = deterministic;
  if (deterministic) {
    // One fixed-step clock per enablement: span timings become a pure
    // function of the span structure, which is what lets seeded reports
    // byte-compare across runs and thread counts.
    stepping_ = std::make_unique<SteppingClock>(/*step_micros=*/1000);
    clock_ = stepping_.get();
  } else {
    clock_ = Clock::System();
  }
  trace_.Reset();
  trace_.set_clock(clock_);
  metrics().Reset();
  metrics().set_enabled(true);
  enabled_.store(true, std::memory_order_relaxed);
}

void Observability::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  metrics().set_enabled(false);
  metrics().Reset();
  trace_.Reset();
  deterministic_ = false;
  clock_ = Clock::System();
  trace_.set_clock(clock_);
  stepping_.reset();
}

}  // namespace coachlm
