#ifndef COACHLM_COMMON_LOGGING_H_
#define COACHLM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace coachlm {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// \brief Returns the current minimum severity.
LogLevel GetLogLevel();

/// \brief Emits one log line to stderr if \p level passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log statement builder; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace coachlm

/// Stream-style logging macros: COACHLM_LOG_INFO << "...";
#define COACHLM_LOG(severity) \
  ::coachlm::internal::LogStream(::coachlm::LogLevel::k##severity)

#define COACHLM_LOG_DEBUG COACHLM_LOG(Debug)
#define COACHLM_LOG_INFO COACHLM_LOG(Info)
#define COACHLM_LOG_WARN COACHLM_LOG(Warning)
#define COACHLM_LOG_ERROR COACHLM_LOG(Error)

#endif  // COACHLM_COMMON_LOGGING_H_
