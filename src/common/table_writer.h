#ifndef COACHLM_COMMON_TABLE_WRITER_H_
#define COACHLM_COMMON_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace coachlm {

/// \brief Accumulates rows and renders an aligned ASCII / GitHub-Markdown
/// table.
///
/// The benchmark harness uses this to print each reproduced paper table in a
/// diff-friendly, fixed-width format.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Formats a double with \p decimals fraction digits.
  static std::string Num(double value, int decimals = 1);

  /// Formats a ratio in [0,1] as a percentage string like "17.7%".
  static std::string Pct(double ratio, int decimals = 1);

  /// Renders the table with box-drawing in plain ASCII.
  std::string ToAscii() const;

  /// Renders the table as GitHub-flavored Markdown.
  std::string ToMarkdown() const;

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
  std::vector<size_t> ComputeWidths() const;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_TABLE_WRITER_H_
