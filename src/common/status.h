#ifndef COACHLM_COMMON_STATUS_H_
#define COACHLM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace coachlm {

/// \brief Machine-readable error category carried by a Status.
///
/// The set mirrors the failure modes of the CoachLM pipeline: I/O against
/// dataset files, malformed serialized data, invalid user configuration,
/// precondition violations inside pipeline stages, and missing entities
/// (e.g. an unknown task category).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  kNotImplemented,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a value.
///
/// Follows the Arrow/RocksDB idiom: library entry points never throw across
/// the API boundary; they return Status (or Result<T>, see result.h) and the
/// caller decides how to react. A default-constructed Status is OK and
/// carries no allocation.
///
/// The class is [[nodiscard]]: every function returning a Status by value
/// is implicitly warn-on-discard, so an ignored error is a compile error
/// under -Werror. Intentional drops must be spelled `(void)` with a comment
/// saying why (coachlm_lint enforces the same contract textually).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  [[nodiscard]] static Status OK() { return Status(); }

  /// \name Factory helpers, one per error code.
  /// @{
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// @}

  /// Returns true when the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// True for failures that a retry may clear: a backend being briefly
  /// unavailable, a call exceeding its deadline, or an I/O hiccup. The
  /// retry layer (retry.h) only re-attempts transient failures; everything
  /// else (bad data, bad config) fails fast.
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kIoError;
  }

  /// Returns the status code.
  StatusCode code() const { return code_; }

  /// Returns the error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Propagates a non-OK Status from the current function.
#define COACHLM_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::coachlm::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace coachlm

#endif  // COACHLM_COMMON_STATUS_H_
