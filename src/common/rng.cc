#include "common/rng.h"

#include <cmath>

namespace coachlm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_cache_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  gauss_cache_ = radius * std::sin(angle);
  have_gauss_ = true;
  return mean + stddev * radius * std::cos(angle);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0 || weights.empty()) return 0;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace coachlm
