#include "common/threadpool.h"

#include <atomic>

namespace coachlm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk into roughly 4 tasks per worker to amortize queue overhead while
  // keeping load balance for non-uniform work (long responses revise slower).
  const size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&, n] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace coachlm
