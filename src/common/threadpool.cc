#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace coachlm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

// std::unique_lock + condition_variable are unannotated in the standard
// library, so clang's analysis cannot see the lock; the lint rule still
// covers the lexical scope.
void ThreadPool::Wait() COACHLM_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (n == 0) return;
  const size_t runners = workers_.size() + 1;  // workers + calling thread
  if (grain == 0) {
    // ~8 chunks per runner: coarse enough to amortize the queue mutex,
    // fine enough to load-balance non-uniform work (long responses revise
    // slower than short ones).
    grain = std::max<size_t>(1, n / (runners * 8));
  }
  const size_t num_chunks = (n + grain - 1) / grain;

  // Per-call completion state: concurrent ParallelFor calls on the same
  // pool must not wait on each other's tasks (the shared in_flight_
  // counter in Wait() would).
  struct CallState {
    std::atomic<size_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t active_helpers = 0;
  };
  auto state = std::make_shared<CallState>();

  auto run_chunks = [state, n, grain, num_chunks, &fn] {
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1,
                                                   std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * grain;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  };

  const size_t helpers =
      std::min(workers_.size(), num_chunks > 0 ? num_chunks - 1 : size_t{0});
  state->active_helpers = helpers;
  for (size_t t = 0; t < helpers; ++t) {
    Submit([state, run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->active_helpers == 0) state->done_cv.notify_all();
    });
  }
  run_chunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->active_helpers == 0; });
}

// See Wait(): the cv wait loop is invisible to clang's analysis.
void ThreadPool::WorkerLoop() COACHLM_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace coachlm
