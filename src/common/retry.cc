#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/execution.h"
#include "common/rng.h"

namespace coachlm {

int64_t RetryPolicy::BackoffMicros(int next_attempt,
                                   uint64_t jitter_key) const {
  if (next_attempt <= 1 || initial_backoff_us <= 0) return 0;
  double backoff = static_cast<double>(initial_backoff_us) *
                   std::pow(backoff_multiplier,
                            static_cast<double>(next_attempt - 2));
  backoff = std::min(backoff, static_cast<double>(max_backoff_us));
  // Deterministic jitter in [0.5, 1.0): decorrelates retry storms across
  // items without introducing schedule-dependent randomness.
  Rng rng = DeriveRng(jitter_key, static_cast<uint64_t>(next_attempt));
  const double jitter = 0.5 + 0.5 * rng.NextDouble();
  return static_cast<int64_t>(backoff * jitter);
}

}  // namespace coachlm
