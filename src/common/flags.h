#ifndef COACHLM_COMMON_FLAGS_H_
#define COACHLM_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace coachlm {

/// \brief Minimal command-line parser for the coachlm CLI.
///
/// Grammar: `tool <command> [--name value]... [--switch]... [positional]...`
/// Flags may be written `--name value` or `--name=value`. Unknown flags
/// are an error at Parse time so typos fail fast.
class Flags {
 public:
  /// Parses argv[1..]; \p known lists every accepted flag name (without
  /// the leading dashes). The first non-flag token becomes the command.
  static Result<Flags> Parse(int argc, const char* const* argv,
                             const std::vector<std::string>& known);

  /// The leading subcommand ("train", "revise", ...); empty when absent.
  const std::string& command() const { return command_; }

  /// True when --name was present (with or without a value).
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// String value of --name, or \p fallback when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric value of --name, or \p fallback when absent/unparseable.
  double GetDouble(const std::string& name, double fallback) const;

  /// Integer value of --name, or \p fallback when absent/unparseable.
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Strict integer value of --name: \p fallback when absent, but a
  /// present, non-integer value ("abc", "3x", "1.5", empty) is an
  /// InvalidArgument instead of silently becoming the fallback. CLI flag
  /// validation uses this so typos fail the invocation with a usage
  /// error rather than running with a default the user did not ask for.
  Result<int64_t> GetIntStrict(const std::string& name,
                               int64_t fallback) const;

  /// Positional arguments after the command.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_FLAGS_H_
