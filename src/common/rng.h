#ifndef COACHLM_COMMON_RNG_H_
#define COACHLM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace coachlm {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**) with
/// splitmix64 seeding.
///
/// Every stochastic component of the pipeline (corpus generation, defect
/// injection, expert behaviour, judge noise) takes an explicit Rng so that
/// any experiment is reproducible from a single seed. Satisfies the
/// UniformRandomBitGenerator concept so it can feed <random> distributions,
/// although the member helpers below are preferred for cross-platform
/// determinism (libstdc++/libc++ distributions differ; ours do not).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds yield equal streams on any platform.
  explicit Rng(uint64_t seed = 42);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next raw 64-bit value.
  uint64_t operator()() { return Next(); }

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). \p bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability \p p (clamped to [0, 1]).
  bool NextBool(double p);

  /// Returns a normal deviate (Box-Muller) with the given mean and stddev.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// Returns an index drawn from the categorical distribution given by
  /// \p weights (need not be normalized; non-positive total yields 0).
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniformly random element. Requires a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(NextBelow(items.size()))];
  }

  /// Derives an independent child generator; used to give each pipeline
  /// stage its own stream so stages stay reproducible when reordered.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_RNG_H_
