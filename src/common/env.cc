#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace coachlm {

double ExperimentScale() {
  static const double scale = [] {
    const char* value = std::getenv("COACHLM_SCALE");
    if (value == nullptr) return 1.0;
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || parsed <= 0.0 || parsed > 1.0) return 1.0;
    return parsed;
  }();
  return scale;
}

size_t Scaled(size_t n, size_t floor) {
  const double scaled = static_cast<double>(n) * ExperimentScale();
  return std::max(floor, static_cast<size_t>(scaled));
}

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace coachlm
