#include "common/cancel.h"

#include <chrono>

namespace coachlm {

void StallWatchdog::Start(int64_t poll_interval_micros) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  // The unique_lock/wait_for dance is unannotated in the standard library,
  // so the lambda opts out of clang's analysis; the lint rule still sees
  // the lexical scope.
  thread_ = std::thread([this,
                         poll_interval_micros]() COACHLM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> wait_lock(thread_mu_);
    while (!stopping_) {
      // Real-time wait (not clock_->SleepMicros): the watchdog must keep
      // polling even while governed work is blocked, and must wake
      // promptly on Stop().
      thread_cv_.wait_for(wait_lock,
                          std::chrono::microseconds(poll_interval_micros),
                          [this] { return stopping_; });
      if (stopping_) break;
      wait_lock.unlock();
      Poll();
      wait_lock.lock();
    }
  });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
}

}  // namespace coachlm
