#include "common/quarantine.h"

#include <algorithm>
#include <tuple>

#include "common/metrics.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

Result<StatusCode> StatusCodeFromString(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

}  // namespace

json::Value QuarantineRecord::ToJson() const {
  json::Object o;
  o["item_id"] = json::Value(static_cast<int64_t>(item_id));
  o["site"] = json::Value(FaultSiteToString(site));
  o["code"] = json::Value(StatusCodeToString(code));
  o["message"] = json::Value(message);
  o["attempts"] = json::Value(attempts);
  return json::Value(std::move(o));
}

Result<QuarantineRecord> QuarantineRecord::FromJson(const json::Value& value) {
  QuarantineRecord record;
  COACHLM_ASSIGN_OR_RETURN(double id, value.GetNumber("item_id"));
  record.item_id = static_cast<uint64_t>(id);
  COACHLM_ASSIGN_OR_RETURN(std::string site, value.GetString("site"));
  COACHLM_ASSIGN_OR_RETURN(record.site, FaultSiteFromString(site));
  COACHLM_ASSIGN_OR_RETURN(std::string code, value.GetString("code"));
  COACHLM_ASSIGN_OR_RETURN(record.code, StatusCodeFromString(code));
  COACHLM_ASSIGN_OR_RETURN(record.message, value.GetString("message"));
  COACHLM_ASSIGN_OR_RETURN(double attempts, value.GetNumber("attempts"));
  record.attempts = static_cast<int>(attempts);
  return record;
}

void QuarantineLog::Add(QuarantineRecord record) {
  CountMetric("runtime.records_quarantined");
  // FaultSite is a closed enum, so every possible name here has a static
  // catalog entry (runtime.quarantined.<site>).
  CountMetric(std::string("runtime.quarantined.") +
              FaultSiteToString(record.site));
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

size_t QuarantineLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<QuarantineRecord> QuarantineLog::records() const {
  std::vector<QuarantineRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = records_;
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const QuarantineRecord& a, const QuarantineRecord& b) {
              return std::tie(a.site, a.item_id, a.message) <
                     std::tie(b.site, b.item_id, b.message);
            });
  return snapshot;
}

Status QuarantineLog::Save(const std::string& path) const {
  std::vector<json::Value> lines;
  for (const QuarantineRecord& record : records()) {
    lines.push_back(record.ToJson());
  }
  return json::SaveJsonl(path, lines);
}

Result<std::vector<QuarantineRecord>> QuarantineLog::Load(
    const std::string& path) {
  COACHLM_ASSIGN_OR_RETURN(std::vector<json::Value> lines,
                           json::LoadJsonl(path));
  std::vector<QuarantineRecord> records;
  records.reserve(lines.size());
  for (const json::Value& line : lines) {
    COACHLM_ASSIGN_OR_RETURN(QuarantineRecord record,
                             QuarantineRecord::FromJson(line));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace coachlm
