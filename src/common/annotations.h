#ifndef COACHLM_COMMON_ANNOTATIONS_H_
#define COACHLM_COMMON_ANNOTATIONS_H_

/// \file
/// \brief Thread-safety annotation macros, checked twice.
///
/// Annotating a field with COACHLM_GUARDED_BY(mu) (and a
/// held-lock-required helper with COACHLM_REQUIRES(mu)) feeds two
/// independent analyses:
///
///  1. coachlm_lint's concurrency-guarded-field rule (tools/lint) — a
///     lexical check that runs on every compiler, in every CI leg, and in
///     tests. It tracks lock_guard/unique_lock/scoped_lock scopes and
///     flags any access to an annotated field outside one.
///  2. Clang's -Wthread-safety analysis — precise (path-sensitive,
///     understands unlock()) but only available under clang. The
///     COACHLM_THREAD_SAFETY CMake option turns it on in the dedicated CI
///     leg.
///
/// Under compilers without the attribute (GCC in the dev container) the
/// macros expand to nothing and only the lint rule applies.
///
/// COACHLM_NO_THREAD_SAFETY_ANALYSIS exists because libc++/libstdc++ do
/// not annotate std::unique_lock or condition_variable waits: functions
/// built around cv.wait(lock, ...) are invisible to clang's analysis and
/// must opt out of it. The lint rule still covers them — the two checkers
/// are deliberately complementary.

#if defined(__clang__) && (!defined(SWIG))
#define COACHLM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define COACHLM_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares that the annotated field may only be read or written while
/// holding \p x.
#define COACHLM_GUARDED_BY(x) COACHLM_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that callers must hold \p x (and any further arguments)
/// before calling the annotated function.
#define COACHLM_REQUIRES(...) \
  COACHLM_THREAD_ANNOTATION__(exclusive_locks_required(__VA_ARGS__))

/// Opts one function out of clang's analysis — for condition-variable
/// wait loops the standard library leaves unannotated. Use sparingly and
/// say why in a comment; the lint rule still applies.
#define COACHLM_NO_THREAD_SAFETY_ANALYSIS \
  COACHLM_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // COACHLM_COMMON_ANNOTATIONS_H_
