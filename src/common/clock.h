#ifndef COACHLM_COMMON_CLOCK_H_
#define COACHLM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace coachlm {

/// \brief Injectable time source for the retry/backoff layer.
///
/// Production code uses SystemClock (steady_clock + real sleeps); tests
/// inject a FakeClock so retry schedules are asserted without sleeping.
/// Implementations must be safe to call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now, in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread for \p micros microseconds.
  virtual void SleepMicros(int64_t micros) = 0;

  /// The process-wide real clock.
  static Clock* System();
};

/// \brief Deterministic clock that advances a fixed step on every
/// NowMicros() read (and by the requested amount on SleepMicros).
///
/// The observability layer's deterministic report mode runs its span
/// timings on this clock: stage spans are opened and closed serially by
/// the driver thread, so the *sequence* of reads — and therefore every
/// reported duration — is a pure function of the program structure, never
/// of the scheduler or the hardware. Two runs of the same seeded command
/// produce byte-identical reports at any thread count.
class SteppingClock : public Clock {
 public:
  explicit SteppingClock(int64_t step_micros = 1000, int64_t start_micros = 0)
      : step_(step_micros), now_(start_micros) {}

  /// Returns the current time, then advances it by the step.
  int64_t NowMicros() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed);
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_relaxed);
  }

  int64_t step_micros() const { return step_; }

 private:
  int64_t step_;
  mutable std::atomic<int64_t> now_;
};

/// \brief Deterministic clock for tests: SleepMicros advances time
/// instantly, so backoff schedules are observable without real delay.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Total virtual time slept since construction minus the start offset.
  int64_t elapsed_micros() const { return NowMicros(); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_CLOCK_H_
