#ifndef COACHLM_COMMON_CLOCK_H_
#define COACHLM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace coachlm {

/// \brief Injectable time source for the retry/backoff layer.
///
/// Production code uses SystemClock (steady_clock + real sleeps); tests
/// inject a FakeClock so retry schedules are asserted without sleeping.
/// Implementations must be safe to call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now, in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread for \p micros microseconds.
  virtual void SleepMicros(int64_t micros) = 0;

  /// The process-wide real clock.
  static Clock* System();
};

/// \brief Deterministic clock for tests: SleepMicros advances time
/// instantly, so backoff schedules are observable without real delay.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Total virtual time slept since construction minus the start offset.
  int64_t elapsed_micros() const { return NowMicros(); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_CLOCK_H_
