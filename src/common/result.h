#ifndef COACHLM_COMMON_RESULT_H_
#define COACHLM_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace coachlm {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// This is the value-returning counterpart of Status. Accessing the value of
/// an errored Result is a programming error and asserts in debug builds.
///
/// \code
///   Result<InstructionDataset> r = InstructionDataset::LoadJson(path);
///   if (!r.ok()) return r.status();
///   InstructionDataset ds = std::move(r).ValueOrDie();
/// \endcode
///
/// Like Status, the class is [[nodiscard]]: discarding a Result silently
/// drops the error it may carry, so call sites must consume it or cast to
/// `(void)` with a justification.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. \p status must not be OK.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok());
  }

  /// Returns true when a value is held.
  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the held status (OK when a value is held).
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Returns a reference to the held value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(state_);
  }

  /// Returns a mutable reference to the held value. Requires ok().
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(state_);
  }

  /// Moves the held value out. Requires ok().
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  /// Returns the held value or \p fallback when errored.
  T ValueOr(T fallback) const& {
    if (ok()) return std::get<T>(state_);
    return fallback;
  }

  /// Dereference sugar; requires ok().
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

/// \brief Assigns the value of a Result expression to \p lhs or propagates
/// its error Status from the current function.
#define COACHLM_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto COACHLM_CONCAT_(result_, __LINE__) = (rexpr);      \
  if (!COACHLM_CONCAT_(result_, __LINE__).ok())           \
    return COACHLM_CONCAT_(result_, __LINE__).status();   \
  lhs = std::move(COACHLM_CONCAT_(result_, __LINE__)).ValueOrDie()

#define COACHLM_CONCAT_IMPL_(a, b) a##b
#define COACHLM_CONCAT_(a, b) COACHLM_CONCAT_IMPL_(a, b)

}  // namespace coachlm

#endif  // COACHLM_COMMON_RESULT_H_
