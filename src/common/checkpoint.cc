#include "common/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/metrics.h"
#include "json/json.h"
#include "json/jsonl.h"

namespace coachlm {

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    out << content;
    out.flush();
    if (!out) return Status::IoError("write failure on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

std::string ConfigFingerprint(const std::string& description) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : description) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string ShardStageName(const std::string& stage, size_t shard_index,
                           size_t shard_count) {
  const auto pad5 = [](size_t value) {
    std::string digits = std::to_string(value);
    if (digits.size() < 5) digits.insert(0, 5 - digits.size(), '0');
    return digits;
  };
  return stage + ".shard-" + pad5(shard_index) + "-of-" + pad5(shard_count);
}

StageCheckpointer::StageCheckpointer(std::string dir, std::string stage,
                                     std::string fingerprint, size_t interval)
    : dir_(std::move(dir)),
      stage_(std::move(stage)),
      fingerprint_(std::move(fingerprint)),
      interval_(interval == 0 ? 2048 : interval) {
  if (enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
}

std::string StageCheckpointer::manifest_path() const {
  return (std::filesystem::path(dir_) / (stage_ + ".manifest.json")).string();
}

std::string StageCheckpointer::payload_path() const {
  return (std::filesystem::path(dir_) / (stage_ + ".ckpt.jsonl")).string();
}

std::vector<std::string> StageCheckpointer::Resume() {
  resumed_ = false;
  payload_bytes_ = 0;
  completed_ = 0;
  if (!enabled()) return {};

  const Result<std::string> manifest_text = json::ReadFile(manifest_path());
  if (!manifest_text.ok()) return {};
  const Result<json::Value> manifest = json::Parse(*manifest_text);
  if (!manifest.ok()) return {};
  const Result<std::string> stage = manifest->GetString("stage");
  const Result<std::string> fingerprint = manifest->GetString("fingerprint");
  const Result<double> completed = manifest->GetNumber("completed");
  const Result<double> payload_bytes = manifest->GetNumber("payload_bytes");
  if (!stage.ok() || !fingerprint.ok() || !completed.ok() ||
      !payload_bytes.ok() || *stage != stage_ ||
      *fingerprint != fingerprint_) {
    return {};
  }

  Result<std::string> payload = json::ReadFile(payload_path());
  if (!payload.ok()) return {};
  const auto manifest_bytes = static_cast<uint64_t>(*payload_bytes);
  if (payload->size() < manifest_bytes) return {};  // inconsistent pair
  // Bytes beyond the manifest are a torn tail (or an un-manifested chunk)
  // from a crash mid-append: the manifest is authoritative, discard them.
  payload->resize(manifest_bytes);

  // Belt and braces: the committed prefix must itself be clean JSONL with
  // exactly the advertised item count; a torn line inside it means the
  // manifest lied, so restart from scratch rather than resume wrongly.
  json::ParseLinesInfo info;
  const Result<std::vector<json::Value>> parsed =
      json::ParseLinesRecoverable(*payload, &info);
  if (!parsed.ok() || info.truncated() ||
      parsed->size() != static_cast<size_t>(*completed)) {
    return {};
  }

  std::vector<std::string> lines;
  lines.reserve(parsed->size());
  size_t pos = 0;
  while (pos < payload->size()) {
    size_t nl = payload->find('\n', pos);
    if (nl == std::string::npos) nl = payload->size();
    if (nl > pos) lines.push_back(payload->substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.size() != parsed->size()) return {};

  payload_bytes_ = manifest_bytes;
  completed_ = lines.size();
  resumed_ = true;
  CountMetric("checkpoint.items_restored", lines.size());
  return lines;
}

Status StageCheckpointer::Commit(size_t completed_total,
                                 const std::vector<std::string>& new_lines) {
  if (!enabled()) return Status::OK();
  std::string chunk;
  for (const std::string& line : new_lines) {
    chunk += line;
    chunk += '\n';
  }
  {
    // First commit of a fresh (non-resumed) run truncates any stale
    // payload; later commits append after the bytes the manifest covers.
    const auto mode = (resumed_ || commits_ > 0)
                          ? (std::ios::binary | std::ios::app)
                          : (std::ios::binary | std::ios::trunc);
    std::ofstream out(payload_path(), mode);
    if (!out) {
      return Status::IoError("cannot open checkpoint payload '" +
                             payload_path() + "'");
    }
    out << chunk;
    out.flush();
    if (!out) {
      return Status::IoError("write failure on checkpoint payload '" +
                             payload_path() + "'");
    }
  }
  payload_bytes_ += chunk.size();
  completed_ = completed_total;

  json::Object manifest;
  manifest["stage"] = json::Value(stage_);
  manifest["fingerprint"] = json::Value(fingerprint_);
  manifest["completed"] = json::Value(static_cast<int64_t>(completed_));
  manifest["payload_bytes"] =
      json::Value(static_cast<int64_t>(payload_bytes_));
  COACHLM_RETURN_NOT_OK(
      AtomicWriteFile(manifest_path(), json::Value(manifest).Dump() + "\n"));

  ++commits_;
  CountMetric("checkpoint.commits");
  CountMetric("checkpoint.payload_bytes", chunk.size());
  if (crash_after_commits_ > 0 && commits_ >= crash_after_commits_) {
    std::fprintf(stderr,
                 "[checkpoint] simulated crash after commit %d of stage %s\n",
                 commits_, stage_.c_str());
    std::_Exit(17);
  }
  return Status::OK();
}

StageCheckpointer::~StageCheckpointer() {
  // Best-effort final flush: a destructor cannot propagate failure, and a
  // lost tail commit only costs re-doing those items on resume.
  (void)Drain();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    committer_stop_ = true;
  }
  queue_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

// CommitAsync/Drain/CommitterLoop wait on queue_cv_ through an unannotated
// std::unique_lock, so they opt out of clang's thread-safety analysis; the
// lint rule still checks their lexical lock scopes.
void StageCheckpointer::CommitAsync(
    size_t completed_total,
    std::vector<std::string> new_lines) COACHLM_NO_THREAD_SAFETY_ANALYSIS {
  if (!enabled()) return;
  if (max_pending_commits_ == 0) {
    const Status committed = Commit(completed_total, new_lines);
    if (!committed.ok()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      async_error_ = committed;
    }
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (!committer_.joinable()) {
    committer_stop_ = false;
    committer_ = std::thread([this] { CommitterLoop(); });
  }
  // The admission gate: while the committer is this far behind, producing
  // more encoded chunks would only grow memory, so the compute loop waits
  // here — backpressure, not buffering.
  queue_cv_.wait(lock,
                 [this] { return pending_.size() < max_pending_commits_; });
  PendingCommit commit;
  commit.completed_total = completed_total;
  commit.lines = std::move(new_lines);
  pending_.push_back(std::move(commit));
  lock.unlock();
  queue_cv_.notify_all();
}

Status StageCheckpointer::Drain() COACHLM_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] { return pending_.empty() && !committer_busy_; });
  Status error = async_error_;
  async_error_ = Status::OK();
  return error;
}

void StageCheckpointer::CommitterLoop() COACHLM_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    PendingCommit commit;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return committer_stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop requested and queue drained
      commit = std::move(pending_.front());
      pending_.pop_front();
      committer_busy_ = true;
    }
    // Notify producers *after* marking busy so Drain() cannot observe an
    // empty queue while this chunk is still landing.
    queue_cv_.notify_all();
    const Status committed = Commit(commit.completed_total, commit.lines);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      committer_busy_ = false;
      if (!committed.ok()) async_error_ = committed;
    }
    queue_cv_.notify_all();
  }
}

Status StageCheckpointer::Finish() {
  if (!enabled()) return Status::OK();
  std::error_code ec;
  std::filesystem::remove(manifest_path(), ec);
  std::filesystem::remove(payload_path(), ec);
  payload_bytes_ = 0;
  completed_ = 0;
  commits_ = 0;
  resumed_ = false;
  return Status::OK();
}

}  // namespace coachlm
