#ifndef COACHLM_COMMON_EXECUTION_H_
#define COACHLM_COMMON_EXECUTION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include <atomic>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace coachlm {

/// \brief Snapshot of a context's utilization counters (see
/// ExecutionContext::stats()). All zeros until stat collection is enabled.
struct ExecutionStats {
  uint64_t parallel_regions = 0;   ///< Parallel regions entered.
  uint64_t items = 0;              ///< Loop items dispatched across regions.
  int64_t region_wall_micros = 0;  ///< Wall time spent inside regions.
};

/// Golden-ratio multiplier used to derive independent per-item RNG streams
/// from a stage seed and an item id (the splitmix64 increment). Every
/// corpus-scale stage keys its randomness this way so that results are
/// bit-identical at any thread count: item i's stream depends only on
/// (seed, id), never on how many items some other thread processed first.
inline constexpr uint64_t kStreamSeedMultiplier = 0x9E3779B97F4A7C15ULL;

/// Derives the seed of item \p id's private RNG stream under \p seed.
inline constexpr uint64_t DeriveStreamSeed(uint64_t seed, uint64_t id) {
  return seed ^ (id * kStreamSeedMultiplier);
}

/// Convenience: the per-item RNG itself.
inline Rng DeriveRng(uint64_t seed, uint64_t id) {
  return Rng(DeriveStreamSeed(seed, id));
}

/// Mixes a stage tag into a seed (splitmix64 finalizer) so two stages that
/// share a config seed still draw from unrelated stream families.
constexpr uint64_t MixSeed(uint64_t seed, uint64_t tag) {
  uint64_t z = seed + tag * kStreamSeedMultiplier;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// \brief Shared execution layer for every corpus-scale pipeline stage.
///
/// Owns one long-lived ThreadPool (created lazily on first parallel call)
/// instead of each stage rebuilding a pool per invocation. A context built
/// with `num_threads == 1` never spins up threads at all — every loop runs
/// inline on the caller — which, combined with per-item RNG streams
/// (DeriveRng above), yields the determinism contract the test suite
/// enforces: a stage's output is a pure function of its inputs and seeds,
/// byte-identical at 1, 2, or N threads.
///
/// The calling thread participates in the work, so `num_threads` is the
/// total number of runners (a context of 4 uses 3 pool workers + the
/// caller). Loop bodies must not throw and must not re-enter the same
/// context (no nested parallel sections).
class ExecutionContext {
 public:
  /// \param num_threads total worker count; 0 = hardware concurrency.
  explicit ExecutionContext(size_t num_threads = 0);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Process-wide shared context (hardware concurrency, overridable with
  /// the COACHLM_THREADS environment variable). Stage entry points default
  /// to this so existing callers parallelize without code changes.
  static ExecutionContext& Default();

  /// A context that always runs inline on the calling thread.
  static const ExecutionContext& Serial();

  size_t num_threads() const { return num_threads_; }

  /// \name Utilization stats
  ///
  /// Off by default: the run-report writer (--metrics-out) switches
  /// collection on for the context a run uses, and every parallel region
  /// then adds its item count and wall time to plain commutative atomics.
  /// The counters live here (not in the metrics registry) so coachlm_common
  /// stays free of any observability dependency.
  /// @{
  void set_collect_stats(bool collect) const {
    collect_stats_.store(collect, std::memory_order_relaxed);
  }
  bool collect_stats() const {
    return collect_stats_.load(std::memory_order_relaxed);
  }
  ExecutionStats stats() const {
    ExecutionStats out;
    out.parallel_regions = stat_regions_.load(std::memory_order_relaxed);
    out.items = stat_items_.load(std::memory_order_relaxed);
    out.region_wall_micros =
        stat_region_wall_micros_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() const {
    stat_regions_.store(0, std::memory_order_relaxed);
    stat_items_.store(0, std::memory_order_relaxed);
    stat_region_wall_micros_.store(0, std::memory_order_relaxed);
  }
  /// @}

  /// Runs fn(i) for i in [0, n) across the pool in contiguous chunks and
  /// waits for completion. \p grain is the chunk length (0 = auto: enough
  /// chunks for ~8 per runner, so uneven items still load-balance).
  ///
  /// When \p cancel is given, items whose turn comes after the token trips
  /// are skipped (fn is never entered for them); in-flight items always run
  /// to completion — cancellation is cooperative, never preemptive.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t grain = 0,
                   const CancelToken* cancel = nullptr) const;

  /// ParallelFor with Status propagation: returns the status of the
  /// *lowest-indexed* failing item (so the result is deterministic no
  /// matter which thread hit its failure first), or OK. Once a failure is
  /// recorded, later-indexed items may be skipped. A tripped \p cancel
  /// token makes unstarted items fail with the token's status.
  [[nodiscard]] Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                           size_t grain = 0,
                           const CancelToken* cancel = nullptr) const;

  /// Fault-collecting variant: runs *every* item to completion (a failing
  /// item never stops its siblings) and returns the per-item Status vector
  /// in index order. This is the graceful-degradation primitive: callers
  /// route the failed indices to quarantine instead of aborting the stage.
  /// Items skipped by a tripped \p cancel token carry the token's status
  /// in their slot, so the caller quarantines them like any other failure.
  std::vector<Status> ParallelMapStatus(
      size_t n, const std::function<Status(size_t)>& fn, size_t grain = 0,
      const CancelToken* cancel = nullptr) const;

  /// Maps fn over [0, n) into a vector in index order. Items skipped after
  /// \p cancel trips are left default-constructed.
  template <typename Fn>
  auto ParallelMap(size_t n, Fn&& fn, size_t grain = 0,
                   const CancelToken* cancel = nullptr) const
      -> std::vector<decltype(fn(size_t{0}))> {
    using T = decltype(fn(size_t{0}));
    std::vector<T> out(n);
    ParallelFor(
        n, [&](size_t i) { out[i] = fn(i); }, grain, cancel);
    return out;
  }

  /// Parallel map + *serial* fold in index order. The fold order is fixed
  /// regardless of thread count, so floating-point accumulations stay
  /// bit-identical to a plain serial loop.
  template <typename Acc, typename Fn, typename Fold>
  Acc ParallelReduce(size_t n, Fn&& map, Acc init, Fold&& fold,
                     size_t grain = 0) const {
    auto values = ParallelMap(n, std::forward<Fn>(map), grain);
    Acc acc = std::move(init);
    for (size_t i = 0; i < values.size(); ++i) {
      fold(&acc, std::move(values[i]), i);
    }
    return acc;
  }

 private:
  /// The lazily created pool (num_threads_ - 1 workers); nullptr until the
  /// first parallel call, and never created for a 1-thread context.
  ThreadPool* pool() const;

  size_t num_threads_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::atomic<bool> collect_stats_{false};
  mutable std::atomic<uint64_t> stat_regions_{0};
  mutable std::atomic<uint64_t> stat_items_{0};
  mutable std::atomic<int64_t> stat_region_wall_micros_{0};
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_EXECUTION_H_
