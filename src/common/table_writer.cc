#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>

namespace coachlm {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TableWriter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TableWriter::Num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TableWriter::Pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

std::vector<size_t> TableWriter::ComputeWidths() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

namespace {

void AppendCell(std::string* out, const std::string& text, size_t width) {
  *out += ' ';
  *out += text;
  out->append(width - text.size() + 1, ' ');
}

void AppendRule(std::string* out, const std::vector<size_t>& widths) {
  *out += '+';
  for (size_t w : widths) {
    out->append(w + 2, '-');
    *out += '+';
  }
  *out += '\n';
}

}  // namespace

std::string TableWriter::ToAscii() const {
  const std::vector<size_t> widths = ComputeWidths();
  std::string out;
  AppendRule(&out, widths);
  out += '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    AppendCell(&out, headers_[c], widths[c]);
    out += '|';
  }
  out += '\n';
  AppendRule(&out, widths);
  for (const Row& row : rows_) {
    if (row.separator) {
      AppendRule(&out, widths);
      continue;
    }
    out += '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
      AppendCell(&out, row.cells[c], widths[c]);
      out += '|';
    }
    out += '\n';
  }
  AppendRule(&out, widths);
  return out;
}

std::string TableWriter::ToMarkdown() const {
  const std::vector<size_t> widths = ComputeWidths();
  std::string out = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    AppendCell(&out, headers_[c], widths[c]);
    out += '|';
  }
  out += "\n|";
  for (size_t w : widths) {
    out.append(w + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const Row& row : rows_) {
    if (row.separator) continue;
    out += '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
      AppendCell(&out, row.cells[c], widths[c]);
      out += '|';
    }
    out += '\n';
  }
  return out;
}

}  // namespace coachlm
