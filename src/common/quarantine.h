#ifndef COACHLM_COMMON_QUARANTINE_H_
#define COACHLM_COMMON_QUARANTINE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/fault.h"
#include "common/result.h"
#include "json/json.h"

namespace coachlm {

/// \brief Error provenance of one permanently-failed record.
///
/// Serialized one-per-line into the quarantine JSONL so operators can
/// reprocess or triage exactly the records a run could not handle, instead
/// of the run aborting on the first of them.
struct QuarantineRecord {
  uint64_t item_id = 0;
  FaultSite site = FaultSite::kCollect;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  /// Attempts spent before giving up (1 = failed without retrying).
  int attempts = 0;

  json::Value ToJson() const;
  [[nodiscard]] static Result<QuarantineRecord> FromJson(const json::Value& value);

  bool operator==(const QuarantineRecord& other) const {
    return item_id == other.item_id && site == other.site &&
           code == other.code && message == other.message &&
           attempts == other.attempts;
  }
};

/// \brief Thread-safe collector of quarantined records.
///
/// Workers Add() from any thread; records() and Save() return them sorted
/// by (site, item_id), so the quarantine file is deterministic no matter
/// which thread lost which record first.
class QuarantineLog {
 public:
  void Add(QuarantineRecord record);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Sorted snapshot (by site, then item_id, then message).
  std::vector<QuarantineRecord> records() const;

  /// Writes the sorted records as JSONL.
  [[nodiscard]] Status Save(const std::string& path) const;

  /// Loads a quarantine JSONL written by Save().
  [[nodiscard]] static Result<std::vector<QuarantineRecord>> Load(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::vector<QuarantineRecord> records_ COACHLM_GUARDED_BY(mu_);
};

}  // namespace coachlm

#endif  // COACHLM_COMMON_QUARANTINE_H_
