#include "expert/experts.h"

namespace coachlm {
namespace expert {

const std::vector<Expert>& Roster() {
  // Group A units are staffed so the unit means match Section II-E2:
  // language tasks 9.4y (6 experts), Q&A 11.2y (6), creative 13.1y (5);
  // overall group A mean 11.29y as in Table I.
  static const std::vector<Expert> kRoster = [] {
    std::vector<Expert> roster;
    size_t id = 1;
    auto add = [&](ExpertGroup group, double years, TaskClass unit) {
      roster.push_back(Expert{id++, group, years, unit});
    };
    // Unit 1: language task performing (mean 9.4).
    for (double years : {7.0, 8.5, 9.0, 9.4, 10.5, 12.0}) {
      add(ExpertGroup::kReviseA, years, TaskClass::kLanguageTask);
    }
    // Unit 2: Q&A (mean 11.2).
    for (double years : {8.7, 10.0, 11.0, 11.5, 12.5, 13.5}) {
      add(ExpertGroup::kReviseA, years, TaskClass::kQa);
    }
    // Unit 3: creative composition (mean 13.1).
    for (double years : {11.0, 12.3, 13.0, 14.2, 15.0}) {
      add(ExpertGroup::kReviseA, years, TaskClass::kCreative);
    }
    // Group B: test-set creation (mean 5.64).
    for (double years : {3.5, 4.5, 5.0, 6.0, 6.8, 8.04}) {
      add(ExpertGroup::kTestSetB, years, TaskClass::kLanguageTask);
    }
    // Group C: human evaluation (mean 12.57).
    for (double years : {11.0, 12.5, 14.21}) {
      add(ExpertGroup::kEvaluateC, years, TaskClass::kLanguageTask);
    }
    return roster;
  }();
  return kRoster;
}

std::vector<Expert> GroupMembers(ExpertGroup group) {
  std::vector<Expert> members;
  for (const Expert& expert : Roster()) {
    if (expert.group == group) members.push_back(expert);
  }
  return members;
}

std::vector<Expert> UnitMembers(TaskClass unit) {
  std::vector<Expert> members;
  for (const Expert& expert : Roster()) {
    if (expert.group == ExpertGroup::kReviseA && expert.unit == unit) {
      members.push_back(expert);
    }
  }
  return members;
}

double MeanExperience(const std::vector<Expert>& experts) {
  if (experts.empty()) return 0.0;
  double sum = 0.0;
  for (const Expert& expert : experts) sum += expert.years_experience;
  return sum / static_cast<double>(experts.size());
}

}  // namespace expert
}  // namespace coachlm
