#ifndef COACHLM_EXPERT_PIPELINE_H_
#define COACHLM_EXPERT_PIPELINE_H_

#include <map>

#include "common/execution.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "data/revision_record.h"
#include "expert/filtering.h"
#include "expert/reviser.h"
#include "synth/content_engine.h"

namespace coachlm {
namespace expert {

/// \brief Configuration of the manual revision study (Section II-E).
struct RevisionStudyConfig {
  /// Size of the random sample drawn from the corpus (the paper's 6k).
  size_t sample_size = 6000;
  uint64_t seed = 17;
  /// Target criteria score of the revise-until loop.
  double target_score = 95.0;
  /// Diversity-retention probability of the preliminary filter.
  double retain_probability = 0.03;
};

/// \brief Per-pair effort model (person-days), calibrated so the paper's
/// study (6k pairs examined, 2301 revised) costs ~129 person-days.
struct EffortModel {
  /// Screening/examination cost per sampled pair.
  double examine_per_pair = 0.008;
  /// Revision cost per revised pair by task class.
  double revise_language = 0.020;
  double revise_qa = 0.028;
  double revise_creative = 0.040;
  /// Owner quality-control overhead as a fraction of revision effort.
  double qc_overhead = 0.18;

  double ReviseCost(TaskClass task_class) const;
};

/// \brief Everything the manual study produces.
struct RevisionStudyResult {
  /// The expert revision dataset R = {(x, x_r)} (revised pairs only).
  RevisionDataset revisions;
  /// Table III: exclusion statistics.
  FilterStats filter_stats;
  /// Table IV: primary revision-type counts.
  std::map<InstructionRevisionType, size_t> instruction_revision_counts;
  std::map<ResponseRevisionType, size_t> response_revision_counts;
  /// Pairs examined after filtering (the paper's ~4.9k).
  size_t examined_after_filter = 0;
  /// Pairs revised on either side (the paper's 2301).
  size_t revised_pairs = 0;
  /// Pairs with instruction-side revisions (the paper's 1079).
  size_t instruction_revised_pairs = 0;
  /// Total effort in person-days (the paper's 129).
  double person_days = 0.0;
  /// The full-dataset view with revised pairs substituted in place — the
  /// training set of Alpaca-human (Section III-C).
  InstructionDataset merged_dataset;
};

/// \brief Runs the Section II-E manual revision study over \p corpus.
///
/// Samples `config.sample_size` pairs, applies the preliminary filter
/// (Table III), assigns pairs to expert units by task class, revises every
/// pair the criteria flag as lacking, and accounts effort. The merged
/// dataset keeps *all* corpus pairs (excluded ones included, as in the
/// paper: "these excluded pairs still participated in subsequent LLM
/// training for fair comparison"), with revised pairs replacing their
/// originals.
///
/// Screening and revision run in parallel over \p exec: each sampled pair
/// draws from its own id-derived RNG stream (one expert per pair, exactly
/// the paper's per-pair assignment), so the study is byte-identical at any
/// thread count.
RevisionStudyResult RunRevisionStudy(
    const InstructionDataset& corpus, const synth::ContentEngine& engine,
    const RevisionStudyConfig& config = {}, const EffortModel& effort = {},
    const ExecutionContext& exec = ExecutionContext::Default());

/// Record-stream form: drains \p corpus (the study samples with random
/// access, so the stream materializes once) and runs the same study —
/// identical bytes whether the records came from a JSON file, JSONL, or
/// sharded binary.
[[nodiscard]] Result<RevisionStudyResult> RunRevisionStudy(
    RecordReader* corpus, const synth::ContentEngine& engine,
    const RevisionStudyConfig& config = {}, const EffortModel& effort = {},
    const ExecutionContext& exec = ExecutionContext::Default());

}  // namespace expert
}  // namespace coachlm

#endif  // COACHLM_EXPERT_PIPELINE_H_
