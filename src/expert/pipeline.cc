#include "expert/pipeline.h"

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace coachlm {
namespace expert {

double EffortModel::ReviseCost(TaskClass task_class) const {
  switch (task_class) {
    case TaskClass::kLanguageTask:
      return revise_language;
    case TaskClass::kQa:
      return revise_qa;
    case TaskClass::kCreative:
      return revise_creative;
  }
  return revise_qa;
}

namespace {

/// Per-pair screening + revision outcome, computed in parallel and folded
/// serially (in sample order) so the study result is schedule-independent.
struct PairOutcome {
  std::optional<ExclusionReason> exclusion;
  bool retained = false;
  bool examined = false;
  RevisionOutcome revision;
};

/// Stage tag decoupling the expert streams from other stages sharing the
/// same config seed (the synthetic generator also keys streams by pair id).
constexpr uint64_t kExpertStreamTag = 0x45585045;  // "EXPE"

}  // namespace

RevisionStudyResult RunRevisionStudy(const InstructionDataset& corpus,
                                     const synth::ContentEngine& engine,
                                     const RevisionStudyConfig& config,
                                     const EffortModel& effort,
                                     const ExecutionContext& exec) {
  const StageSpan span("study");
  RevisionStudyResult result;
  Rng rng(config.seed);

  const InstructionDataset sample =
      corpus.SampleWithoutReplacement(config.sample_size, &rng);

  PreliminaryFilter filter(config.retain_probability);
  ExpertReviser reviser(&engine, config.target_score);

  // One expert per pair: each sampled pair is screened and revised under
  // its own id-derived RNG stream, so the loop parallelizes with
  // byte-identical results at any thread count.
  const uint64_t stream_seed = MixSeed(config.seed, kExpertStreamTag);
  const std::vector<PairOutcome> outcomes = exec.ParallelMap(
      sample.size(), [&](size_t i) {
        const InstructionPair& pair = sample[i];
        Rng pair_rng = DeriveRng(stream_seed, pair.id);
        PairOutcome out;
        out.exclusion = filter.Screen(pair, &pair_rng, &out.retained);
        if (!out.exclusion) {
          out.examined = true;
          out.revision = reviser.Revise(pair, &pair_rng);
        }
        return out;
      });

  double revision_effort = 0.0;
  std::unordered_map<uint64_t, const InstructionPair*> revised_by_id;

  for (size_t i = 0; i < sample.size(); ++i) {
    const InstructionPair& pair = sample[i];
    const PairOutcome& out = outcomes[i];
    if (out.retained) ++result.filter_stats.retained_for_diversity;
    if (out.exclusion) {
      ++result.filter_stats.excluded[*out.exclusion];
      continue;
    }
    ++result.filter_stats.passed;
    ++result.examined_after_filter;

    // Expertise-based assignment: the pair's task class routes it to the
    // matching expert unit (Section II-E2); the unit determines the effort
    // model applied below.
    const TaskClass unit = ClassOf(pair.category);

    const RevisionOutcome& outcome = out.revision;
    if (!outcome.revised) continue;

    ++result.revised_pairs;
    revision_effort += effort.ReviseCost(unit);
    if (outcome.instruction_type) {
      ++result.instruction_revision_counts[*outcome.instruction_type];
    }
    if (outcome.revised_pair.FullInstruction() != pair.FullInstruction()) {
      ++result.instruction_revised_pairs;
    }
    if (outcome.response_type) {
      ++result.response_revision_counts[*outcome.response_type];
    }

    RevisionRecord record;
    record.original = pair;
    record.revised = outcome.revised_pair;
    record.RecomputeDerived();
    result.revisions.push_back(std::move(record));
    revised_by_id.emplace(pair.id, &outcome.revised_pair);
  }

  result.person_days =
      static_cast<double>(sample.size()) * effort.examine_per_pair +
      revision_effort * (1.0 + effort.qc_overhead);
  CountMetric("study.items_sampled", sample.size());
  CountMetric("study.items_excluded", result.filter_stats.TotalExcluded());
  CountMetric("study.items_revised", result.revised_pairs);

  // Merge: the full corpus with revised pairs substituted in place.
  result.merged_dataset = corpus;
  auto& merged = result.merged_dataset.pairs();
  exec.ParallelFor(merged.size(), [&](size_t i) {
    auto it = revised_by_id.find(merged[i].id);
    if (it != revised_by_id.end()) merged[i] = *it->second;
  });
  return result;
}

Result<RevisionStudyResult> RunRevisionStudy(RecordReader* corpus,
                                             const synth::ContentEngine& engine,
                                             const RevisionStudyConfig& config,
                                             const EffortModel& effort,
                                             const ExecutionContext& exec) {
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset,
                           ReadAllRecords(corpus));
  return RunRevisionStudy(dataset, engine, config, effort, exec);
}

}  // namespace expert
}  // namespace coachlm
