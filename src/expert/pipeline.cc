#include "expert/pipeline.h"

#include <unordered_map>
#include <unordered_set>

namespace coachlm {
namespace expert {

double EffortModel::ReviseCost(TaskClass task_class) const {
  switch (task_class) {
    case TaskClass::kLanguageTask:
      return revise_language;
    case TaskClass::kQa:
      return revise_qa;
    case TaskClass::kCreative:
      return revise_creative;
  }
  return revise_qa;
}

RevisionStudyResult RunRevisionStudy(const InstructionDataset& corpus,
                                     const synth::ContentEngine& engine,
                                     const RevisionStudyConfig& config,
                                     const EffortModel& effort) {
  RevisionStudyResult result;
  Rng rng(config.seed);
  Rng filter_rng = rng.Fork();
  Rng revise_rng = rng.Fork();

  const InstructionDataset sample =
      corpus.SampleWithoutReplacement(config.sample_size, &rng);

  PreliminaryFilter filter(config.retain_probability);
  ExpertReviser reviser(&engine, config.target_score);

  double revision_effort = 0.0;
  std::unordered_map<uint64_t, InstructionPair> revised_by_id;

  for (const InstructionPair& pair : sample) {
    bool retained = false;
    const auto reason = filter.Screen(pair, &filter_rng, &retained);
    if (retained) ++result.filter_stats.retained_for_diversity;
    if (reason) {
      ++result.filter_stats.excluded[*reason];
      continue;
    }
    ++result.filter_stats.passed;
    ++result.examined_after_filter;

    // Expertise-based assignment: the pair's task class routes it to the
    // matching expert unit (Section II-E2); the unit determines the effort
    // model applied below.
    const TaskClass unit = ClassOf(pair.category);

    const RevisionOutcome outcome = reviser.Revise(pair, &revise_rng);
    if (!outcome.revised) continue;

    ++result.revised_pairs;
    revision_effort += effort.ReviseCost(unit);
    if (outcome.instruction_type) {
      ++result.instruction_revision_counts[*outcome.instruction_type];
    }
    if (outcome.revised_pair.FullInstruction() != pair.FullInstruction()) {
      ++result.instruction_revised_pairs;
    }
    if (outcome.response_type) {
      ++result.response_revision_counts[*outcome.response_type];
    }

    RevisionRecord record;
    record.original = pair;
    record.revised = outcome.revised_pair;
    record.RecomputeDerived();
    result.revisions.push_back(std::move(record));
    revised_by_id.emplace(pair.id, outcome.revised_pair);
  }

  result.person_days =
      static_cast<double>(sample.size()) * effort.examine_per_pair +
      revision_effort * (1.0 + effort.qc_overhead);

  // Merge: the full corpus with revised pairs substituted in place.
  result.merged_dataset = corpus;
  for (InstructionPair& pair : result.merged_dataset.pairs()) {
    auto it = revised_by_id.find(pair.id);
    if (it != revised_by_id.end()) pair = it->second;
  }
  return result;
}

}  // namespace expert
}  // namespace coachlm
