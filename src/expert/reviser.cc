#include "expert/reviser.h"

#include <algorithm>
#include <array>

#include "quality/analyzers.h"
#include "synth/arith.h"
#include "synth/topic_bank.h"
#include "text/lexicons.h"
#include "text/repair.h"
#include "text/string_util.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace expert {
namespace {

using quality::Dimension;

/// Removes sentences whose deletion improves the feasibility score
/// (infeasible requirements the expert strikes out).
std::string StripInfeasibleClauses(const InstructionPair& pair) {
  const auto sentences = tokenizer::SplitSentences(pair.instruction);
  if (sentences.size() < 2) return pair.instruction;
  InstructionPair probe = pair;
  const double baseline = quality::analyzers::Feasibility(pair);
  std::vector<std::string> kept;
  for (size_t i = 0; i < sentences.size(); ++i) {
    std::vector<std::string> without;
    for (size_t j = 0; j < sentences.size(); ++j) {
      if (j != i) without.push_back(sentences[j]);
    }
    probe.instruction = strings::Join(without, " ");
    if (quality::analyzers::Feasibility(probe) > baseline + 1e-9) {
      continue;  // dropping sentence i helps: it is the infeasible clause
    }
    kept.push_back(sentences[i]);
  }
  if (kept.empty()) kept.push_back(sentences.front());
  return strings::Join(kept, " ");
}

/// Replaces vague fillers with the pair's recovered subject.
std::string Disambiguate(const std::string& instruction,
                         const synth::Topic& topic) {
  std::string out = instruction;
  for (const std::string& filler : lexicons::AmbiguityFillers()) {
    out = strings::ReplaceAll(out, filler, topic.name);
  }
  return out;
}

/// Corrects known factual corruptions and mis-stated arithmetic.
bool FixFacts(InstructionPair* pair) {
  bool changed = false;
  for (const synth::Topic& topic : synth::Topics()) {
    if (strings::Contains(pair->output, topic.wrong_fact)) {
      pair->output =
          strings::ReplaceAll(pair->output, topic.wrong_fact, topic.fact);
      changed = true;
    }
  }
  const auto problem = synth::ParseArithProblem(pair->FullInstruction());
  if (problem) {
    const auto stated = synth::ParseStatedResult(pair->output);
    if (stated && *stated != problem->Answer()) {
      const std::string wrong = std::to_string(*stated);
      const std::string right = std::to_string(problem->Answer());
      pair->output = strings::ReplaceAll(pair->output, "= " + wrong,
                                         "= " + right);
      pair->output = strings::ReplaceAll(
          pair->output, "answer is " + wrong, "answer is " + right);
      changed = true;
    }
  }
  return changed;
}

bool HasLayoutDamage(const std::string& text) {
  if (strings::Contains(text, "OUTPUT:")) return true;
  if (strings::Contains(text, "  ")) return true;
  if (strings::Contains(text, " - ") && !strings::Contains(text, "\n- ")) {
    return true;
  }
  if (strings::Contains(text, " 2. ") && !strings::Contains(text, "\n2. ")) {
    return true;
  }
  return false;
}

void RepairLayout(InstructionPair* pair) {
  std::string out = pair->output;
  out = strings::ReplaceAll(out, "OUTPUT:", "");
  out = strings::Trim(out);
  if (strings::Contains(out, " - ") || strings::Contains(out, " 2. ")) {
    out = repair::ReflowLists(out);
  }
  out = repair::CollapseSpaces(out);
  pair->output = out;
}

void StripMechanicalOpener(InstructionPair* pair) {
  for (const std::string& opener : lexicons::MechanicalOpeners()) {
    if (strings::StartsWith(pair->output, opener)) {
      pair->output = strings::Trim(pair->output.substr(opener.size()));
      return;
    }
  }
}

bool HasClosing(const std::string& text) {
  const std::string lower = strings::Lower(text);
  for (const std::string& marker : lexicons::PolitenessMarkers()) {
    if (strings::Contains(lower, strings::Lower(marker))) return true;
  }
  return false;
}

}  // namespace

const std::string& InstructionRevisionTypeName(InstructionRevisionType type) {
  static const std::array<std::string, 3> kNames = {
      "Adjust (readability)", "Rewrite (feasibility)",
      "Diversify (contextualization)"};
  return kNames[static_cast<size_t>(type)];
}

const std::string& ResponseRevisionTypeName(ResponseRevisionType type) {
  static const std::array<std::string, 5> kNames = {
      "Diversify/Expand (comprehensiveness, richness)",
      "Rewrite (relevance, readability, correctness)",
      "Adjust (layout, tone)", "Correct (facts, calculations)",
      "Other (safety, complex)"};
  return kNames[static_cast<size_t>(type)];
}

bool ExpertReviser::IsLacking(const InstructionPair& pair) const {
  const quality::PairQuality q = quality::ScorePair(pair);
  if (q.instruction.HasBasicFlaw() || q.response.HasBasicFlaw()) return true;
  if (q.response.RedLineViolated()) return true;
  // A blatantly robotic tone violates the advanced-experience expectations
  // badly enough that experts adjust it (23.3% of Table IV revisions).
  if (q.response.Satisfaction(Dimension::kHumanization) < 0.2) return true;
  // Ultra-thin answers lack the advanced dimensions badly enough that the
  // criteria flag them ("no omission of necessary angles") — short-form
  // categories excepted, where a brief answer is the expected shape.
  if (!quality::analyzers::IsShortFormCategory(pair.category)) {
    const double richness = q.response.Satisfaction(Dimension::kRichness);
    if (richness < 0.18 && strings::CountWords(pair.output) < 22) return true;
  }
  return false;
}

void ExpertReviser::RepairInstruction(
    InstructionPair* pair, Rng* rng,
    std::optional<InstructionRevisionType>* type) const {
  const quality::QualityScore score =
      quality::InstructionScorer().Score(*pair);
  const double feasibility = score.Satisfaction(Dimension::kFeasibility);
  const double readability =
      score.Satisfaction(Dimension::kInstructionReadability);
  if (feasibility < 0.999) {
    const synth::Topic& topic = engine_->TopicFor(*pair);
    pair->instruction = StripInfeasibleClauses(*pair);
    pair->instruction = Disambiguate(pair->instruction, topic);
    *type = InstructionRevisionType::kRewriteFeasibility;
  }
  if (readability < 0.999) {
    pair->instruction = repair::FixKnownSpelling(pair->instruction);
    pair->instruction = repair::CapitalizeSentences(pair->instruction);
    pair->instruction = repair::RemoveDoubledWords(pair->instruction);
    if (!type->has_value()) {
      *type = InstructionRevisionType::kAdjustReadability;
    }
  }
  // Context diversification: experts selectively enrich bare instructions
  // with requirements/scenarios — the rarest instruction revision
  // (7% in Table IV), applied with matching restraint.
  const double context =
      score.Satisfaction(Dimension::kContextualization);
  if (!type->has_value() && context < 0.10 && rng->NextBool(0.12)) {
    const synth::Topic& topic = engine_->TopicFor(*pair);
    pair->instruction +=
        " " + engine_->ContextSentence(pair->category, topic, rng);
    *type = InstructionRevisionType::kDiversifyContext;
  }
}

void ExpertReviser::RepairResponse(
    InstructionPair* pair, Rng* rng,
    std::optional<ResponseRevisionType>* type) const {
  const quality::QualityScore score = quality::ResponseScorer().Score(*pair);
  const double safety = score.Satisfaction(Dimension::kSafety);
  const double correctness = score.Satisfaction(Dimension::kCorrectness);
  const double relevance = score.Satisfaction(Dimension::kRelevance);
  const double comprehensiveness =
      score.Satisfaction(Dimension::kComprehensiveness);
  const double readability =
      score.Satisfaction(Dimension::kResponseReadability);
  const double humanization = score.Satisfaction(Dimension::kHumanization);

  synth::ResponseRichness rich;
  rich.explanations = 4;
  rich.closing = true;

  if (safety < 0.5) {
    // A retained red-line pair: replace the unsafe request with a safe one
    // on a neutral subject and answer it properly.
    const synth::Topic& topic = engine_->TopicFor(*pair);
    pair->instruction = "Explain " + topic.name + " to a general audience.";
    pair->input.clear();
    pair->output = engine_->RebuildResponse(*pair, rich, rng);
    *type = ResponseRevisionType::kOther;
    return;
  }
  if (strings::Trim(pair->output).empty() || relevance < 0.6) {
    // Empty or off-topic: rewrite wholesale.
    pair->output = engine_->RebuildResponse(*pair, rich, rng);
    *type = ResponseRevisionType::kRewriteContent;
    return;
  }
  if (correctness < 0.999) {
    const bool fixed = FixFacts(pair);
    if (fixed && !type->has_value()) {
      *type = ResponseRevisionType::kCorrectFacts;
    }
    if (!fixed) {
      pair->output = engine_->RebuildResponse(*pair, rich, rng);
      *type = ResponseRevisionType::kRewriteContent;
      return;
    }
  }
  if (comprehensiveness < 0.999) {
    // Truncated or thin: rebuild with expanded reasoning (the dominant
    // revision type of Table IV).
    pair->output = engine_->RebuildResponse(*pair, rich, rng);
    if (!type->has_value()) {
      *type = ResponseRevisionType::kDiversifyExpand;
    }
    return;
  }
  if (readability < 0.999) {
    if (HasLayoutDamage(pair->output)) {
      RepairLayout(pair);
      if (!type->has_value()) {
        *type = ResponseRevisionType::kAdjustLayoutTone;
      }
    }
    pair->output = repair::FixKnownSpelling(pair->output);
    pair->output = repair::CapitalizeSentences(pair->output);
    if (!strings::Contains(pair->output, "\n")) {
      pair->output = repair::RemoveDoubledWords(pair->output);
    }
    if (!type->has_value()) {
      *type = ResponseRevisionType::kRewriteContent;
    }
  }
  if (humanization < 0.3) {
    StripMechanicalOpener(pair);
    if (!HasClosing(pair->output)) {
      pair->output += " " + engine_->ClosingLine(rng);
    }
    if (!type->has_value()) {
      *type = ResponseRevisionType::kAdjustLayoutTone;
    }
  }
}

void ExpertReviser::Enrich(InstructionPair* pair, Rng* rng,
                           size_t* iterations) const {
  // "Making all necessary revisions": grow the response — unused
  // supporting details, then a warm closing — until the response side
  // meets the target score. The instruction side is handled by
  // RepairInstruction; appending context to every instruction would not
  // match expert behaviour (Table IV shows context additions are rare).
  const synth::Topic& topic = engine_->TopicFor(*pair);
  for (size_t attempt = 0; attempt < 7; ++attempt) {
    const quality::QualityScore response =
        quality::ResponseScorer().Score(*pair);
    if (response.score >= target_score_) return;
    ++*iterations;
    bool changed = false;
    for (const std::string& detail : topic.details) {
      if (!strings::Contains(pair->output, detail)) {
        pair->output += " For example, " + detail;
        changed = true;
        break;
      }
    }
    if (!HasClosing(pair->output)) {
      pair->output += " " + engine_->ClosingLine(rng);
      changed = true;
    }
    if (!changed) return;  // nothing left to add; accept the plateau
  }
}

RevisionOutcome ExpertReviser::Revise(const InstructionPair& pair,
                                      Rng* rng) const {
  RevisionOutcome outcome;
  outcome.revised_pair = pair;
  if (!IsLacking(pair)) {
    outcome.final_quality = quality::ScorePair(pair);
    return outcome;
  }
  RepairInstruction(&outcome.revised_pair, rng, &outcome.instruction_type);
  RepairResponse(&outcome.revised_pair, rng, &outcome.response_type);
  Enrich(&outcome.revised_pair, rng, &outcome.iterations);
  outcome.final_quality = quality::ScorePair(outcome.revised_pair);
  // Track which sides actually changed; a side-specific "type" without a
  // text change is dropped (keeps Table IV counts honest).
  if (outcome.revised_pair.instruction == pair.instruction &&
      outcome.revised_pair.input == pair.input) {
    outcome.instruction_type.reset();
  }
  if (outcome.revised_pair.output == pair.output) {
    outcome.response_type.reset();
  }
  outcome.revised = outcome.revised_pair.instruction != pair.instruction ||
                    outcome.revised_pair.input != pair.input ||
                    outcome.revised_pair.output != pair.output;
  // Thin-but-clean pairs that only gained enrichment count as
  // Diversify/Expand.
  if (outcome.revised && !outcome.response_type.has_value() &&
      outcome.revised_pair.output != pair.output) {
    outcome.response_type = ResponseRevisionType::kDiversifyExpand;
  }
  return outcome;
}

}  // namespace expert
}  // namespace coachlm
