#ifndef COACHLM_EXPERT_REVISER_H_
#define COACHLM_EXPERT_REVISER_H_

#include <optional>
#include <string>

#include "common/rng.h"
#include "data/instruction_pair.h"
#include "quality/criteria.h"
#include "synth/content_engine.h"

namespace coachlm {
namespace expert {

/// \brief Primary instruction-revision types of Table IV.
enum class InstructionRevisionType {
  kAdjustReadability = 0,  ///< language/layout adjustments (68.1%)
  kRewriteFeasibility,     ///< rewrite infeasible/ambiguous parts (24.9%)
  kDiversifyContext,       ///< add context/requirements/examples (7.0%)
};

/// \brief Primary response-revision types of Table IV.
enum class ResponseRevisionType {
  kDiversifyExpand = 0,  ///< add angles/explanations/reasoning (43.7%)
  kRewriteContent,       ///< fluency/relevance/logic rewrites (24.5%)
  kAdjustLayoutTone,     ///< layout clarity, empathetic tone (23.3%)
  kCorrectFacts,         ///< miscalculations, factual mistakes (6.7%)
  kOther,                ///< complex/creative revisions, safety (1.9%)
};

const std::string& InstructionRevisionTypeName(InstructionRevisionType type);
const std::string& ResponseRevisionTypeName(ResponseRevisionType type);

/// \brief Result of one expert revision attempt.
struct RevisionOutcome {
  /// False when the pair needed no revision (already meets the criteria).
  bool revised = false;
  InstructionPair revised_pair;
  /// Primary revision types per side (set only when that side changed).
  std::optional<InstructionRevisionType> instruction_type;
  std::optional<ResponseRevisionType> response_type;
  /// Quality of the revised pair.
  quality::PairQuality final_quality;
  /// Iterations of the revise-and-rescore loop.
  size_t iterations = 0;
};

/// \brief Simulates a group-A expert revising one instruction pair.
///
/// The workflow follows Section II-E2: (1) identify deficient dimensions
/// with the Table II criteria, (2) apply dimension-specific repairs —
/// spelling/grammar fixes, disambiguation, infeasible-clause removal,
/// layout reflow, tone humanization, fact correction, and full response
/// rebuilds with expanded reasoning — and (3) loop until the pair scores
/// at least `target_score`, per "making all necessary revisions". The
/// expert's world knowledge is the content engine (topic/code banks).
class ExpertReviser {
 public:
  explicit ExpertReviser(const synth::ContentEngine* engine,
                         double target_score = 95.0)
      : engine_(engine), target_score_(target_score) {}

  /// True when the criteria identify the pair as lacking in one or more
  /// dimensions (the 46.8% of Section II-E2).
  bool IsLacking(const InstructionPair& pair) const;

  /// Revises a pair. When the pair is not lacking, returns with
  /// revised==false and the pair untouched.
  RevisionOutcome Revise(const InstructionPair& pair, Rng* rng) const;

 private:
  void RepairInstruction(InstructionPair* pair, Rng* rng,
                         std::optional<InstructionRevisionType>* type) const;
  void RepairResponse(InstructionPair* pair, Rng* rng,
                      std::optional<ResponseRevisionType>* type) const;
  /// Adds enrichment (explanations/closing/context) until the target score
  /// is reached or attempts run out.
  void Enrich(InstructionPair* pair, Rng* rng, size_t* iterations) const;

  const synth::ContentEngine* engine_;
  double target_score_;
};

}  // namespace expert
}  // namespace coachlm

#endif  // COACHLM_EXPERT_REVISER_H_
