#ifndef COACHLM_EXPERT_EXPERTS_H_
#define COACHLM_EXPERT_EXPERTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/category.h"

namespace coachlm {
namespace expert {

/// \brief The three expert groups of Table I.
enum class ExpertGroup { kReviseA = 0, kTestSetB = 1, kEvaluateC = 2 };

/// \brief One language expert.
struct Expert {
  size_t id = 0;
  ExpertGroup group = ExpertGroup::kReviseA;
  double years_experience = 10.0;
  /// Revision unit (group A only): the task class this expert handles,
  /// staffed by expertise as in Section II-E2.
  TaskClass unit = TaskClass::kLanguageTask;
};

/// \brief The full roster of Table I: 17 experts in group A (units with
/// average experience 9.4 / 11.2 / 13.1 years), 6 in group B, 3 in
/// group C, averaging 11.29 / 5.64 / 12.57 years respectively.
const std::vector<Expert>& Roster();

/// Experts of one group.
std::vector<Expert> GroupMembers(ExpertGroup group);

/// Group-A experts of one revision unit.
std::vector<Expert> UnitMembers(TaskClass unit);

/// Mean experience of a set of experts (0 for empty input).
double MeanExperience(const std::vector<Expert>& experts);

}  // namespace expert
}  // namespace coachlm

#endif  // COACHLM_EXPERT_EXPERTS_H_
