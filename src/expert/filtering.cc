#include "expert/filtering.h"

#include <array>

#include "text/lexicons.h"
#include "text/string_util.h"

namespace coachlm {
namespace expert {
namespace {

const std::vector<std::string>& DeadInputMarkers() {
  static const std::vector<std::string> kMarkers = {
      "[Link to an article]", "<noinput>", "(see the attachment)",
      "[DOCUMENT REMOVED]",
  };
  return kMarkers;
}

const std::vector<std::string>& NicheMarkers() {
  static const std::vector<std::string> kMarkers = {
      "chords", "drop-D tuning", "renormalization", "Verilog",
      "pipelined RISC", "legal brief", "patent dispute",
  };
  return kMarkers;
}

const std::vector<std::string>& WorkloadMarkers() {
  static const std::vector<std::string> kMarkers = {
      "create a haiku poem preserving", "entire novel",
      "iambic pentameter", "40-stanza",
  };
  return kMarkers;
}

const std::vector<std::string>& MultiModalMarkers() {
  static const std::vector<std::string> kMarkers = {
      "in the photo", "this video", "audio recording", "(binary attachment)",
  };
  return kMarkers;
}

bool ContainsAny(const std::string& text,
                 const std::vector<std::string>& markers) {
  for (const std::string& marker : markers) {
    if (strings::Contains(text, marker)) return true;
  }
  return false;
}

}  // namespace

const std::string& ExclusionReasonName(ExclusionReason reason) {
  static const std::array<std::string, 5> kNames = {
      "Invalid Input", "Beyond Expertise", "Massive Workload", "Multi-modal",
      "Safety",
  };
  return kNames[static_cast<size_t>(reason)];
}

std::optional<ExclusionReason> PreliminaryFilter::Classify(
    const InstructionPair& pair) const {
  const std::string full = pair.FullInstruction();
  const std::string all = full + " " + pair.output;
  if (ContainsAny(full, DeadInputMarkers())) {
    return ExclusionReason::kInvalidInput;
  }
  const std::string lower = strings::Lower(all);
  for (const std::string& term : lexicons::UnsafeTerms()) {
    if (strings::Contains(lower, strings::Lower(term))) {
      return ExclusionReason::kSafety;
    }
  }
  if (ContainsAny(full, MultiModalMarkers())) {
    return ExclusionReason::kMultiModal;
  }
  if (ContainsAny(full, WorkloadMarkers())) {
    return ExclusionReason::kMassiveWorkload;
  }
  if (ContainsAny(full, NicheMarkers())) {
    return ExclusionReason::kBeyondExpertise;
  }
  return std::nullopt;
}

std::optional<ExclusionReason> PreliminaryFilter::Screen(
    const InstructionPair& pair, Rng* rng, bool* was_retained) const {
  if (was_retained != nullptr) *was_retained = false;
  auto reason = Classify(pair);
  if (reason && rng->NextBool(retain_probability_)) {
    if (was_retained != nullptr) *was_retained = true;
    return std::nullopt;
  }
  return reason;
}

size_t FilterStats::TotalExcluded() const {
  size_t total = 0;
  for (const auto& [reason, count] : excluded) total += count;
  return total;
}

double FilterStats::Ratio(ExclusionReason reason) const {
  const size_t total = TotalExcluded();
  if (total == 0) return 0.0;
  auto it = excluded.find(reason);
  const size_t count = it == excluded.end() ? 0 : it->second;
  return static_cast<double>(count) / static_cast<double>(total);
}

}  // namespace expert
}  // namespace coachlm
