#ifndef COACHLM_EXPERT_FILTERING_H_
#define COACHLM_EXPERT_FILTERING_H_

#include <map>
#include <optional>
#include <string>

#include "common/rng.h"
#include "data/instruction_pair.h"

namespace coachlm {
namespace expert {

/// \brief The exclusion reasons of Table III.
enum class ExclusionReason {
  kInvalidInput = 0,
  kBeyondExpertise,
  kMassiveWorkload,
  kMultiModal,
  kSafety,
};

/// Display name of an exclusion reason (Table III wording).
const std::string& ExclusionReasonName(ExclusionReason reason);

/// \brief The preliminary filter of Section II-E1.
///
/// Group-A experts screen each sampled pair *by reading it* (not via
/// generator provenance): dead-reference inputs, overly professional
/// niches, massive rewriting workloads, multi-modal payloads, and unsafe
/// content are excluded from revision. As in the paper, a small share of
/// such pairs is deliberately retained to keep the revision set diverse.
class PreliminaryFilter {
 public:
  /// \param retain_probability chance an otherwise-excluded pair is kept.
  explicit PreliminaryFilter(double retain_probability = 0.03)
      : retain_probability_(retain_probability) {}

  /// Classifies one pair; nullopt means the pair passes the filter.
  std::optional<ExclusionReason> Classify(const InstructionPair& pair) const;

  /// Classify(), plus the diversity-retention coin flip. When a pair is
  /// classified excludable but retained, \p was_retained is set.
  std::optional<ExclusionReason> Screen(const InstructionPair& pair,
                                        Rng* rng, bool* was_retained) const;

 private:
  double retain_probability_;
};

/// \brief Counts per exclusion reason (the Table III distribution).
struct FilterStats {
  std::map<ExclusionReason, size_t> excluded;
  size_t retained_for_diversity = 0;
  size_t passed = 0;

  size_t TotalExcluded() const;
  /// Share of each reason among excluded pairs.
  double Ratio(ExclusionReason reason) const;
};

}  // namespace expert
}  // namespace coachlm

#endif  // COACHLM_EXPERT_FILTERING_H_
