#include "tuning/tuned_model.h"

#include <algorithm>
#include <cmath>

namespace coachlm {
namespace tuning {
namespace {

/// Global vs per-category weighting of alignment. The per-category share
/// is what makes diversity matter: filtering away a category's data costs
/// the model more than the global average gains.
constexpr double kGlobalWeight = 0.45;
constexpr double kCategoryWeight = 0.55;

/// Contrast transform from measured data alignment to expressed model
/// quality. Instruction tuning is extremely sensitive to data quality in
/// the regime the paper studies (a 0.36-point mean-rating gain on the 0-5
/// scale separates Alpaca from Alpaca-CoachLM by ~20 win-rate points), so
/// the raw alignment — which lives in a narrow band around 0.8 — is
/// stretched before it scales the base model's knowledge.
double ContrastAlign(double align) {
  return std::clamp((align - 0.45) / 0.42, 0.05, 1.0);
}

}  // namespace

TunedModel::TunedModel(ModelSpec spec, AlignmentProfile alignment)
    : spec_(std::move(spec)),
      alignment_(std::move(alignment)),
      engine_(std::make_shared<synth::ContentEngine>()),
      injector_(std::make_shared<synth::DefectInjector>(engine_.get())) {}

double TunedModel::QualityFor(Category category) const {
  double category_alignment = alignment_.unseen_generalization *
                              alignment_.global_quality;
  auto it = alignment_.per_category.find(category);
  if (it != alignment_.per_category.end() && it->second.coverage > 0.0) {
    category_alignment = it->second.quality * it->second.coverage;
  }
  const double aligned = kGlobalWeight * alignment_.global_quality +
                         kCategoryWeight * category_alignment;
  return std::clamp(spec_.base_knowledge * ContrastAlign(aligned) *
                        alignment_.volume_factor,
                    0.0, 1.0);
}

std::string TunedModel::Respond(const InstructionPair& task, Rng* rng) const {
  const double q =
      std::clamp(QualityFor(task.category) + rng->NextGaussian(0.0, 0.03),
                 0.02, 1.0);
  // Richness tracks alignment: well-tuned models explain more and close
  // warmly; weakly tuned models answer thinly.
  synth::ResponseRichness richness;
  const double expl = q * 6.2 - 1.2 + rng->NextGaussian(0.0, 0.5);
  richness.explanations = static_cast<size_t>(
      std::clamp<long long>(std::llround(expl), 0, 4));
  double closing_p = std::clamp(q - 0.35, 0.02, 0.9);
  if (spec_.rl_tuned) closing_p = std::min(0.95, closing_p + 0.3);
  richness.closing = rng->NextBool(closing_p);

  InstructionPair candidate = task;
  candidate.output = engine_->RebuildResponse(task, richness, rng);

  // Generation slips: the residual error rate scales with both the base
  // model and how weak the alignment is.
  const double slip_p = std::clamp(spec_.base_slip * (1.0 - q), 0.0, 0.85);
  if (rng->NextBool(slip_p)) {
    static const std::vector<synth::DefectType> kSlips = {
        synth::DefectType::kTruncatedResponse,
        synth::DefectType::kMissingExplanation,
        synth::DefectType::kGrammarNoise,
        synth::DefectType::kSpellingNoise,
        synth::DefectType::kMechanicalTone,
        synth::DefectType::kFactualError,
        synth::DefectType::kIrrelevantResponse,
    };
    std::vector<double> weights = {0.22, 0.22, 0.16, 0.14, 0.12, 0.09, 0.05};
    if (spec_.rl_tuned) weights[4] = 0.0;  // RLHF removes robotic tone
    const synth::DefectType slip = kSlips[rng->NextCategorical(weights)];
    injector_->Apply(slip, &candidate, rng);
  }
  return candidate.output;
}

}  // namespace tuning
}  // namespace coachlm
