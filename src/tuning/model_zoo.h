#ifndef COACHLM_TUNING_MODEL_ZOO_H_
#define COACHLM_TUNING_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "common/execution.h"
#include "data/dataset.h"
#include "tuning/instruction_tuner.h"
#include "tuning/tuned_model.h"

namespace coachlm {
namespace tuning {

/// \brief One Table IX row: a tuned model with its display metadata.
struct ZooEntry {
  TunedModel model;
  std::string type;  ///< "I-tuned" or "RL-tuned"
  bool stronger_group = false;
};

/// \brief The datasets the baseline group is tuned on.
struct ZooInputs {
  /// The ALPACA52K-like corpus.
  const InstructionDataset* original = nullptr;
  /// The corpus with the expert-revised subset merged in (Alpaca-human).
  const InstructionDataset* human_merged = nullptr;
  /// The CoachLM-revised corpus (Alpaca-CoachLM).
  const InstructionDataset* coach_revised = nullptr;
};

/// \brief Builds the Baseline-LLMs group of Table IX: Vicuna-7b, Alpaca,
/// Alpaca-cleaned, Alpaca-PandaLM, AlpaGasus, Alpaca-human, and
/// Alpaca-CoachLM. Every Alpaca variant is an identical 7B base tuned on
/// its variant's dataset; only the data differs.
std::vector<ZooEntry> BuildBaselineGroup(
    const ZooInputs& inputs, const InstructionTuner& tuner,
    const ExecutionContext& exec = ExecutionContext::Default());

/// \brief Builds the Stronger-LLMs group: LLaMA2-chat 13B/7B, Vicuna-13b,
/// ChatGLM, ChatGLM2 — larger bases and/or proprietary data and RLHF,
/// expressed as alignment profiles (their datasets are not public; see
/// DESIGN.md §1 for the substitution).
std::vector<ZooEntry> BuildStrongerGroup();

/// A uniform alignment profile over all categories (for models tuned on
/// proprietary data whose per-category composition is unknown).
AlignmentProfile UniformProfile(double quality, double coverage);

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_MODEL_ZOO_H_
