#ifndef COACHLM_TUNING_BASELINES_H_
#define COACHLM_TUNING_BASELINES_H_

#include "data/dataset.h"

namespace coachlm {
namespace tuning {

/// \brief The Alpaca-cleaned baseline's rule-based dataset cleaning.
///
/// Mirrors the AlpacaDataCleaned project: regular-expression-style surface
/// fixes only — stray machine markers removed, flattened lists reflowed,
/// runaway spacing collapsed. No knowledge-driven repair, no expansion;
/// the paper finds this barely moves win rates (Table IX).
InstructionDataset CleanDatasetRuleBased(const InstructionDataset& dataset);

/// \brief The AlpaGasus baseline's filtering: keep only pairs whose
/// simulated-ChatGPT accuracy rating is at least \p threshold (the paper
/// keeps ~9k of 52k at 4.5). Raises mean quality, destroys coverage in
/// sparse categories — the diversity cost of Section II-A(3).
InstructionDataset FilterAlpaGasus(const InstructionDataset& dataset,
                                   double threshold = 4.5);

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_BASELINES_H_
