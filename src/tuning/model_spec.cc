#include "tuning/model_spec.h"

namespace coachlm {
namespace tuning {

ModelSpec Llama7BBase(std::string name) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.size_label = "7B";
  spec.base_knowledge = 0.80;
  spec.base_slip = 0.30;
  return spec;
}

ModelSpec Llama13BBase(std::string name) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.size_label = "13B";
  spec.base_knowledge = 0.88;
  spec.base_slip = 0.22;
  return spec;
}

ModelSpec Glm6BBase(std::string name) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.size_label = "6B";
  spec.base_knowledge = 0.77;
  spec.base_slip = 0.30;
  return spec;
}

}  // namespace tuning
}  // namespace coachlm
