#ifndef COACHLM_TUNING_MODEL_SPEC_H_
#define COACHLM_TUNING_MODEL_SPEC_H_

#include <string>

namespace coachlm {
namespace tuning {

/// \brief Capability profile of a base model being instruction-tuned.
///
/// `base_knowledge` scales how much of the training data's alignment the
/// model can express (bigger/better-pre-trained bases express more);
/// `rl_tuned` marks models with an RLHF stage, which reliably improves
/// tone (closings, no robotic boilerplate) and safety behaviour.
struct ModelSpec {
  std::string name;
  std::string size_label = "7B";  // "6B" / "7B" / "13B"
  bool rl_tuned = false;
  /// Knowledge/capacity factor in (0, 1].
  double base_knowledge = 0.80;
  /// Residual generation-slip probability of the base (scaled down by
  /// training-data quality).
  double base_slip = 0.30;
};

/// A 7B LLaMA-class base (Alpaca and its variants).
ModelSpec Llama7BBase(std::string name);

/// A 13B LLaMA-class base.
ModelSpec Llama13BBase(std::string name);

/// A 6B GLM-class base.
ModelSpec Glm6BBase(std::string name);

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_MODEL_SPEC_H_
