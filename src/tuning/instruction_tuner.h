#ifndef COACHLM_TUNING_INSTRUCTION_TUNER_H_
#define COACHLM_TUNING_INSTRUCTION_TUNER_H_

#include "common/execution.h"
#include "common/runtime.h"
#include "data/dataset.h"
#include "data/record_stream.h"
#include "tuning/tuned_model.h"

namespace coachlm {
namespace tuning {

/// \brief Simulated instruction tuning: measures a training dataset and
/// produces the TunedModel it induces.
///
/// Per category c: quality(c) = mean 0-5 accuracy rating / 5 over pairs in
/// c; coverage(c) = n_c / (n_c + k). Globally: mean rating / 5. These are
/// the only properties of the dataset the tuned model inherits — the
/// documented substitution for GPU fine-tuning (see DESIGN.md §1).
class InstructionTuner {
 public:
  /// \param coverage_k half-saturation count for category coverage; when
  /// <= 0 (the default) it scales with the dataset size (size / 900,
  /// floored at 4) so coverage measures the *relative* breadth of the
  /// dataset — epochs normalize absolute data volume in real fine-tuning.
  explicit InstructionTuner(double coverage_k = 0.0)
      : coverage_k_(coverage_k) {}

  /// Measures \p dataset into an alignment profile. Rating parallelizes
  /// over \p exec; the sums fold in dataset order, so the profile is
  /// bit-identical at any thread count. Each pair's rating runs under
  /// \p runtime (nullptr = PipelineRuntime::Default()) at FaultSite::kTune:
  /// a permanently-failed pair is excluded from the profile (and
  /// quarantined) rather than aborting the measurement.
  AlignmentProfile MeasureAlignment(
      const InstructionDataset& dataset,
      const ExecutionContext& exec = ExecutionContext::Default(),
      PipelineRuntime* runtime = nullptr) const;

  /// Tunes \p spec on \p dataset.
  TunedModel Tune(const ModelSpec& spec, const InstructionDataset& dataset,
                  const ExecutionContext& exec = ExecutionContext::Default(),
                  PipelineRuntime* runtime = nullptr) const;

  /// Record-stream form of Tune: drains \p reader (any corpus backend —
  /// JSON, JSONL, sharded binary) and tunes on the materialized dataset.
  [[nodiscard]] Result<TunedModel> TuneFromRecords(
      const ModelSpec& spec, RecordReader* reader,
      const ExecutionContext& exec = ExecutionContext::Default(),
      PipelineRuntime* runtime = nullptr) const;

 private:
  double coverage_k_;
};

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_INSTRUCTION_TUNER_H_
